#!/usr/bin/env python3
"""The paper's §3.1 motivation, both analytically and in simulation.

Part 1 reproduces the worked example exactly: the 4-instruction chain

    load f2,0(r6)   (20-cycle miss)
    fdiv f2,f2,f10
    fmul f2,f2,f12
    fadd f2,f2,1

holds registers for 151 register-cycles under decode-stage allocation,
88 under issue allocation, and just 38 under write-back allocation.

Part 2 measures the same effect live: the average number of allocated
physical FP registers while the swim workload runs under each scheme.

Usage::

    python examples/register_pressure.py
"""

from repro import conventional_config, simulate, virtual_physical_config
from repro.analysis.lifetime import AllocationPolicy, section_3_1_example
from repro.core.virtual_physical import AllocationStage


def analytical_part():
    print("=" * 64)
    print("Part 1 - the paper's worked example (register-cycles held)")
    print("=" * 64)
    model = section_3_1_example()
    for policy in AllocationPolicy:
        pressure = model.pressure(policy)
        reduction = model.reduction_vs_decode(policy)
        per_instr = model.per_instruction(policy)
        detail = ", ".join(f"{k}={v}" for k, v in per_instr.items())
        print(f"{policy.value:10s}: {pressure:4d} register-cycles "
              f"({reduction:+.0%} vs decode)   [{detail}]")
    print()


def measured_part():
    print("=" * 64)
    print("Part 2 - measured FP-register occupancy on swim (64 regs/file)")
    print("=" * 64)
    configs = [
        ("decode (conventional)", conventional_config()),
        ("issue allocation", virtual_physical_config(
            nrr=32, allocation=AllocationStage.ISSUE)),
        ("write-back allocation", virtual_physical_config(nrr=32)),
    ]
    for label, cfg in configs:
        result = simulate(cfg, workload="swim",
                          max_instructions=10_000, skip=1_000)
        occupancy = result.stats.avg_reg_occupancy("fp")
        print(f"{label:24s}: {occupancy:5.1f} FP registers allocated "
              f"on average, IPC={result.ipc:.2f}")
    print()
    print("Late allocation holds fewer registers at the same moment -> the")
    print("same 64-entry file sustains a much larger instruction window.")


if __name__ == "__main__":
    analytical_part()
    measured_part()
