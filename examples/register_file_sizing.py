#!/usr/bin/env python3
"""Register-file sizing study (paper Figure 7 and the 25% saving claim).

The virtual-physical organization can either (a) raise IPC at a fixed
register budget, or (b) hit the same IPC with a smaller, cheaper, faster
register file.  This example runs a small register-file sweep over the
benchmark suite and reports both views.

Usage::

    python examples/register_file_sizing.py [instructions]
"""

import sys

from repro import conventional_config, virtual_physical_config
from repro.analysis.reports import format_table, harmonic_mean
from repro.engine import BatchEngine, RunSpec
from repro.trace.workloads import WORKLOADS

SIZES = (48, 64, 96)


def sweep(instructions):
    benches = sorted(WORKLOADS)
    specs = []
    for phys in SIZES:
        for cfg in (conventional_config(int_phys=phys, fp_phys=phys),
                    virtual_physical_config(nrr=phys - 32,
                                            int_phys=phys, fp_phys=phys)):
            specs += [RunSpec(b, cfg, instructions=instructions,
                              skip=1_000, seed=1234) for b in benches]
    # One grid submission; the engine parallelizes over the CPU count.
    results = iter(BatchEngine.with_jobs().run(specs))
    conv, virt = {}, {}
    for phys in SIZES:
        conv[phys] = {b: next(results).ipc for b in benches}
        virt[phys] = {b: next(results).ipc for b in benches}
    return benches, conv, virt


def main():
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 6_000
    benches, conv, virt = sweep(instructions)

    headers = ["benchmark"]
    for phys in SIZES:
        headers += [f"conv({phys})", f"virt({phys})"]
    rows = []
    for bench in benches:
        row = [bench]
        for phys in SIZES:
            row += [f"{conv[phys][bench]:.2f}", f"{virt[phys][bench]:.2f}"]
        rows.append(row)
    hmrow = ["hmean"]
    for phys in SIZES:
        hmrow += [f"{harmonic_mean(conv[phys].values()):.2f}",
                  f"{harmonic_mean(virt[phys].values()):.2f}"]
    rows.append(hmrow)
    print(format_table(headers, rows, title="IPC vs register file size"))
    print()

    for phys in SIZES:
        imp = (harmonic_mean(virt[phys].values())
               / harmonic_mean(conv[phys].values()) - 1)
        print(f"  {phys} registers/file: virtual-physical is {imp:+.0%}")
    vp48 = harmonic_mean(virt[48].values())
    conv64 = harmonic_mean(conv[64].values())
    print()
    print(f"  VP @ 48 registers ({vp48:.2f} IPC) vs conventional @ 64 "
          f"({conv64:.2f} IPC): the paper's register-saving argument.")


if __name__ == "__main__":
    main()
