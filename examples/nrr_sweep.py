#!/usr/bin/env python3
"""Sweep the paper's critical design parameter: NRR (paper Figure 4).

NRR is the number of oldest destination-writing instructions guaranteed
a physical register — the deadlock-avoidance knob of §3.3.  A high NRR
behaves conservatively (registers go to the oldest instructions, like
the conventional scheme); a low NRR gambles registers on young
instructions, which advances future work but can serialize the old.

Usage::

    python examples/nrr_sweep.py [workload] [instructions]
"""

import sys

from repro import WORKLOADS, conventional_config, virtual_physical_config
from repro.core.virtual_physical import AllocationStage
from repro.engine import BatchEngine, RunSpec

NRR_VALUES = (1, 4, 8, 16, 24, 32)


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "swim"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000
    if workload not in WORKLOADS:
        raise SystemExit(f"unknown workload {workload!r}; "
                         f"choose from {', '.join(sorted(WORKLOADS))}")

    # The whole grid goes to the batch engine in one submission; swap in
    # BatchEngine.with_jobs(4) (or a ResultStore) to parallelize/persist.
    engine = BatchEngine.with_jobs()
    spec = lambda cfg: RunSpec(workload, cfg, instructions=instructions,
                               skip=1_000, seed=1234)
    grid = [spec(conventional_config())]
    for nrr in NRR_VALUES:
        grid.append(spec(virtual_physical_config(nrr=nrr)))
        grid.append(spec(virtual_physical_config(
            nrr=nrr, allocation=AllocationStage.ISSUE)))
    results = iter(engine.run(grid))

    base = next(results)
    print(f"{workload}: conventional IPC = {base.ipc:.3f}")
    print(f"{'NRR':>4s} {'write-back':>12s} {'issue-alloc':>12s} "
          f"{'squashes':>9s}")
    for nrr in NRR_VALUES:
        wb, issue = next(results), next(results)
        print(f"{nrr:4d} {wb.ipc / base.ipc:11.2f}x {issue.ipc / base.ipc:11.2f}x "
              f"{wb.stats.squashes:9d}")
    print()
    print("Write-back allocation reduces register pressure the most; issue")
    print("allocation avoids re-executions but keeps registers longer.")


if __name__ == "__main__":
    main()
