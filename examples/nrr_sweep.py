#!/usr/bin/env python3
"""Sweep the paper's critical design parameter: NRR (paper Figure 4).

NRR is the number of oldest destination-writing instructions guaranteed
a physical register — the deadlock-avoidance knob of §3.3.  A high NRR
behaves conservatively (registers go to the oldest instructions, like
the conventional scheme); a low NRR gambles registers on young
instructions, which advances future work but can serialize the old.

Usage::

    python examples/nrr_sweep.py [workload] [instructions]
"""

import sys

from repro import WORKLOADS, conventional_config, simulate, virtual_physical_config
from repro.core.virtual_physical import AllocationStage

NRR_VALUES = (1, 4, 8, 16, 24, 32)


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "swim"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000
    if workload not in WORKLOADS:
        raise SystemExit(f"unknown workload {workload!r}; "
                         f"choose from {', '.join(sorted(WORKLOADS))}")

    base = simulate(conventional_config(), workload=workload,
                    max_instructions=instructions, skip=1_000)
    print(f"{workload}: conventional IPC = {base.ipc:.3f}")
    print(f"{'NRR':>4s} {'write-back':>12s} {'issue-alloc':>12s} "
          f"{'squashes':>9s}")
    for nrr in NRR_VALUES:
        wb = simulate(virtual_physical_config(nrr=nrr), workload=workload,
                      max_instructions=instructions, skip=1_000)
        issue = simulate(
            virtual_physical_config(nrr=nrr, allocation=AllocationStage.ISSUE),
            workload=workload, max_instructions=instructions, skip=1_000)
        print(f"{nrr:4d} {wb.ipc / base.ipc:11.2f}x {issue.ipc / base.ipc:11.2f}x "
              f"{wb.stats.squashes:9d}")
    print()
    print("Write-back allocation reduces register pressure the most; issue")
    print("allocation avoids re-executions but keeps registers longer.")


if __name__ == "__main__":
    main()
