#!/usr/bin/env python3
"""Look inside the pipeline: timelines, occupancy, and re-executions.

Attaches the timeline tracer and occupancy sampler to a simulation of
the paper's worked-example pattern (a missing load feeding a long FP
chain) and renders what the machine actually did — including the
squash-and-re-execute behaviour of write-back allocation when registers
run short.

Usage::

    python examples/pipeline_viewer.py [conv|vp]
"""

import sys

from repro import Processor, conventional_config, virtual_physical_config
from repro.analysis.occupancy import OccupancySampler
from repro.isa.instruction import TraceRecord
from repro.isa.opcodes import OpClass
from repro.isa.registers import RegClass, make_reg
from repro.uarch.tracer import TimelineTracer


def section_31_trace(repeats=6):
    """The paper's §3.1 code, repeated: load; fdiv; fmul; fadd on f2."""
    r6 = make_reg(RegClass.INT, 6)
    f2 = make_reg(RegClass.FP, 2)
    f10 = make_reg(RegClass.FP, 10)
    f12 = make_reg(RegClass.FP, 12)
    records = []
    pc = 0x1000
    for i in range(repeats):
        records.append(TraceRecord(pc, OpClass.LOAD_FP, dest=f2, src1=r6,
                                   addr=0x10_000 + 0x40 * i))
        records.append(TraceRecord(pc + 4, OpClass.FP_DIV, dest=f2,
                                   src1=f2, src2=f10))
        records.append(TraceRecord(pc + 8, OpClass.FP_MUL, dest=f2,
                                   src1=f2, src2=f12))
        records.append(TraceRecord(pc + 12, OpClass.FP_ADD, dest=f2,
                                   src1=f2))
        pc += 16
    return records


def main():
    mode = sys.argv[1] if len(sys.argv) > 1 else "vp"
    if mode == "conv":
        config = conventional_config(fp_phys=36)
        label = "conventional renaming (36 FP registers)"
    else:
        config = virtual_physical_config(nrr=2, fp_phys=36, int_phys=64)
        label = "virtual-physical, write-back allocation, NRR=2 (36 FP regs)"

    processor = Processor(config)
    tracer = TimelineTracer.attach(processor)
    sampler = OccupancySampler.attach(processor, interval=4)
    processor.run(section_31_trace())

    print(f"== {label} ==")
    print()
    print(tracer.render(count=24, width=64))
    print()
    lat = tracer.stage_latencies()
    print("mean stage latencies:",
          ", ".join(f"{k}={v:.1f}" for k, v in lat.items()))
    print()
    summary = sampler.series.summary()["fp_regs"]
    print(f"FP register occupancy: mean={summary['mean']:.1f} "
          f"p95={summary['p95']} max={summary['max']}")
    print("occupancy over time:", sampler.series.sparkline("fp_regs",
                                                           ceiling=36))
    print()
    print("Legend: F fetch, R rename, I issue, C complete, T commit;")
    print("'xN' marks instructions that executed N times (squashed and")
    print("re-executed for lack of a free register).")


if __name__ == "__main__":
    main()
