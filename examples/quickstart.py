#!/usr/bin/env python3
"""Quickstart: conventional vs. virtual-physical renaming in ~20 lines.

Runs the paper's best-case benchmark (swim, a miss-heavy FP stencil)
through both register-renaming schemes on the paper's machine (64
physical registers per file) and prints the speedup.

Usage::

    python examples/quickstart.py [instructions]
"""

import sys

from repro import conventional_config, simulate, virtual_physical_config


def main():
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000

    base = simulate(conventional_config(), workload="swim",
                    max_instructions=instructions, skip=2_000)
    late = simulate(virtual_physical_config(nrr=32), workload="swim",
                    max_instructions=instructions, skip=2_000)

    print("conventional     :", base.summary())
    print("virtual-physical :", late.summary())
    print(f"speedup          : {late.ipc / base.ipc:.2f}x "
          f"(the paper reports 1.84x for swim at 64 registers)")
    print(f"re-executions    : {late.stats.squashes} squashed completions, "
          f"{late.stats.executions_per_commit:.2f} executions per commit")


if __name__ == "__main__":
    main()
