#!/usr/bin/env python3
"""Build your own workload with the loop-kernel DSL and simulate it.

The trace substrate is a small DSL: kernels of symbolic statements plus
address patterns.  This example models a sparse matrix-vector multiply
(SpMV) — indirect gathers through an index array, a classic case where
late register allocation pays because the gathers miss and iterations
are independent — and compares the two renaming schemes on it.

Usage::

    python examples/custom_workload.py [instructions]
"""

import sys

from repro import (
    Workload,
    conventional_config,
    simulate,
    virtual_physical_config,
)
from repro.isa.opcodes import OpClass
from repro.trace.patterns import ArrayWalk, RandomRegion
from repro.trace.program import CondBranch, FpOp, IntOp, Load, LoopKernel, Store

KB = 1024


def spmv_workload():
    """y[i] += A[j] * x[col[j]] over a large sparse matrix."""
    body = [
        # Stream through the nonzeros and their column indices.
        Load("aval", "values", fp=True),
        Load("cidx", "colidx"),
        # Indirect gather of x[col[j]] — effectively random, misses a lot.
        Load("xv", "xvec", base="cidx", fp=True),
        FpOp("prod", ("aval", "xv"), kind=OpClass.FP_MUL),
        FpOp("acc", ("acc", "prod"), kind=OpClass.FP_ADD),
        # End-of-row check (data dependent, mostly not taken).
        CondBranch(p_taken=0.1, skip=1, src="cidx"),
        Store("acc", "yvec", fp=True),
        IntOp("idx", ("idx",)),
    ]
    kernel = LoopKernel(
        name="spmv_row",
        body=body,
        iterations=48,
        arrays={
            "values": ArrayWalk(base=0x100_0000, length=64 * KB, elem_bytes=8),
            "colidx": ArrayWalk(base=0x200_1000, length=64 * KB, elem_bytes=8),
            "xvec": RandomRegion(base=0x300_2000, size_bytes=64 * KB),
            "yvec": ArrayWalk(base=0x400_3000, length=4 * KB, elem_bytes=8),
        },
    )
    return Workload("spmv", [kernel], category="fp")


def main():
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000

    base = simulate(conventional_config(), workload=spmv_workload(),
                    max_instructions=instructions, skip=1_000)
    late = simulate(virtual_physical_config(nrr=32), workload=spmv_workload(),
                    max_instructions=instructions, skip=1_000)

    print("SpMV (indirect gathers over a 64KB matrix):")
    print("  conventional     :", base.summary())
    print("  virtual-physical :", late.summary())
    print(f"  speedup          : {late.ipc / base.ipc:.2f}x")
    print()
    print("Try it with bigger matrices or different NRR values — the DSL")
    print("lives in repro.trace.program / repro.trace.patterns.")


if __name__ == "__main__":
    main()
