#!/usr/bin/env python3
"""Register-file port pressure across every registered renaming policy.

Renaming schemes are *policies* resolved by name through the registry
(`repro.policy_names()` / `repro.policy_config(name)`), so this example
needs no knowledge of the concrete renamer classes: it sweeps the
register-file read-port count (contention model on) for every policy
the registry knows about and prints IPC per point, plus how hard the
port limit bit (`rf_read_stalls`).

Usage::

    python examples/port_pressure.py [workload] [instructions]
"""

import sys

from repro import WORKLOADS, policy_config, policy_names
from repro.engine import BatchEngine, RunSpec

READ_PORTS = (16, 8, 4, 2)


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "swim"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 8_000
    if workload not in WORKLOADS:
        raise SystemExit(f"unknown workload {workload!r}; "
                         f"choose from {', '.join(sorted(WORKLOADS))}")

    policies = policy_names()
    grid = [
        RunSpec(workload,
                policy_config(policy, rf_model=True, rf_read_ports=ports),
                instructions=instructions, skip=1_000, seed=1234)
        for policy in policies for ports in READ_PORTS
    ]
    results = iter(BatchEngine.with_jobs().run(grid))

    print(f"{workload}: IPC vs. register-file read ports "
          f"(port contention model on)")
    header = f"{'policy':14s}" + "".join(f"{p:>4d}p" for p in READ_PORTS)
    print(header + "   read stalls @ fewest ports")
    for policy in policies:
        points = [next(results) for _ in READ_PORTS]
        cells = "".join(f"{r.ipc:5.2f}" for r in points)
        print(f"{policy:14s}{cells}   {points[-1].stats.rf_read_stalls}")
    print()
    print("Every policy pays for a narrow file; the virtual-physical")
    print("schemes read by VP tag, so their port pressure is accounted")
    print("against the names the issue logic actually has in hand.")


if __name__ == "__main__":
    main()
