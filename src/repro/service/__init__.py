"""Simulation-as-a-service: the HTTP gateway over the batch engine.

This package turns the repository's execution layer into a *service*:
instead of every consumer being a local Python process, clients POST
:class:`~repro.engine.spec.RunSpec` grids to a long-running gateway and
stream results back as each point completes.

* :class:`~repro.service.gateway.Gateway` — the asyncio HTTP server
  behind ``repro serve``: job submission, status, NDJSON result
  streaming, health and metrics, all stdlib.
* :class:`~repro.service.jobs.JobQueue` /
  :class:`~repro.service.jobs.Job` — the fair-share in-process queue:
  per-client round-robin with a bounded number of in-flight points,
  feeding :meth:`BatchEngine.run_specs_iter
  <repro.engine.core.BatchEngine.run_specs_iter>` so every executor
  backend (serial / pool / persistent / remote) streams.
* :mod:`~repro.service.auth` — shared-token authentication
  (``REPRO_TOKEN``), the same secret that protects the worker TCP
  protocol.
* :class:`~repro.service.client.GatewayClient` — the blocking client
  behind ``repro submit|status|fetch``; its stream auto-reconnects
  through the gateway's ``?after=<n>`` cursor.
* :class:`~repro.service.wal.JobJournal` — the per-job write-ahead log
  that makes jobs durable: ``repro serve --resume`` reloads unfinished
  jobs after a crash and re-runs only the points missing from the
  result store.

See ``docs/service.md`` for the API reference and a curl walkthrough,
and ``docs/resilience.md`` for the durability and degradation story.
"""

from repro.service.auth import authorized, presented_token
from repro.service.client import (
    DEFAULT_GATEWAY_PORT,
    GatewayClient,
    GatewayError,
    default_gateway_url,
)
from repro.service.gateway import Gateway
from repro.service.jobs import Job, JobQueue
from repro.service.wal import JobJournal, default_journal_dir

__all__ = [
    "DEFAULT_GATEWAY_PORT",
    "Gateway",
    "GatewayClient",
    "GatewayError",
    "Job",
    "JobJournal",
    "JobQueue",
    "authorized",
    "default_gateway_url",
    "default_journal_dir",
    "presented_token",
]
