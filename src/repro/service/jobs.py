"""Jobs and the fair-share queue behind the simulation gateway.

A :class:`Job` is one client's submitted grid: an ordered list of
resolved :class:`~repro.engine.spec.RunSpec`\\ s, a result slot per
point, and an append-only **event log** that the NDJSON stream endpoint
replays — every finished point becomes one event the moment it lands,
and a terminal event closes the stream.

:class:`JobQueue` holds every job and decides what simulates next.
Scheduling is **fair-share**: clients take turns point-by-point
(per-client round-robin), so a tenant who submits a 10,000-point grid
cannot starve one who submits a single run a second later.  Within one
client, jobs run FIFO and points in submission order.  The queue only
*selects* work (``next_round``); executing it — through
:meth:`BatchEngine.run_specs_iter
<repro.engine.core.BatchEngine.run_specs_iter>` — is the gateway's
scheduler loop, which bounds in-flight points per round.

Everything here runs on the gateway's event-loop thread, so the
structures need no locks; the only asyncio objects are the per-job
wake-up events that stream handlers await.
"""

from __future__ import annotations

import asyncio
import time
import uuid
from collections import deque

#: The job lifecycle: queued → running → done | failed | cancelled.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")


def new_job_id():
    """A fresh opaque job identifier (URL-safe, unguessable-enough)."""
    return uuid.uuid4().hex


class Job:
    """One submitted grid and everything observable about it."""

    def __init__(self, job_id, client, specs, trace=None):
        self.job_id = job_id
        self.client = client
        #: Trace id minted at submission (``None`` for untraced jobs);
        #: rides through the scheduler into engine/worker spans and is
        #: echoed in the submit response and the status snapshot.
        self.trace = trace
        self.specs = list(specs)
        self.results = [None] * len(self.specs)
        self.state = "queued"
        self.error = None
        self.created = time.time()
        self.started = None
        self.finished = None
        self.done_points = 0
        self.next_point = 0  # scheduling cursor into self.specs
        self.events = []  # replayable stream backlog (dicts)
        #: Optional :class:`~repro.service.wal.JobJournal`; when set,
        #: delivered points and the terminal state are journaled so the
        #: gateway can resume this job after a crash.
        self.journal = None
        #: Scheduler rounds containing this job that died whole (the
        #: executor raised); the gateway requeues the points a few
        #: times before giving up on the job.
        self.round_failures = 0
        self._returned = deque()  # requeued point indices (run first)
        self._wakeup = asyncio.Event()

    # -- scheduling --------------------------------------------------

    @property
    def pending_points(self):
        """Points not yet handed to the executor."""
        if self.state in TERMINAL_STATES:
            return 0
        return len(self._returned) + len(self.specs) - self.next_point

    def take_point(self):
        """Claim the next unscheduled point index (caller checks pending).

        Requeued points (from a failed scheduler round) are re-claimed
        before the cursor advances into untouched territory.
        """
        if self._returned:
            return self._returned.popleft()
        index = self.next_point
        self.next_point += 1
        return index

    def requeue(self, indices):
        """Return claimed-but-undelivered points to the schedulable set.

        Used by the gateway when an executor round dies whole: the
        points that never produced results go back to the front of the
        line instead of failing the job.  Delivered or duplicate
        indices are ignored.
        """
        for index in indices:
            if self.results[index] is None and index not in self._returned:
                self._returned.append(index)

    # -- results and events ------------------------------------------

    @property
    def is_finished(self):
        """Whether the job reached a terminal state."""
        return self.state in TERMINAL_STATES

    def deliver(self, index, result):
        """Record one finished point and publish its stream event.

        Called on the event-loop thread as the executor yields.  A
        point landing after cancellation is still recorded (the work is
        done and deterministic) but publishes no event — the stream
        already ended.
        """
        if self.results[index] is None:
            self.results[index] = result
            self.done_points += 1
            if self.journal is not None:
                # The engine's store already persisted the result, so a
                # crash after this record can serve the point for free.
                self.journal.record_point(self.job_id, index)
        if self.is_finished:
            return
        spec = self.specs[index]
        self._publish({
            "event": "point",
            "job": self.job_id,
            "index": index,
            "workload": spec.workload,
            "label": spec.label,
            "key": spec.key(),
            "done": self.done_points,
            "points": len(self.specs),
            "result": result.to_dict(),
        })
        if self.done_points == len(self.specs):
            self._finish("done")

    def fail(self, message):
        """Mark the job failed (executor error) and end its stream."""
        if not self.is_finished:
            self.error = str(message)
            self._finish("failed")

    def cancel(self):
        """Cancel the job; returns whether anything changed.

        Unscheduled points never run; points already in flight finish
        (their results are recorded) but publish no further events.
        """
        if self.is_finished:
            return False
        self._finish("cancelled")
        return True

    def _finish(self, state):
        self.state = state
        self.finished = time.time()
        if self.journal is not None:
            self.journal.record_end(self.job_id, state)
        self._publish({
            "event": "end",
            "job": self.job_id,
            "state": state,
            "done": self.done_points,
            "points": len(self.specs),
            "error": self.error,
        })

    def _publish(self, event):
        self.events.append(event)
        self._wakeup.set()
        self._wakeup = asyncio.Event()

    async def events_from(self, start=0):
        """Yield stream events from ``start``: backlog first, then live.

        Terminates after the terminal event.  A ``start`` beyond the
        current backlog waits for the job to catch up (a reconnecting
        client may hold a cursor from a previous gateway incarnation
        that has not re-delivered that far yet) — but never hangs: once
        the job is finished and the backlog is drained the stream ends.
        Safe without locks: the publisher runs on the same event loop,
        so the backlog cannot grow between the synchronous length check
        and the await.
        """
        index = start
        while True:
            while index < len(self.events):
                event = self.events[index]
                index += 1
                yield event
                if event.get("event") == "end":
                    return
            if self.is_finished:
                return  # cursor past the end of a finished job
            await self._wakeup.wait()

    # -- reporting ---------------------------------------------------

    def snapshot(self):
        """The status document ``GET /v1/jobs/<id>`` serves."""
        return {
            "id": self.job_id,
            "client": self.client,
            "trace": self.trace,
            "state": self.state,
            "points": len(self.specs),
            "done": self.done_points,
            "scheduled": self.next_point - len(self._returned),
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
        }


class JobQueue:
    """Every job the gateway knows, plus the fair-share selector.

    Finished jobs are kept for fetch/replay but only the most recent
    ``max_finished`` of them — a long-running gateway must not retain
    every grid it ever served (results live on in the engine's
    persistent store regardless).
    """

    def __init__(self, max_finished=1000):
        self.jobs = {}  # job id -> Job (recent completed jobs kept)
        self.max_finished = max(0, int(max_finished))
        self._backlog = {}  # client -> deque of job ids with pending points
        self._turns = deque()  # round-robin order over clients

    def _evict_finished(self):
        """Drop the oldest terminal jobs beyond the retention cap."""
        terminal = [job_id for job_id, job in self.jobs.items()
                    if job.is_finished]
        for job_id in terminal[:max(0, len(terminal) - self.max_finished)]:
            del self.jobs[job_id]

    def submit(self, client, specs, job_id=None, trace=None):
        """Register a new job for ``client``; returns the :class:`Job`.

        ``job_id`` lets WAL recovery re-create a job under its original
        id (so client handles survive a gateway restart); new
        submissions leave it unset and get a fresh id.  ``trace`` is
        the optional trace id minted at submission.
        """
        self._evict_finished()
        job = Job(job_id or new_job_id(), client, specs, trace=trace)
        self.jobs[job.job_id] = job
        if job.pending_points:
            if client not in self._backlog:
                self._backlog[client] = deque()
                self._turns.append(client)
            self._backlog[client].append(job.job_id)
        else:  # zero-point grid: born finished
            job._finish("done")
        return job

    def restore(self, job):
        """Put a job with requeued points back into the rotation.

        Round-failure recovery: after :meth:`Job.requeue` the job has
        schedulable points again but may have been dropped from its
        client's backlog; re-admit it (at the front — its points were
        claimed first) so the next round picks the work back up.
        """
        if job.is_finished or not job.pending_points:
            return
        if job.client not in self._backlog:
            self._backlog[job.client] = deque()
            self._turns.append(job.client)
        if job.job_id not in self._backlog[job.client]:
            self._backlog[job.client].appendleft(job.job_id)

    def get(self, job_id):
        """The job for an id, or ``None``."""
        return self.jobs.get(job_id)

    def cancel(self, job_id):
        """Cancel a job by id; returns the job (or ``None`` if unknown)."""
        job = self.jobs.get(job_id)
        if job is not None and job.cancel():
            backlog = self._backlog.get(job.client)
            if backlog is not None and job.job_id in backlog:
                backlog.remove(job.job_id)
        return job

    @property
    def pending_points(self):
        """Unscheduled points across every queued/running job."""
        return sum(self.jobs[j].pending_points
                   for q in self._backlog.values() for j in q)

    def next_round(self, limit):
        """Select up to ``limit`` points to execute next, fairly.

        Clients take turns contributing one point per turn (round-robin
        over clients, FIFO over each client's jobs, submission order
        within a job), so small tenants interleave with huge grids.
        Returns ``[(job, point_index), ...]``; the caller executes the
        round and delivers results.  Clients and jobs that run dry are
        dropped from the rotation as a side effect.
        """
        round_ = []
        # Every turn either claims a point or retires a drained client,
        # so the loop terminates even when limit exceeds the backlog.
        while len(round_) < limit and self._turns:
            client = self._turns[0]
            self._turns.rotate(-1)
            backlog = self._backlog.get(client)
            job = None
            while backlog:
                candidate = self.jobs[backlog[0]]
                if candidate.pending_points:
                    job = candidate
                    break
                backlog.popleft()  # finished or cancelled: drop
            if job is None:
                self._turns.remove(client)
                del self._backlog[client]
                continue
            round_.append((job, job.take_point()))
            if not job.pending_points:
                backlog.popleft()
        return round_

    def counters(self):
        """Aggregate queue numbers for ``/v1/metrics``."""
        by_state = dict.fromkeys(JOB_STATES, 0)
        points = done = 0
        for job in self.jobs.values():
            by_state[job.state] += 1
            points += len(job.specs)
            done += job.done_points
        return {
            "jobs": by_state,
            "clients_waiting": len(self._turns),
            "points_total": points,
            "points_done": done,
            "points_pending": self.pending_points,
        }
