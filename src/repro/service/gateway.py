"""The asyncio HTTP gateway: simulations as a service.

:class:`Gateway` serves the batch engine over HTTP/1.1 — stdlib only,
one asyncio event loop, no framework.  The API (all JSON; auth per
:mod:`repro.service.auth`):

==========================  ============================================
``POST /v1/jobs``           submit a grid: ``{"specs": [RunSpec.to_dict()
                            , ...]}`` → ``201 {"id": ..., "points": N}``
``GET /v1/jobs/<id>``       status + progress snapshot
``GET /v1/jobs/<id>/stream``  NDJSON: every finished point streams the
                            moment its result lands (cache hits flush
                            immediately), then one terminal event;
                            ``?after=<n>`` skips the first *n* events
                            so a dropped client reconnects without
                            replay
``GET /v1/jobs/<id>/results``  collected results (nulls until done)
``DELETE /v1/jobs/<id>``    cancel: unscheduled points never run
``GET /v1/healthz``         liveness + version + engine-tier
                            availability (never needs auth)
``GET /v1/metrics``         Prometheus text exposition (JSON when the
                            ``Accept`` header asks for it)
``GET /v1/metrics.json``    the JSON metrics document, always
``GET /v1/dashboard``       the live cluster dashboard (static HTML,
                            never needs auth; its API calls do)
==========================  ============================================

Every job submission mints (or accepts, via ``X-Repro-Trace`` /
``"trace"`` in the body) a **trace id** that rides through the
scheduler into the engine, remote chunks, and worker daemons — see
:mod:`repro.obs.tracing`; ``repro trace <id>`` renders the result.
Per-tenant usage (jobs, points, cache hits, degraded rounds, queue
wait) is accounted in the process-wide metrics registry keyed by the
authenticated client name and exposed as Prometheus series.

Execution model: a single scheduler task repeatedly asks the
:class:`~repro.service.jobs.JobQueue` for a fair-share **round** of at
most ``max_inflight`` points (per-client round-robin — a huge grid
cannot starve a small one), then drives the round through
:meth:`BatchEngine.run_specs_iter
<repro.engine.core.BatchEngine.run_specs_iter>` on a worker thread.
Each yielded result is marshalled back onto the event loop and
published to the owning job's stream immediately — so with a pool or
remote executor behind the engine, points stream to clients while the
rest of the round is still simulating, and store/memo hits stream
before the executor even starts.  Identical specs across concurrent
jobs deduplicate within a round for free (engine semantics).

One request per connection (``Connection: close``), bodies capped at
64 MB, streams chunk-encoded.  Start it from the CLI (``repro serve``),
embed it (``await Gateway(...).start()``), or spin it on a thread in
tests (:meth:`Gateway.serve_in_thread`).

Fault tolerance (see ``docs/resilience.md``): with a
:class:`~repro.service.wal.JobJournal` attached, accepted jobs and
delivered points are journaled so ``repro serve --resume`` reloads
unfinished jobs after a crash — completed points come back as
result-store hits (free and bit-identical), only missing points
re-simulate.  A scheduler round that dies whole (executor raised)
requeues its undelivered points instead of failing the jobs, up to
``max_round_failures`` attempts per job, and executor degradation
(remote cluster lost → local fallback) is surfaced in ``/v1/metrics``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.parse

from repro.engine import BatchEngine
from repro.engine.faults import fault
from repro.engine.spec import RunSpec
from repro.engine.version import code_version
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.obs.health import engine_tier_report
from repro.service.auth import authorized, service_token
from repro.service.dashboard import DASHBOARD_HTML
from repro.service.jobs import JobQueue
from repro.trace.workloads import WORKLOADS

#: Hard cap on one request body (matches the worker protocol's line cap).
MAX_BODY = 64 * 1024 * 1024

#: Points one job may submit (a runaway client cannot OOM the queue).
MAX_POINTS_PER_JOB = 100_000

_JSON = "application/json"
_NDJSON = "application/x-ndjson"
_HTML = "text/html; charset=utf-8"
#: The Prometheus text exposition content type (format 0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_REGISTRY = _metrics.get_registry()
_HTTP_REQUESTS = _REGISTRY.counter(
    "repro_gateway_requests_total",
    "HTTP requests served, by normalized route.",
    labelnames=("route",))
_TENANT_JOBS = _REGISTRY.counter(
    "repro_tenant_jobs_total",
    "Jobs submitted, per authenticated client.",
    labelnames=("client",))
_TENANT_POINTS = _REGISTRY.counter(
    "repro_tenant_points_total",
    "Points delivered, per client and source (executed/cached).",
    labelnames=("client", "source"))
_TENANT_DEGRADED = _REGISTRY.counter(
    "repro_tenant_degraded_rounds_total",
    "Scheduler rounds completed in degraded mode, per client.",
    labelnames=("client",))
_TENANT_QUEUE_WAIT = _REGISTRY.histogram(
    "repro_tenant_queue_wait_seconds",
    "Submission-to-first-schedule wait, per client.",
    labelnames=("client",))
_UPTIME_GAUGE = _REGISTRY.gauge(
    "repro_gateway_uptime_seconds", "Gateway uptime at scrape time.")
_JOBS_GAUGE = _REGISTRY.gauge(
    "repro_gateway_jobs", "Known jobs by lifecycle state.",
    labelnames=("state",))
_PENDING_GAUGE = _REGISTRY.gauge(
    "repro_gateway_points_pending",
    "Unscheduled points across queued/running jobs.")
_ROUNDS_GAUGE = _REGISTRY.gauge(
    "repro_gateway_rounds_total", "Scheduler rounds started.")
_POINTS_GAUGE = _REGISTRY.gauge(
    "repro_gateway_points_total",
    "Points delivered by this gateway, by source.",
    labelnames=("source",))
_ROUND_FAILURES_GAUGE = _REGISTRY.gauge(
    "repro_gateway_round_failures_total",
    "Scheduler rounds that died whole.")
_UNAUTHORIZED_GAUGE = _REGISTRY.gauge(
    "repro_gateway_unauthorized_total", "Requests refused by auth.")
_BUILD_INFO = _REGISTRY.gauge(
    "repro_build_info",
    "Constant 1, labelled with the code-version fingerprint.",
    labelnames=("version",))


class _HttpError(Exception):
    """Route-level failure that maps straight to a status + JSON body."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status
        self.message = message


class Gateway:
    """The simulation-as-a-service HTTP front end.

    Parameters
    ----------
    host, port:
        Bind address; port ``0`` picks an ephemeral port (read it back
        from :attr:`address` after :meth:`start`).
    engine:
        The :class:`~repro.engine.core.BatchEngine` runs execute on
        (default: a fresh serial engine with no store).  Configure its
        executor/store for pools, clusters, and persistent caching —
        the gateway only ever touches the engine from its single
        scheduler thread.
    token:
        Shared secret (default: the ``REPRO_TOKEN`` environment
        variable); ``None``/empty disables authentication.
    max_inflight:
        Point budget per scheduling round — the bound on concurrently
        executing points (default 8).
    journal:
        Optional :class:`~repro.service.wal.JobJournal`.  When set,
        submissions and per-point completions are journaled to per-job
        WAL files so a crashed gateway can be resumed; ``None`` (the
        default) keeps the old forgetful behavior.
    resume:
        When true (``repro serve --resume``), :meth:`start` reloads
        every unfinished journaled job under its original id before
        accepting connections.
    max_round_failures:
        Whole scheduler rounds allowed to die (executor raised) per
        job before that job is failed rather than requeued (default 3).
    """

    def __init__(self, host="127.0.0.1", port=0, engine=None, token=None,
                 max_inflight=8, journal=None, resume=False,
                 max_round_failures=3):
        self.host = host
        self.port = port
        self.engine = engine or BatchEngine()
        self.queue = JobQueue()
        self.token = service_token() if token is None else (token or None)
        self.max_inflight = max(1, int(max_inflight))
        self.journal = journal
        self.resume = bool(resume)
        self.max_round_failures = max(0, int(max_round_failures))
        self.version = code_version()
        self.started_at = time.time()
        self.requests = 0
        self.rounds = 0
        self.points_executed = 0
        self.points_cached = 0
        self.unauthorized = 0
        self.round_failures = 0
        self.resumed_jobs = 0
        self.degraded = None  # last degraded-batch report (dict)
        self.last_round_error = None
        self._server = None
        self._scheduler = None
        self._work = None  # asyncio.Event, created on the loop in start()
        self._engines_report = None  # cached tier probe for /v1/healthz
        self._engines_probed_at = 0.0

    # -- lifecycle ---------------------------------------------------

    @property
    def address(self):
        """The bound ``(host, port)`` — resolves an ephemeral port."""
        if self._server is None:
            return (self.host, self.port)
        return self._server.sockets[0].getsockname()[:2]

    async def start(self):
        """Bind the listener and start the scheduler task.

        With ``resume`` set and a journal attached, unfinished jobs are
        reloaded from the WAL before the listener binds, so resumed ids
        are resolvable from the first request on.
        """
        self._work = asyncio.Event()
        if self.resume and self.journal is not None:
            self._resume_jobs()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self._scheduler = asyncio.create_task(self._scheduler_loop())
        return self

    def _resume_jobs(self):
        """Re-create every unfinished journaled job under its old id.

        Resumed points run through the engine like any others —
        completed ones return as result-store hits (no re-simulation,
        bit-identical), so only the genuinely missing points execute.
        """
        for record in self.journal.unfinished():
            if record["id"] in self.queue.jobs:
                continue
            try:
                specs = [RunSpec.from_dict(data).resolved()
                         for data in record["specs"]]
            except (KeyError, TypeError, ValueError, AttributeError):
                continue  # unreadable journal must never block a boot
            if not specs:
                self.journal.discard(record["id"])
                continue
            job = self.queue.submit(record["client"] or "resumed", specs,
                                    job_id=record["id"])
            job.journal = self.journal
            self.resumed_jobs += 1
        if self.resumed_jobs:
            self._signal_work()

    async def stop(self):
        """Stop accepting, cancel the scheduler, close the listener."""
        if self._scheduler is not None:
            self._scheduler.cancel()
            try:
                await self._scheduler
            except asyncio.CancelledError:
                pass
            self._scheduler = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self, on_ready=None):
        """:meth:`start` then serve until cancelled (the CLI entry).

        ``on_ready(gateway)`` is called once the listener is bound —
        the CLI prints its "listening on" line from it.
        """
        await self.start()
        if on_ready is not None:
            on_ready(self)
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    def serve_in_thread(self):
        """Run the gateway on a daemon thread; returns a stop handle.

        For tests and embedding: blocks until the listener is bound,
        then returns an object with ``address`` and ``stop()``.
        """
        loop = asyncio.new_event_loop()
        bound = threading.Event()

        async def boot():
            await self.start()
            bound.set()

        def main():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(boot())
            loop.run_forever()

        thread = threading.Thread(target=main, daemon=True,
                                  name="repro-gateway")
        thread.start()
        bound.wait(timeout=10)
        gateway = self

        class _Handle:
            """Thread-side remote control for a running gateway."""

            address = self.address

            @staticmethod
            def stop():
                """Stop the gateway and join its thread."""
                async def shutdown():
                    await gateway.stop()
                    loop.stop()
                asyncio.run_coroutine_threadsafe(shutdown(), loop)
                thread.join(timeout=10)
                if not loop.is_running():
                    loop.close()

        return _Handle()

    # -- scheduling --------------------------------------------------

    def _signal_work(self):
        if self._work is not None:
            self._work.set()

    async def _scheduler_loop(self):
        while True:
            await self._work.wait()
            round_ = self.queue.next_round(self.max_inflight)
            if not round_:
                self._work.clear()
                continue
            await self._run_round(round_)

    async def _run_round(self, round_):
        loop = asyncio.get_running_loop()
        now = time.time()
        for job, _ in round_:
            if job.state == "queued":
                job.state = "running"
                job.started = now
                # Queue-wait accounting at the queued→running edge:
                # one observation (and one span) per job lifetime.
                wait = max(0.0, now - job.created)
                _TENANT_QUEUE_WAIT.observe(wait, client=job.client)
                if job.trace is not None:
                    _tracing.record_span(
                        "queue", "gateway.queue-wait", job.created,
                        wait, trace=job.trace,
                        attrs={"job": job.job_id,
                               "client": job.client})
        specs = [job.specs[index] for job, index in round_]
        traces = [job.trace for job, _ in round_]
        base_executed, base_cached = self.points_executed, self.points_cached
        # Counted at round *start*: a client that has observed any of
        # this round's points (or the terminal event they trigger) must
        # never read a /v1/metrics snapshot that predates the round —
        # the engine can finish and deliver before to_thread returns.
        self.rounds += 1

        def execute():
            # Worker thread: the only thread that touches the engine.
            if fault("gateway.round"):
                raise RuntimeError("injected fault: scheduler round died")
            last_executed = 0
            for position, _, result in self.engine.run_specs_iter(
                    specs, trace=traces):
                batch = self.engine.last_batch
                executed = base_executed + batch.executed
                cached = base_cached + batch.store_hits + batch.memo_hits
                # A yield that advanced batch.executed came off the
                # executor; anything else was served by memo/store (or
                # deduplicated onto an already-executed key).
                from_cache = batch.executed == last_executed
                last_executed = batch.executed
                job, index = round_[position]
                try:
                    # One loop callback updates the counters AND
                    # delivers — so a client that has seen a point (or
                    # the terminal event it triggers) can never read
                    # stale /v1/metrics afterwards.
                    loop.call_soon_threadsafe(self._land_point, executed,
                                              cached, job, index, result,
                                              from_cache)
                except RuntimeError:
                    # The loop closed mid-round (gateway shutdown with
                    # work in flight): stop simulating for nobody.
                    return

        failure = None
        try:
            await asyncio.to_thread(execute)
        except Exception as exc:  # noqa: BLE001 — jobs must not wedge
            failure = f"{type(exc).__name__}: {exc}"
        if failure is None:
            # Final sync; max() because _land_point already counted the
            # points that streamed out mid-round.
            batch = self.engine.last_batch
            self.points_executed = max(self.points_executed,
                                       base_executed + batch.executed)
            self.points_cached = max(
                self.points_cached,
                base_cached + batch.store_hits + batch.memo_hits)
            if batch.degraded:
                self.degraded = dict(batch.degraded)
                for client in {job.client for job, _ in round_}:
                    _TENANT_DEGRADED.inc(client=client)
        else:
            # engine.last_batch may be stale (the round can die before
            # the engine starts), so no counter sync on this path.
            self.round_failures += 1
            self.last_round_error = failure
            self._requeue_round(round_, failure)

    def _land_point(self, executed, cached, job, index, result,
                    from_cache=False):
        """Event-loop callback: publish one point with counters current."""
        self.points_executed = max(self.points_executed, executed)
        self.points_cached = max(self.points_cached, cached)
        _TENANT_POINTS.inc(client=job.client,
                           source="cached" if from_cache else "executed")
        job.deliver(index, result)

    def _requeue_round(self, round_, message):
        """Recover from a scheduler round that died whole.

        Undelivered points go back to the front of their jobs' queues
        and the jobs rejoin the rotation; a job whose rounds keep dying
        (more than ``max_round_failures``) is failed instead, so a
        deterministically crashing executor cannot retry forever.
        """
        by_job = {}
        for job, index in round_:
            if not job.is_finished and job.results[index] is None:
                by_job.setdefault(job.job_id, (job, []))[1].append(index)
        for job, indices in by_job.values():
            job.round_failures += 1
            if job.round_failures > self.max_round_failures:
                job.fail(message)
            else:
                job.requeue(indices)
                self.queue.restore(job)
        self._signal_work()

    # -- request handling --------------------------------------------

    async def _handle_connection(self, reader, writer):
        try:
            try:
                method, target, headers = await self._read_head(reader)
            except _HttpError as exc:
                await self._send_json(writer, exc.status,
                                      {"error": exc.message})
                return
            except (asyncio.IncompleteReadError, ValueError, OSError):
                return  # peer hung up or spoke garbage mid-request
            self.requests += 1
            path, _, query = target.partition("?")
            try:
                await self._dispatch(reader, writer, method, path, query,
                                     headers)
            except _HttpError as exc:
                await self._send_json(writer, exc.status,
                                      {"error": exc.message})
            except (asyncio.IncompleteReadError, ValueError):
                return  # body shorter than declared / garbage mid-read
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away; nothing to tell it
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                # RuntimeError: the loop closed under us (gateway was
                # killed with this stream still open).
                pass

    async def _read_head(self, reader):
        """Parse the request line and headers — never the body.

        The body (bounded by :data:`MAX_BODY`) is read separately in
        :meth:`_read_body`, *after* authentication, so an
        unauthenticated client can never make the gateway buffer a
        64 MB payload.
        """
        try:
            request_line = (await reader.readline()).decode("latin-1")
        except ValueError:
            raise _HttpError(431, "request line too long")
        parts = request_line.split()
        if len(parts) != 3:
            raise ValueError("malformed request line")
        method, target, _version = parts
        headers = {}
        for _ in range(200):  # header-count cap: no unbounded loops
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpError(431, "too many headers")
        return method.upper(), target, headers

    @staticmethod
    async def _read_body(reader, headers):
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            raise _HttpError(400, "bad Content-Length header")
        if length > MAX_BODY:
            raise _HttpError(413, f"body exceeds {MAX_BODY} bytes")
        return await reader.readexactly(length) if length else b""

    async def _dispatch(self, reader, writer, method, path, query, headers):
        _HTTP_REQUESTS.inc(route=self._route_label(path))
        if path == "/v1/healthz" and method == "GET":
            await self._send_json(writer, 200, self._healthz())
            return
        if path == "/v1/dashboard" and method == "GET":
            # The page itself holds no data; every API call it makes is
            # authenticated, so serving the static HTML needs no token.
            await self._send_text(writer, 200, DASHBOARD_HTML, _HTML)
            return
        if not authorized(headers, self.token):
            self.unauthorized += 1
            raise _HttpError(401, "unauthorized: set REPRO_TOKEN and "
                                  "send 'Authorization: Bearer <token>'")
        if path == "/v1/metrics" and method == "GET":
            # Content negotiation: Prometheus text by default, the JSON
            # document when the client asks for application/json (the
            # GatewayClient always does — existing callers see no
            # change).  /v1/metrics.json is the explicit JSON route.
            if _JSON in headers.get("accept", ""):
                await self._send_json(writer, 200, self.metrics())
            else:
                await self._send_text(writer, 200, self.prometheus(),
                                      PROMETHEUS_CONTENT_TYPE)
            return
        if path == "/v1/metrics.json" and method == "GET":
            await self._send_json(writer, 200, self.metrics())
            return
        if path == "/v1/jobs" and method == "POST":
            body = await self._read_body(reader, headers)
            await self._submit(writer, headers, body)
            return
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
            job = self.queue.get(parts[2])
            if job is None:
                raise _HttpError(404, f"unknown job {parts[2]!r}")
            tail = parts[3] if len(parts) == 4 else None
            if tail is None and method == "GET":
                await self._send_json(writer, 200, job.snapshot())
                return
            if tail is None and method == "DELETE":
                self.queue.cancel(job.job_id)
                await self._send_json(writer, 200, job.snapshot())
                return
            if tail == "results" and method == "GET":
                await self._send_json(writer, 200, {
                    "id": job.job_id,
                    "state": job.state,
                    "results": [r.to_dict() if r is not None else None
                                for r in job.results],
                })
                return
            if tail == "stream" and method == "GET":
                await self._stream(writer, job, self._after_cursor(query))
                return
        raise _HttpError(404, f"no route for {method} {path}")

    @staticmethod
    def _after_cursor(query):
        """Parse the ``?after=<n>`` stream-reconnect cursor (default 0)."""
        values = urllib.parse.parse_qs(query,
                                       keep_blank_values=True).get("after")
        if not values:
            return 0
        try:
            after = int(values[-1])
        except ValueError:
            after = -1
        if after < 0:
            raise _HttpError(400, "'after' must be a non-negative integer")
        return after

    async def _submit(self, writer, headers, body):
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise _HttpError(400, "body is not valid JSON")
        if not isinstance(payload, dict):
            raise _HttpError(400, "body must be a JSON object")
        spec_dicts = payload.get("specs")
        if not isinstance(spec_dicts, list) or not spec_dicts:
            raise _HttpError(400, "'specs' must be a non-empty list of "
                                  "RunSpec objects")
        if len(spec_dicts) > MAX_POINTS_PER_JOB:
            raise _HttpError(413, f"grid exceeds {MAX_POINTS_PER_JOB} "
                                  "points")
        specs = []
        for n, data in enumerate(spec_dicts):
            try:
                spec = RunSpec.from_dict(data).resolved()
                if spec.config is None:
                    raise ValueError("missing config")
                spec.key()  # force full validation of the identity
            except (KeyError, TypeError, ValueError, AttributeError) as exc:
                raise _HttpError(400, f"specs[{n}] is not a valid "
                                      f"RunSpec: {exc}")
            if spec.workload not in WORKLOADS:
                raise _HttpError(400, f"specs[{n}]: unknown workload "
                                      f"{spec.workload!r}")
            specs.append(spec)
        client = (headers.get("x-repro-client")
                  or str(payload.get("client") or "")
                  or self._peer_name(writer))
        # Every job gets a trace id: the client's own (X-Repro-Trace
        # header or "trace" in the body — a sweep spanning several
        # submissions can share one) or a freshly minted one.
        trace = (headers.get("x-repro-trace")
                 or str(payload.get("trace") or "")
                 or _tracing.new_trace_id())
        job = self.queue.submit(client, specs, trace=trace)
        _TENANT_JOBS.inc(client=client)
        if self.journal is not None and not job.is_finished:
            # Submit record lands before the 201 acknowledgement, so an
            # acknowledged job is always recoverable.
            self.journal.record_submit(job)
            job.journal = self.journal
        self._signal_work()
        await self._send_json(writer, 201, {
            "id": job.job_id,
            "points": len(specs),
            "state": job.state,
            "client": client,
            "trace": job.trace,
            "links": {
                "status": f"/v1/jobs/{job.job_id}",
                "stream": f"/v1/jobs/{job.job_id}/stream",
                "results": f"/v1/jobs/{job.job_id}/results",
            },
        })

    async def _stream(self, writer, job, after=0):
        """NDJSON: replay the backlog from ``after``, then push live.

        ``after`` is the count of events the client already consumed
        (the reconnect cursor).  A cursor ahead of the backlog waits
        for the job to catch up — a resumed gateway re-delivers points
        the client saw before the restart, and clamping the cursor back
        would replay them as duplicates.  A finished job whose backlog
        the client has fully consumed gets an empty stream — never a
        hang (:meth:`Job.events_from` ends when the job does).
        """
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: " + _NDJSON.encode() + b"\r\n"
                     b"Transfer-Encoding: chunked\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()
        async for event in job.events_from(after):
            line = (json.dumps(event, sort_keys=True).encode("utf-8")
                    + b"\n")
            writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # -- plumbing ----------------------------------------------------

    @staticmethod
    def _peer_name(writer):
        peer = writer.get_extra_info("peername")
        return peer[0] if peer else "unknown"

    @staticmethod
    def _route_label(path):
        """Collapse job ids out of a path for the per-route counter."""
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
            tail = parts[3] if len(parts) >= 4 else None
            return "/v1/jobs/*" + (f"/{tail}" if tail else "")
        return path

    async def _send_text(self, writer, status, text, content_type):
        body = text.encode("utf-8")
        reason = {200: "OK"}.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1") + body)
        await writer.drain()

    async def _send_json(self, writer, status, payload):
        body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        reason = {200: "OK", 201: "Created", 400: "Bad Request",
                  401: "Unauthorized", 404: "Not Found",
                  405: "Method Not Allowed", 413: "Payload Too Large",
                  431: "Request Header Fields Too Large",
                  500: "Internal Server Error"}.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {_JSON}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1") + body)
        await writer.drain()

    def _engines(self):
        """The engine-tier report, probed at most once a minute.

        ``/v1/healthz`` is auth-exempt and load balancers poll it, so
        the toolchain probe behind :func:`engine_tier_report` must not
        run per request.
        """
        now = time.time()
        if (self._engines_report is None
                or now - self._engines_probed_at > 60.0):
            self._engines_report = engine_tier_report()
            self._engines_probed_at = now
        return self._engines_report

    def _healthz(self):
        return {"ok": True, "version": self.version,
                "auth": self.token is not None,
                "uptime": time.time() - self.started_at,
                "jobs": self.queue.counters()["jobs"],
                "engines": self._engines()}

    def _refresh_gauges(self):
        """Point-in-time gauges, set at scrape time."""
        counters = self.queue.counters()
        _UPTIME_GAUGE.set(time.time() - self.started_at)
        for state, count in counters["jobs"].items():
            _JOBS_GAUGE.set(count, state=state)
        _PENDING_GAUGE.set(counters["points_pending"])
        _ROUNDS_GAUGE.set(self.rounds)
        _POINTS_GAUGE.set(self.points_executed, source="executed")
        _POINTS_GAUGE.set(self.points_cached, source="cached")
        _ROUND_FAILURES_GAUGE.set(self.round_failures)
        _UNAUTHORIZED_GAUGE.set(self.unauthorized)
        _BUILD_INFO.set(1, version=self.version)

    def prometheus(self):
        """The Prometheus text exposition ``GET /v1/metrics`` serves."""
        self._refresh_gauges()
        return _REGISTRY.render()

    def _tenants(self):
        """Per-tenant usage, read back from the metrics registry."""
        tenants = {}

        def entry(client):
            return tenants.setdefault(client, {
                "jobs": 0, "points_executed": 0, "points_cached": 0,
                "degraded_rounds": 0, "queue_wait_p50": None})

        for (client,), value in _TENANT_JOBS.series():
            entry(client)["jobs"] = int(value)
        for (client, source), value in _TENANT_POINTS.series():
            entry(client)[f"points_{source}"] = int(value)
        for (client,), value in _TENANT_DEGRADED.series():
            entry(client)["degraded_rounds"] = int(value)
        for (client,), _state in _TENANT_QUEUE_WAIT.series():
            p50 = _TENANT_QUEUE_WAIT.percentile(50, client=client)
            entry(client)["queue_wait_p50"] = (
                round(p50, 6) if p50 is not None else None)
        return tenants

    def _jobs_recent(self, limit=20):
        """Snapshots of the most recently created jobs (dashboard)."""
        jobs = sorted(self.queue.jobs.values(),
                      key=lambda job: job.created, reverse=True)
        return [job.snapshot() for job in jobs[:limit]]

    def metrics(self):
        """The JSON metrics document (``/v1/metrics.json``)."""
        executor = type(self.engine.executor).__name__
        return {
            "uptime": time.time() - self.started_at,
            "version": self.version,
            "requests": self.requests,
            "unauthorized": self.unauthorized,
            "rounds": self.rounds,
            "max_inflight": self.max_inflight,
            "points_executed": self.points_executed,
            "points_cached": self.points_cached,
            "round_failures": self.round_failures,
            "last_round_error": self.last_round_error,
            "degraded": self.degraded,
            "journal": self.journal is not None,
            "resumed_jobs": self.resumed_jobs,
            "executor": executor,
            "store": self.engine.store is not None,
            "queue": self.queue.counters(),
            "tenants": self._tenants(),
            "jobs_recent": self._jobs_recent(),
        }
