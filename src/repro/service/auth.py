"""Shared-token authentication for the HTTP gateway.

One secret protects the whole serving stack: the ``REPRO_TOKEN``
environment variable guards both the worker TCP protocol
(:mod:`repro.engine.remote`) and the HTTP API here, so a cluster plus
its gateway is secured by exporting a single variable on every host.
The token itself and the constant-time comparison live in
:func:`repro.engine.remote.service_token` /
:func:`repro.engine.remote.token_matches`; this module adds the HTTP
framing — where a request carries the secret and how the gateway
refuses one that doesn't.

Clients present the token as either header::

    Authorization: Bearer <token>
    X-Repro-Token: <token>

When no token is configured, authentication is off (the pre-auth
trusted-network behavior) and every request passes.
``GET /v1/healthz`` is always exempt so load balancers can probe
liveness without credentials.
"""

from __future__ import annotations

from repro.engine.remote import service_token, token_matches

__all__ = ["presented_token", "authorized", "service_token",
           "token_matches"]


def presented_token(headers):
    """The token an HTTP request presents, or ``None``.

    ``headers`` is a lowercase-keyed mapping.  ``Authorization: Bearer``
    wins over ``X-Repro-Token`` when both are present.
    """
    auth = headers.get("authorization", "")
    if auth[:7].lower() == "bearer ":
        return auth[7:].strip()
    return headers.get("x-repro-token")


def authorized(headers, token):
    """Whether a request's headers satisfy the gateway's ``token``.

    ``token=None`` means auth is off; otherwise the presented token is
    compared in constant time.
    """
    return token_matches(token, presented_token(headers))
