"""Blocking HTTP client for the simulation gateway.

:class:`GatewayClient` is what ``repro submit|status|fetch`` (and any
script) uses to talk to a running ``repro serve`` — stdlib
``http.client`` only, one connection per call, token attached
automatically from ``REPRO_TOKEN``.  The NDJSON stream endpoint is
exposed as a plain generator::

    client = GatewayClient("http://gw:8750")
    job = client.submit(specs)
    for event in client.stream(job["id"]):
        print(event["workload"], event["result"]["stats"]["ipc"])

Every method raises :class:`GatewayError` (carrying the HTTP status)
when the gateway refuses a request, so a 401 from a missing token is
a clear one-line failure, not a JSON parse crash.
"""

from __future__ import annotations

import http.client
import json
import os
import time
import urllib.parse

from repro.engine.remote import service_token
from repro.engine.resilience import RetryPolicy
from repro.uarch.stats import SimResult

#: Default TCP port for ``repro serve`` (override with ``--port``).
DEFAULT_GATEWAY_PORT = 8750


def default_gateway_url():
    """The gateway base URL: ``REPRO_GATEWAY`` or localhost's default."""
    return (os.environ.get("REPRO_GATEWAY")
            or f"http://127.0.0.1:{DEFAULT_GATEWAY_PORT}")


class GatewayError(RuntimeError):
    """A non-2xx gateway response, carrying the HTTP ``status``."""

    def __init__(self, status, message):
        super().__init__(f"gateway returned {status}: {message}")
        self.status = status


class GatewayClient:
    """Talks the gateway's ``/v1`` API (see :mod:`repro.service.gateway`).

    Parameters
    ----------
    url:
        Base URL, e.g. ``http://gw:8750`` (default:
        :func:`default_gateway_url`).  Only ``http`` is spoken.
    token:
        Shared secret sent as ``Authorization: Bearer`` (default: the
        ``REPRO_TOKEN`` environment variable).
    client_id:
        Fair-share identity sent as ``X-Repro-Client`` (default: the
        gateway falls back to the peer address).
    timeout:
        Per-request socket timeout in seconds (streams are exempt —
        they stay open while a job runs).
    """

    def __init__(self, url=None, token=None, client_id=None, timeout=30.0):
        parsed = urllib.parse.urlsplit(url or default_gateway_url())
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported gateway scheme {parsed.scheme!r}"
                             " (the gateway speaks plain http)")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or DEFAULT_GATEWAY_PORT
        self.token = service_token() if token is None else (token or None)
        self.client_id = client_id
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------

    def _headers(self):
        headers = {"Accept": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        if self.client_id:
            headers["X-Repro-Client"] = str(self.client_id)
        return headers

    def _request(self, method, path, payload=None, timeout="default"):
        """One round trip; returns the parsed JSON body (or raises)."""
        connection, response = self._open(method, path, payload, timeout)
        try:
            body = response.read()
        finally:
            connection.close()
        return self._parse(response.status, body)

    def _open(self, method, path, payload=None, timeout="default"):
        """Send one request; returns ``(connection, live response)``."""
        timeout = self.timeout if timeout == "default" else timeout
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=timeout)
        headers = self._headers()
        body = None
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
        except (OSError, http.client.HTTPException) as exc:
            connection.close()
            raise ConnectionError(
                f"gateway {self.host}:{self.port} unreachable: {exc}")
        return connection, response

    @staticmethod
    def _parse(status, body):
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            payload = {"error": body[:200].decode("latin-1")}
        if status >= 400:
            raise GatewayError(status, payload.get("error", "unknown"))
        return payload

    # -- the API -----------------------------------------------------

    def healthz(self):
        """``GET /v1/healthz`` — liveness, version, auth mode."""
        return self._request("GET", "/v1/healthz")

    def metrics(self):
        """``GET /v1/metrics`` — gateway/queue/engine counters."""
        return self._request("GET", "/v1/metrics")

    def submit(self, specs, client=None):
        """``POST /v1/jobs`` — submit a grid of specs.

        ``specs`` may be :class:`~repro.engine.spec.RunSpec` objects or
        already-serialized dicts.  Returns the submission document
        (``{"id": ..., "points": N, ...}``).
        """
        serialized = [spec.to_dict() if hasattr(spec, "to_dict") else spec
                      for spec in specs]
        payload = {"specs": serialized}
        if client or self.client_id:
            payload["client"] = client or self.client_id
        return self._request("POST", "/v1/jobs", payload)

    def status(self, job_id):
        """``GET /v1/jobs/<id>`` — the job's progress snapshot."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id):
        """``DELETE /v1/jobs/<id>`` — cancel; unscheduled points die."""
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def stream(self, job_id, timeout=None, after=0, reconnect=True,
               max_reconnects=5):
        """``GET /v1/jobs/<id>/stream`` — yield events as they arrive.

        A generator of decoded NDJSON events: backlog first, then live
        points the moment the gateway publishes them, ending after the
        terminal ``{"event": "end", ...}`` record.  ``timeout=None``
        keeps the socket open for as long as the job runs.

        A dropped connection does **not** kill the stream: the client
        counts delivered events and reopens with ``?after=<count>``, so
        nothing replays and nothing is lost — it even rides out a
        gateway restart, provided the gateway comes back with
        ``--resume`` on the same address.  Up to ``max_reconnects``
        consecutive failed attempts are retried with backoff (the
        budget resets whenever an event arrives); pass
        ``reconnect=False`` for the old raise-on-drop behavior.
        ``after`` starts the stream past events already consumed.
        """
        delivered = int(after)
        failures = 0
        policy = RetryPolicy(attempts=max(1, int(max_reconnects)) + 1,
                             base_delay=0.2, max_delay=2.0)
        while True:
            try:
                for event in self._stream_once(job_id, delivered, timeout):
                    delivered += 1
                    failures = 0  # progress restores the retry budget
                    yield event
                    if event.get("event") == "end":
                        return
                if not reconnect:
                    return  # legacy behavior: clean close ends the stream
                # Closed without a terminal event — the gateway went
                # away mid-job; treat like a drop and reconnect.
                raise ConnectionError(
                    f"stream from {self.host}:{self.port} ended before "
                    f"the job did (after {delivered} event(s))")
            except ConnectionError:
                failures += 1
                if not reconnect or failures > max_reconnects:
                    raise
                time.sleep(policy.backoff(failures - 1))

    def _stream_once(self, job_id, after, timeout):
        """One stream connection from the ``after`` cursor (no retry)."""
        path = f"/v1/jobs/{job_id}/stream"
        if after:
            path += f"?after={int(after)}"
        connection, response = self._open("GET", path, timeout=timeout)
        try:
            if response.status >= 400:
                self._parse(response.status, response.read())  # raises
            while True:
                try:
                    line = response.readline()
                except (http.client.HTTPException, OSError) as exc:
                    # e.g. IncompleteRead when the gateway dies
                    # mid-chunk: surface one clean error type.
                    raise ConnectionError(
                        f"stream from {self.host}:{self.port} "
                        f"interrupted: {exc}")
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    def results(self, job_id):
        """``GET /v1/jobs/<id>/results`` — collected result dicts.

        Unfinished points are ``None``; check ``status()`` (or consume
        :meth:`stream`) to wait for completion.
        """
        return self._request("GET", f"/v1/jobs/{job_id}/results")

    def fetch(self, job_id):
        """Collected :class:`~repro.uarch.stats.SimResult` objects.

        The deserialized form of :meth:`results`, with ``None`` holes
        for unfinished points.
        """
        payload = self.results(job_id)
        return [SimResult.from_dict(r) if r is not None else None
                for r in payload.get("results", [])]

    def run(self, specs, client=None):
        """Submit, stream to completion, and return the results.

        The blocking convenience path: bit-identical to running the
        same specs through a local :class:`~repro.engine.core
        .BatchEngine`, because the gateway executes the same fully
        seeded work units.  Raises :class:`GatewayError` if the job
        fails or is cancelled.
        """
        job = self.submit(specs, client=client)
        for event in self.stream(job["id"]):
            if (event.get("event") == "end"
                    and event.get("state") != "done"):
                raise GatewayError(
                    500, f"job {job['id']} ended {event.get('state')}: "
                         f"{event.get('error')}")
        return self.fetch(job["id"])
