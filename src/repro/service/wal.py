"""Durable job journal: the gateway's write-ahead log.

Without a journal, a crashed gateway forgets every job it ever
accepted — clients hold ids that now 404 and half-finished grids are
lost.  :class:`JobJournal` fixes that with one tiny append-only NDJSON
file per job under ``REPRO_CACHE_DIR/gateway/``::

    job-<id>.wal:
      {"event": "submit", "id": ..., "client": ...,
       "created": ..., "specs": [<RunSpec.to_dict()>, ...]}
      {"event": "point", "index": 3}
      {"event": "point", "index": 0}
      {"event": "end", "state": "done"}

The submit record lands before the job is acknowledged, one ``point``
record lands per delivered result, and the terminal record (followed by
best-effort unlinking of the whole file) marks the job as needing no
recovery.  ``repro serve --resume`` calls :meth:`unfinished` on boot,
re-creates each un-ended job under its original id, and re-runs **only
the points missing from the result store** — completed points were
persisted by the engine's store before their WAL record was written,
so recovery serves them back bit-identically without re-simulating.

Appends use the same single-``os.write``/``O_APPEND`` discipline as the
result store, and every method is best-effort: an unwritable cache
directory downgrades the gateway to the old forgetful behavior instead
of failing requests.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.engine.store import default_cache_dir

__all__ = ["JobJournal", "default_journal_dir"]


def default_journal_dir():
    """Where gateway WALs live: ``REPRO_CACHE_DIR/gateway``."""
    return pathlib.Path(default_cache_dir()) / "gateway"


class JobJournal:
    """Append-only per-job WAL files under one directory.

    Thread-compatible with the gateway's single event-loop writer; all
    I/O is best-effort (see the module docstring).
    """

    def __init__(self, directory=None):
        self.directory = pathlib.Path(directory or default_journal_dir())
        self._broken = False

    def path_for(self, job_id):
        """The WAL path for one job id."""
        return self.directory / f"job-{job_id}.wal"

    def _append(self, job_id, record):
        if self._broken:
            return
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.path_for(job_id),
                         os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, data)  # one write: never torn for readers
            finally:
                os.close(fd)
        except OSError:
            self._broken = True  # unwritable dir: journaling off

    def record_submit(self, job):
        """Journal a newly accepted job (specs serialized in order)."""
        self._append(job.job_id, {
            "event": "submit",
            "id": job.job_id,
            "client": job.client,
            "created": job.created,
            "specs": [spec.to_dict() for spec in job.specs],
        })

    def record_point(self, job_id, index):
        """Journal one delivered point."""
        self._append(job_id, {"event": "point", "index": int(index)})

    def record_end(self, job_id, state):
        """Journal the terminal state, then drop the WAL (best-effort).

        The end record is appended first so a failed unlink still
        leaves the job marked finished for :meth:`unfinished`.
        """
        self._append(job_id, {"event": "end", "state": state})
        try:
            self.path_for(job_id).unlink()
        except OSError:
            pass

    def discard(self, job_id):
        """Drop one job's WAL without journaling an end record."""
        try:
            self.path_for(job_id).unlink()
        except OSError:
            pass

    def unfinished(self):
        """Recovery records for every job with no terminal WAL entry.

        Returns dicts ``{"id", "client", "created", "specs" (wire-form
        dicts), "done" (set of delivered indices), "path"}``, in WAL
        name order.  Corrupt lines and WALs with no submit record are
        skipped — a torn journal must never block a restart.
        """
        try:
            paths = sorted(self.directory.glob("job-*.wal"))
        except OSError:
            return []
        records = []
        for path in paths:
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            submit, done, ended = None, set(), False
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    event = entry.get("event")
                    if event == "submit":
                        submit = entry
                    elif event == "point":
                        done.add(int(entry["index"]))
                    elif event == "end":
                        ended = True
                except (ValueError, KeyError, TypeError):
                    continue  # torn mid-append; later records still count
            if ended or submit is None or not submit.get("id"):
                continue
            records.append({
                "id": str(submit["id"]),
                "client": str(submit.get("client") or ""),
                "created": submit.get("created"),
                "specs": submit.get("specs") or [],
                "done": done,
                "path": str(path),
            })
        return records
