"""The zero-dependency live cluster dashboard page.

One static HTML document served by the gateway at ``GET
/v1/dashboard`` — no build step, no external assets, no framework.
The page polls ``/v1/metrics.json`` and ``/v1/healthz`` every two
seconds and renders cluster state (queue depths, rounds, points),
per-tenant load (jobs, points, cache hits, degraded rounds), engine
tier residency (interp/compiled/native), and the most recent jobs with
live progress.  When the gateway requires auth the operator pastes the
shared token into the header field; it is kept in ``localStorage`` and
sent as ``Authorization: Bearer`` on every poll.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

#: The complete ``/v1/dashboard`` document.
DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro cluster dashboard</title>
<style>
  body { font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
         background: #101418; color: #d4dae1; margin: 0; padding: 1rem; }
  h1 { font-size: 1.1rem; margin: 0 0 .75rem; color: #7fd1b9; }
  h2 { font-size: .9rem; margin: 1.2rem 0 .4rem; color: #8ab4d8;
       text-transform: uppercase; letter-spacing: .08em; }
  table { border-collapse: collapse; width: 100%; font-size: .85rem; }
  th, td { text-align: left; padding: .25rem .6rem;
           border-bottom: 1px solid #222a33; }
  th { color: #7a8793; font-weight: normal; }
  .pill { display: inline-block; padding: .05rem .5rem;
          border-radius: 999px; font-size: .75rem; }
  .ok   { background: #14432f; color: #7fd1b9; }
  .bad  { background: #4a1f24; color: #e8919b; }
  .dim  { color: #61707d; }
  .bar  { background: #1b232c; border-radius: 3px; height: .55rem;
          width: 10rem; display: inline-block; vertical-align: middle; }
  .bar i { display: block; height: 100%; background: #4f9cd9;
           border-radius: 3px; }
  #err { color: #e8919b; margin-left: 1rem; }
  input { background: #1b232c; color: #d4dae1; border: 1px solid #2c3743;
          border-radius: 4px; padding: .2rem .5rem; }
  .cards { display: flex; gap: 1rem; flex-wrap: wrap; }
  .card { background: #161c23; border: 1px solid #222a33;
          border-radius: 6px; padding: .6rem .9rem; min-width: 8rem; }
  .card b { display: block; font-size: 1.3rem; color: #e8eef3; }
  .card span { font-size: .72rem; color: #7a8793;
               text-transform: uppercase; letter-spacing: .06em; }
</style>
</head>
<body>
<h1>repro cluster dashboard
  <input id="token" placeholder="REPRO_TOKEN (if auth on)" size="24">
  <span id="err"></span></h1>
<div class="cards" id="cards"></div>
<h2>Engine tiers</h2><div id="tiers" class="dim">loading…</div>
<h2>Tenants</h2><div id="tenants" class="dim">no traffic yet</div>
<h2>Recent jobs</h2><div id="jobs" class="dim">none</div>
<script>
"use strict";
const $ = (id) => document.getElementById(id);
const tokenBox = $("token");
tokenBox.value = localStorage.getItem("repro-token") || "";
tokenBox.addEventListener("change", () => {
  localStorage.setItem("repro-token", tokenBox.value.trim());
});
function headers() {
  const t = tokenBox.value.trim();
  return t ? { "Authorization": "Bearer " + t } : {};
}
function esc(s) {
  return String(s).replace(/[&<>"]/g, (c) => ({
    "&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;" }[c]));
}
function card(label, value) {
  return `<div class="card"><b>${esc(value)}</b>` +
         `<span>${esc(label)}</span></div>`;
}
function fmtUptime(s) {
  s = Math.floor(s);
  const h = Math.floor(s / 3600), m = Math.floor((s % 3600) / 60);
  return h ? `${h}h${m}m` : m ? `${m}m${s % 60}s` : `${s}s`;
}
function renderCards(m) {
  const q = m.queue || {};
  const jobs = (q.jobs || {});
  $("cards").innerHTML =
    card("version", m.version || "?") +
    card("uptime", fmtUptime(m.uptime || 0)) +
    card("executor", m.executor || "?") +
    card("rounds", m.rounds ?? 0) +
    card("executed", m.points_executed ?? 0) +
    card("cached", m.points_cached ?? 0) +
    card("running jobs", jobs.running ?? 0) +
    card("queued jobs", jobs.queued ?? 0) +
    card("pending points", q.points_pending ?? 0) +
    card("round failures", m.round_failures ?? 0) +
    (m.degraded ? card("DEGRADED", m.degraded.reason || "yes") : "");
}
function renderTiers(h) {
  const e = (h && h.engines) || null;
  if (!e) { $("tiers").textContent = "healthz has no engine report"; return; }
  const pill = (ok) => ok
    ? '<span class="pill ok">available</span>'
    : '<span class="pill bad">unavailable</span>';
  $("tiers").innerHTML =
    `interp ${pill(e.interp && e.interp.available)} · ` +
    `compiled ${pill(e.compiled && e.compiled.available)} · ` +
    `native ${pill(e.native && e.native.available)} · ` +
    `auto → <b>${esc(e.resolved_auto || "?")}</b>`;
}
function renderTenants(m) {
  const t = m.tenants || {};
  const names = Object.keys(t).sort();
  if (!names.length) { $("tenants").textContent = "no traffic yet"; return; }
  let html = "<table><tr><th>client</th><th>jobs</th><th>executed</th>" +
             "<th>cached</th><th>degraded rounds</th>" +
             "<th>queue wait p50</th></tr>";
  for (const name of names) {
    const r = t[name];
    html += `<tr><td>${esc(name)}</td><td>${r.jobs ?? 0}</td>` +
            `<td>${r.points_executed ?? 0}</td>` +
            `<td>${r.points_cached ?? 0}</td>` +
            `<td>${r.degraded_rounds ?? 0}</td>` +
            `<td>${r.queue_wait_p50 == null ? "–"
                   : r.queue_wait_p50.toFixed(3) + "s"}</td></tr>`;
  }
  $("tenants").innerHTML = html + "</table>";
}
function renderJobs(m) {
  const jobs = m.jobs_recent || [];
  if (!jobs.length) { $("jobs").textContent = "none"; return; }
  let html = "<table><tr><th>id</th><th>client</th><th>state</th>" +
             "<th>progress</th><th>trace</th></tr>";
  for (const j of jobs) {
    const pct = j.points ? Math.round(100 * j.done / j.points) : 100;
    html += `<tr><td>${esc((j.id || "").slice(0, 12))}</td>` +
            `<td>${esc(j.client || "")}</td><td>${esc(j.state)}</td>` +
            `<td><span class="bar"><i style="width:${pct}%"></i></span> ` +
            `${j.done}/${j.points}</td>` +
            `<td class="dim">${esc((j.trace || "").slice(0, 12))}</td></tr>`;
  }
  $("jobs").innerHTML = html + "</table>";
}
async function poll() {
  try {
    const [mRes, hRes] = await Promise.all([
      fetch("/v1/metrics.json", { headers: headers() }),
      fetch("/v1/healthz"),
    ]);
    if (!mRes.ok) throw new Error("metrics " + mRes.status);
    const m = await mRes.json();
    const h = hRes.ok ? await hRes.json() : null;
    renderCards(m); renderTiers(h); renderTenants(m); renderJobs(m);
    $("err").textContent = "";
  } catch (e) {
    $("err").textContent = String(e);
  }
}
poll();
setInterval(poll, 2000);
</script>
</body>
</html>
"""
