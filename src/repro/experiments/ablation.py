"""Ablation: which source of register waste matters more?

The paper's §3.1 identifies two sources of waste in conventional
renaming and positions virtual-physical registers as eliminating the
first (allocation long before the value exists); the counter-based
early-release scheme of refs [8][10] eliminates the second (release
long after the last use).  This experiment — discussed but not plotted
in the paper — compares all three schemes plus the combination
directions on the full benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reports import format_table, harmonic_mean
from repro.experiments.runner import (
    ALL_BENCHMARKS,
    SHARED_CACHE,
    RunSpec,
)
from repro.uarch.config import (
    ProcessorConfig,
    RenamingScheme,
    conventional_config,
    virtual_physical_config,
)


@dataclass
class AblationResult:
    """IPC per benchmark for each renaming scheme."""

    conventional: dict = field(default_factory=dict)
    early_release: dict = field(default_factory=dict)
    virtual_physical: dict = field(default_factory=dict)

    def format(self):
        headers = ["benchmark", "conv", "early-release", "virtual-physical"]
        rows = []
        for b in ALL_BENCHMARKS:
            rows.append([
                b,
                f"{self.conventional[b]:.2f}",
                f"{self.early_release[b]:.2f}",
                f"{self.virtual_physical[b]:.2f}",
            ])
        hm = lambda d: harmonic_mean(d[b] for b in ALL_BENCHMARKS)
        rows.append([
            "hmean",
            f"{hm(self.conventional):.2f}",
            f"{hm(self.early_release):.2f}",
            f"{hm(self.virtual_physical):.2f}",
        ])
        return format_table(
            headers, rows,
            title="Ablation: early release (waste #2) vs. late allocation (waste #1)",
        )


def run_ablation(cache=None):
    """IPC of conventional / early-release / VP renaming at 64 registers."""
    cache = cache or SHARED_CACHE
    result = AblationResult()
    tables = (result.conventional, result.early_release,
              result.virtual_physical)
    configs = (
        conventional_config(),
        ProcessorConfig(scheme=RenamingScheme.EARLY_RELEASE),
        virtual_physical_config(nrr=32),
    )
    grid = [RunSpec(bench, cfg) for cfg in configs for bench in ALL_BENCHMARKS]
    runs = iter(cache.run_specs(grid))
    for table in tables:
        for bench in ALL_BENCHMARKS:
            table[bench] = next(runs).ipc
    return result
