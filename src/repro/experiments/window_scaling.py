"""Window scaling — the paper's §5 forward-looking claim.

    "the benefits of reducing the register pressure can be even much
    more beneficial for future architectures with a larger instruction
    window and thus, a much higher register pressure"

This experiment (not a figure in the paper) scales the reorder buffer at
a fixed 64-register file and measures the VP improvement at each window
size.  The expectation: the conventional scheme saturates (its window is
register-bound), while the VP scheme keeps converting window into
memory-level parallelism — so the improvement grows with the window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reports import format_table, harmonic_mean
from repro.experiments.runner import (
    ALL_BENCHMARKS,
    SHARED_CACHE,
    RunSpec,
)
from repro.uarch.config import conventional_config, virtual_physical_config

WINDOW_SWEEP = (32, 64, 128, 256)


@dataclass
class WindowScalingResult:
    """IPC per benchmark per ROB size, both schemes."""

    window_values: tuple = WINDOW_SWEEP
    conventional_ipc: dict = field(default_factory=dict)  # rob -> {bench: ipc}
    virtual_ipc: dict = field(default_factory=dict)

    def improvement_pct(self, rob):
        conv = harmonic_mean(self.conventional_ipc[rob][b]
                             for b in ALL_BENCHMARKS)
        virt = harmonic_mean(self.virtual_ipc[rob][b] for b in ALL_BENCHMARKS)
        return 100.0 * (virt / conv - 1.0)

    def format(self):
        headers = ["ROB", "conv hmean IPC", "VP hmean IPC", "improvement"]
        rows = []
        for rob in self.window_values:
            conv = harmonic_mean(self.conventional_ipc[rob][b]
                                 for b in ALL_BENCHMARKS)
            virt = harmonic_mean(self.virtual_ipc[rob][b]
                                 for b in ALL_BENCHMARKS)
            rows.append([rob, f"{conv:.2f}", f"{virt:.2f}",
                         f"{self.improvement_pct(rob):+.0f}%"])
        return format_table(
            headers, rows,
            title=("Window scaling at 64 registers/file "
                   "(paper §5: gains grow with the window)"),
        )


def run_window_scaling(window_values=WINDOW_SWEEP, cache=None):
    """Sweep the ROB size with both schemes at 64 registers per file."""
    cache = cache or SHARED_CACHE
    result = WindowScalingResult(window_values=tuple(window_values))
    specs = []
    for rob in result.window_values:
        conv_cfg = conventional_config(rob_size=rob, iq_size=rob)
        vp_cfg = virtual_physical_config(nrr=32, rob_size=rob, iq_size=rob)
        specs += [RunSpec(b, cfg) for cfg in (conv_cfg, vp_cfg)
                  for b in ALL_BENCHMARKS]
    runs = iter(cache.run_specs(specs))
    for rob in result.window_values:
        result.conventional_ipc[rob] = {
            b: next(runs).ipc for b in ALL_BENCHMARKS
        }
        result.virtual_ipc[rob] = {
            b: next(runs).ipc for b in ALL_BENCHMARKS
        }
    return result
