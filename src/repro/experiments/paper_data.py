"""Published numbers from the paper, for paper-vs-measured reporting.

Only values printed in the paper are recorded here (Table 2 exactly;
figures as the properties the text states).  The benchmark harness
prints measured values next to these and checks *shape*, not absolute
equality — our substrate is a simplified simulator on synthetic
workloads, not the authors' Alpha traces.
"""

from __future__ import annotations

#: Table 2 — IPC under conventional renaming and under virtual-physical
#: renaming (write-back allocation, 64 physical registers, NRR = 32).
TABLE2_CONVENTIONAL_IPC = {
    "go": 0.73,
    "li": 0.98,
    "compress": 1.75,
    "vortex": 1.14,
    "apsi": 1.37,
    "swim": 1.12,
    "mgrid": 1.32,
    "hydro2d": 2.16,
    "wave5": 1.64,
}

TABLE2_VIRTUAL_IPC = {
    "go": 0.76,
    "li": 1.05,
    "compress": 1.84,
    "vortex": 1.24,
    "apsi": 1.76,
    "swim": 2.06,
    "mgrid": 2.09,
    "hydro2d": 2.24,
    "wave5": 1.71,
}

TABLE2_IMPROVEMENT_PCT = {
    "go": 4,
    "li": 7,
    "compress": 5,
    "vortex": 9,
    "apsi": 28,
    "swim": 84,
    "mgrid": 58,
    "hydro2d": 4,
    "wave5": 4,
}

#: Harmonic means of Table 2 and the headline improvement.
TABLE2_HMEAN_CONVENTIONAL = 1.23
TABLE2_HMEAN_VIRTUAL = 1.46
TABLE2_HMEAN_IMPROVEMENT_PCT = 19

#: §4.2.1: with a 20-cycle miss penalty the improvement drops to 12%.
TABLE2_IMPROVEMENT_PCT_20CYCLE = 12

#: §4.2.1: "Each committed instruction is executed in average 3.3 times."
EXECUTIONS_PER_COMMIT = 3.3

#: Figure 4 — NRR values swept for write-back allocation.
FIGURE4_NRR_VALUES = (1, 4, 8, 16, 24, 32)
#: Text: FP speedup at NRR=32 averages 1.3; swim ranges 1.27..1.84.
FIGURE4_FP_SPEEDUP_AT_32 = 1.3
FIGURE4_SWIM_SPEEDUP_RANGE = (1.27, 1.84)

#: Figure 5 — issue allocation; best NRR is 32 with a 4% improvement.
FIGURE5_BEST_IMPROVEMENT_PCT = 4

#: Figure 7 — improvement of VP over conventional per register-file size
#: (write-back allocation, NRR = NPR - 32).
FIGURE7_IMPROVEMENT_PCT = {48: 31, 64: 19, 96: 8}
#: Text: VP with 48 registers (avg IPC 1.17) ~= conventional with 64 (1.23).
FIGURE7_VP48_AVG_IPC = 1.17
FIGURE7_CONV64_AVG_IPC = 1.23

#: §3.1 worked example: register pressure in allocated register-cycles.
SECTION31_PRESSURE_DECODE = 151
SECTION31_PRESSURE_WRITEBACK = 38
SECTION31_PRESSURE_ISSUE = 88
