"""Port sensitivity — IPC vs. register-file read ports, per policy.

The paper's machine reads an idealized register file; the read-port
reduction literature (Los, "Efficient Read-Port-Count Reduction Schemes
for the Centralized Physical Register File") shows ports are the
dominant register-file cost and asks how far they can shrink before IPC
collapses.  This experiment (not a figure of the paper) answers that
question for every renaming policy: it sweeps the per-class read-port
count with the port/bank contention model (``uarch/regfile.py``)
enabled and reports IPC per policy × port count.

Expectations the benchmark asserts:

* for every policy **without** squash-and-re-execute (conventional,
  early-release, vp-issue — :data:`MONOTONE_POLICIES`), IPC is
  **monotonically non-increasing** as read ports shrink: fewer ports
  can only delay issues;
* at the paper's 16 ports the model is not binding (IPC matches the
  port-free machine), while 2 ports visibly throttle an 8-wide issue.

``vp-writeback`` is the deliberate exception: its squashed completions
re-execute freely (paper §4.2.1, 3.3 executions per commit), and a
narrow read-port budget *throttles those useless re-executions*,
occasionally raising IPC as ports shrink (swim gains ~3% going from 16
to 2 ports) — the same resource-waste mechanism ``retry_gating``
attacks on purpose.  The sweep still shows a net IPC loss from the
widest to the narrowest file, which is what the benchmark pins for it.

Surfaced as ``repro port-sweep`` and
``benchmarks/test_port_sensitivity.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reports import format_table, harmonic_mean
from repro.core.policy import policy_names
from repro.experiments.runner import (
    ALL_BENCHMARKS,
    SHARED_CACHE,
    RunSpec,
)
from repro.uarch.config import policy_config

#: the default read-port sweep: the paper's 16 down to a 2-port file.
PORT_SWEEP = (16, 8, 4, 2)
#: the default policies compared (the paper's baseline and both
#: flavors of its proposal).
DEFAULT_POLICIES = ("conventional", "vp-issue", "vp-writeback")
#: policies the monotonicity gate covers: everything without
#: squash-and-re-execute, where a port limit has no wasted work to
#: reclaim and has never raised IPC on any pinned grid (see the module
#: docstring for why vp-writeback is excluded; the property is
#: empirical — deterministic per grid, not a theorem).
MONOTONE_POLICIES = ("conventional", "early-release", "vp-issue")


@dataclass
class PortSensitivityResult:
    """IPC per policy per read-port count (plus the conflict counts)."""

    read_ports: tuple = PORT_SWEEP
    policies: tuple = DEFAULT_POLICIES
    benchmarks: tuple = ALL_BENCHMARKS
    #: policy -> ports -> {bench: ipc}
    ipc: dict = field(default_factory=dict)
    #: policy -> ports -> summed read stalls across the benchmarks
    read_stalls: dict = field(default_factory=dict)

    def hmean_ipc(self, policy, ports):
        """Harmonic-mean IPC of one policy at one read-port count."""
        return harmonic_mean(self.ipc[policy][ports][b]
                             for b in self.benchmarks)

    def is_monotone(self, policy, tolerance=1e-9):
        """Whether IPC never *increases* as read ports shrink.

        ``tolerance`` absorbs floating-point noise in the harmonic
        mean; the underlying cycle counts are exact integers.
        """
        means = [self.hmean_ipc(policy, p)
                 for p in sorted(self.read_ports, reverse=True)]
        return all(b <= a + tolerance for a, b in zip(means, means[1:]))

    def degradation_pct(self, policy):
        """IPC loss (%) from the widest to the narrowest port count."""
        widest = self.hmean_ipc(policy, max(self.read_ports))
        narrowest = self.hmean_ipc(policy, min(self.read_ports))
        return 100.0 * (1.0 - narrowest / widest)

    def format(self):
        """The sweep as a fixed-width table (policies × port counts)."""
        ports = sorted(self.read_ports, reverse=True)
        headers = ["policy"] + [f"{p} ports" for p in ports] + ["loss"]
        rows = []
        for policy in self.policies:
            rows.append(
                [policy]
                + [f"{self.hmean_ipc(policy, p):.2f}" for p in ports]
                + [f"-{self.degradation_pct(policy):.0f}%"]
            )
        return format_table(
            headers, rows,
            title=("Port sensitivity: hmean IPC vs. register-file read "
                   "ports (contention model on)"),
        )


def run_port_sensitivity(read_ports=PORT_SWEEP, policies=DEFAULT_POLICIES,
                         benchmarks=ALL_BENCHMARKS, cache=None,
                         instructions=None, skip=None, seed=None):
    """Sweep the read-port count for every policy, one engine batch.

    Each point runs with ``rf_model=True`` and ``rf_read_ports`` set;
    everything else is the paper's machine.  ``policies`` are registry
    names (:func:`repro.core.policy.policy_names` lists them).  Run
    lengths left ``None`` resolve to the ``REPRO_BENCH_*`` environment
    defaults, like every other experiment.
    """
    cache = cache or SHARED_CACHE
    result = PortSensitivityResult(read_ports=tuple(read_ports),
                                   policies=tuple(policies),
                                   benchmarks=tuple(benchmarks))
    specs = [
        RunSpec(bench, policy_config(policy, rf_model=True,
                                     rf_read_ports=ports),
                label=f"{policy}/rp={ports}",
                instructions=instructions, skip=skip, seed=seed)
        for policy in result.policies
        for ports in result.read_ports
        for bench in result.benchmarks
    ]
    runs = iter(cache.run_specs(specs))
    for policy in result.policies:
        by_ports = result.ipc.setdefault(policy, {})
        stalls = result.read_stalls.setdefault(policy, {})
        for ports in result.read_ports:
            table = {}
            total_stalls = 0
            for bench in result.benchmarks:
                run = next(runs)
                table[bench] = run.ipc
                total_stalls += run.stats.rf_read_stalls
            by_ports[ports] = table
            stalls[ports] = total_stalls
    return result


def available_policies():
    """Registry policy names a sweep may select (CLI helper)."""
    return policy_names()
