"""Shared machinery for the per-table/figure experiment runners.

Run lengths default to 30k timed instructions after a 3k functional
warm-up, and can be scaled through environment variables so the same
harness serves quick smoke runs and long reproduction runs::

    REPRO_BENCH_INSTRS=200000 REPRO_BENCH_SKIP=20000 pytest benchmarks/

Every experiment submits its whole grid to the batch engine
(:mod:`repro.engine`) through a :class:`ResultCache`, which layers an
in-process memo and the persistent on-disk store over a pluggable
executor.  ``ResultCache(jobs=4)`` runs a grid on four worker
processes; results are identical to serial execution because each run
is fully seeded.
"""

from __future__ import annotations

import os

from repro.engine import BatchEngine, ResultStore, RunSpec, make_executor
from repro.trace.workloads import FP_BENCHMARKS, INT_BENCHMARKS
from repro.uarch.config import virtual_physical_config, conventional_config

ALL_BENCHMARKS = INT_BENCHMARKS + FP_BENCHMARKS


def bench_instructions():
    return int(os.environ.get("REPRO_BENCH_INSTRS", 30_000))


def bench_skip():
    return int(os.environ.get("REPRO_BENCH_SKIP", 3_000))


def bench_seed():
    return int(os.environ.get("REPRO_BENCH_SEED", 1234))


def resolve_spec(spec):
    """Fill a spec's ``None`` run-length fields from the environment."""
    return spec.resolved(bench_instructions(), bench_skip(), bench_seed())


class ResultCache:
    """Experiment-facing facade over the batch engine.

    Several figures share runs (every sweep needs the conventional
    baseline), so results are memoized on the spec's stable key —
    in-process first, then the persistent store, so repeated figure or
    sweep invocations are near-instant across processes.  Pass
    ``persistent=False`` (or set ``REPRO_NO_CACHE=1``) to skip the
    on-disk store, ``jobs=N`` to execute cache misses on a worker
    pool, and ``executor="remote"`` with ``workers="host[:port],..."``
    to fan them out across ``repro worker`` daemons instead.
    """

    def __init__(self, jobs=1, persistent=None, store=None, progress=None,
                 executor=None, workers=None, heartbeat=None, retries=None,
                 connect_timeout=None, run_timeout=None, on_cluster_loss=None):
        if persistent is None:
            persistent = not os.environ.get("REPRO_NO_CACHE")
        if store is None and persistent:
            store = ResultStore()
        self.engine = BatchEngine(
            executor=make_executor(jobs, kind=executor, workers=workers,
                                   heartbeat=heartbeat, retries=retries,
                                   connect_timeout=connect_timeout,
                                   run_timeout=run_timeout,
                                   on_cluster_loss=on_cluster_loss),
            store=store, progress=progress)

    @property
    def last_batch(self):
        """Hit/miss accounting for the most recent grid submission."""
        return self.engine.last_batch

    def compact(self, prune_stale=False):
        """Compact the persistent store (see :meth:`ResultStore.compact`).

        Returns ``(kept, dropped)``; ``(0, 0)`` when no store is attached.
        """
        store = self.engine.store
        if store is None:
            return 0, 0
        return store.compact(prune_stale=prune_stale)

    def run_specs(self, specs, trace=None):
        """Run a whole grid; results come back in spec order.

        ``trace`` is an optional trace id threaded through the engine
        (see :mod:`repro.obs.tracing`).
        """
        return self.engine.run((resolve_spec(spec) for spec in specs),
                               trace=trace)

    def run_specs_iter(self, specs, trace=None):
        """Stream ``(position, spec, result)`` as each result lands.

        The incremental variant of :meth:`run_specs` (see
        :meth:`BatchEngine.run_specs_iter`); specs are resolved through
        the same environment defaults.
        """
        return self.engine.run_specs_iter(
            [resolve_spec(spec) for spec in specs], trace=trace)

    def run(self, spec):
        """Run (or recall) a single spec."""
        return self.run_specs([spec])[0]


#: Module-level cache shared by all experiment entry points.
SHARED_CACHE = ResultCache()


def conventional_ipcs(cache=None, benchmarks=ALL_BENCHMARKS, **config_changes):
    """Baseline IPC per benchmark under conventional renaming."""
    cache = cache or SHARED_CACHE
    cfg = conventional_config(**config_changes)
    results = cache.run_specs(RunSpec(b, cfg) for b in benchmarks)
    return dict(zip(benchmarks, (r.ipc for r in results)))


def virtual_physical_ipcs(nrr, allocation=None, cache=None,
                          benchmarks=ALL_BENCHMARKS, **config_changes):
    """VP-scheme IPC per benchmark for one NRR / allocation stage."""
    from repro.core.virtual_physical import AllocationStage

    cache = cache or SHARED_CACHE
    allocation = allocation or AllocationStage.WRITEBACK
    cfg = virtual_physical_config(nrr=nrr, allocation=allocation,
                                  **config_changes)
    results = cache.run_specs(RunSpec(b, cfg) for b in benchmarks)
    return dict(zip(benchmarks, (r.ipc for r in results)))
