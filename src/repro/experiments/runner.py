"""Shared machinery for the per-table/figure experiment runners.

Run lengths default to 30k timed instructions after a 3k functional
warm-up, and can be scaled through environment variables so the same
harness serves quick smoke runs and long reproduction runs::

    REPRO_BENCH_INSTRS=200000 REPRO_BENCH_SKIP=20000 pytest benchmarks/
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.trace.workloads import FP_BENCHMARKS, INT_BENCHMARKS
from repro.uarch.config import virtual_physical_config, conventional_config
from repro.uarch.processor import simulate

ALL_BENCHMARKS = INT_BENCHMARKS + FP_BENCHMARKS


def bench_instructions():
    return int(os.environ.get("REPRO_BENCH_INSTRS", 30_000))


def bench_skip():
    return int(os.environ.get("REPRO_BENCH_SKIP", 3_000))


def bench_seed():
    return int(os.environ.get("REPRO_BENCH_SEED", 1234))


@dataclass(frozen=True)
class RunSpec:
    """One simulation in an experiment grid."""

    workload: str
    config: object
    label: str = ""


class ResultCache:
    """Memoizes simulation results inside one process.

    Several figures share runs (every sweep needs the conventional
    baseline); the cache keys on (workload, config, run length) so each
    distinct machine runs once per session.
    """

    def __init__(self):
        self._store = {}

    def run(self, spec):
        # repr() of the (frozen) config is a stable identity; the config
        # itself is unhashable because it holds the FU-count dict.
        key = (spec.workload, repr(spec.config), bench_instructions(),
               bench_skip(), bench_seed())
        if key not in self._store:
            self._store[key] = simulate(
                spec.config,
                workload=spec.workload,
                max_instructions=bench_instructions(),
                skip=bench_skip(),
                seed=bench_seed(),
            )
        return self._store[key]


#: Module-level cache shared by all experiment entry points.
SHARED_CACHE = ResultCache()


def conventional_ipcs(cache=None, benchmarks=ALL_BENCHMARKS, **config_changes):
    """Baseline IPC per benchmark under conventional renaming."""
    cache = cache or SHARED_CACHE
    cfg = conventional_config(**config_changes)
    return {
        b: cache.run(RunSpec(b, cfg)).ipc for b in benchmarks
    }


def virtual_physical_ipcs(nrr, allocation=None, cache=None,
                          benchmarks=ALL_BENCHMARKS, **config_changes):
    """VP-scheme IPC per benchmark for one NRR / allocation stage."""
    from repro.core.virtual_physical import AllocationStage

    cache = cache or SHARED_CACHE
    allocation = allocation or AllocationStage.WRITEBACK
    cfg = virtual_physical_config(nrr=nrr, allocation=allocation,
                                  **config_changes)
    return {
        b: cache.run(RunSpec(b, cfg)).ipc for b in benchmarks
    }

