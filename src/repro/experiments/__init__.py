"""Experiment runners — one entry point per table/figure of the paper.

================  ==========================================
Paper artifact    Entry point
================  ==========================================
Table 2           :func:`repro.experiments.table2.run_table2`
Figure 4          :func:`repro.experiments.figures.run_figure4`
Figure 5          :func:`repro.experiments.figures.run_figure5`
Figure 6          :func:`repro.experiments.figures.run_figure6`
Figure 7          :func:`repro.experiments.figures.run_figure7`
(extra) ablation  :func:`repro.experiments.ablation.run_ablation`
(extra) ports     :func:`repro.experiments.port_sensitivity.run_port_sensitivity`
================  ==========================================
"""

from repro.experiments import paper_data
from repro.experiments.runner import (
    ALL_BENCHMARKS,
    ResultCache,
    RunSpec,
    SHARED_CACHE,
    bench_instructions,
    bench_seed,
    bench_skip,
    conventional_ipcs,
    resolve_spec,
    virtual_physical_ipcs,
)
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.figures import (
    Figure6Result,
    Figure7Result,
    NrrSweepResult,
    NRR_SWEEP,
    PHYS_SWEEP,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_nrr_sweep,
)
from repro.experiments.ablation import AblationResult, run_ablation
from repro.experiments.port_sensitivity import (
    DEFAULT_POLICIES,
    MONOTONE_POLICIES,
    PORT_SWEEP,
    PortSensitivityResult,
    run_port_sensitivity,
)
from repro.experiments.window_scaling import (
    WINDOW_SWEEP,
    WindowScalingResult,
    run_window_scaling,
)
from repro.experiments.branch_sensitivity import (
    BranchSensitivityResult,
    run_branch_sensitivity,
)

__all__ = [
    "paper_data",
    "ALL_BENCHMARKS",
    "ResultCache",
    "RunSpec",
    "SHARED_CACHE",
    "bench_instructions",
    "bench_seed",
    "bench_skip",
    "conventional_ipcs",
    "resolve_spec",
    "virtual_physical_ipcs",
    "Table2Result",
    "run_table2",
    "Figure6Result",
    "Figure7Result",
    "NrrSweepResult",
    "NRR_SWEEP",
    "PHYS_SWEEP",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_nrr_sweep",
    "run_ablation",
    "DEFAULT_POLICIES",
    "MONOTONE_POLICIES",
    "PORT_SWEEP",
    "PortSensitivityResult",
    "run_port_sensitivity",
    "WINDOW_SWEEP",
    "WindowScalingResult",
    "run_window_scaling",
    "BranchSensitivityResult",
    "run_branch_sensitivity",
]
