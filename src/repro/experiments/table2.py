"""Table 2 — IPC of conventional vs. virtual-physical renaming.

Paper configuration: 64 physical registers per file, write-back
allocation, NRR at its maximum (32), 50-cycle miss penalty.  The text
also reports the harmonic-mean improvement at a 20-cycle miss penalty
(12% instead of 19%), which :func:`run_table2` reproduces via the
``miss_penalty`` parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reports import format_table, harmonic_mean
from repro.experiments import paper_data
from repro.experiments.runner import (
    ALL_BENCHMARKS,
    SHARED_CACHE,
    RunSpec,
)
from repro.memory.cache import CacheConfig
from repro.uarch.config import conventional_config, virtual_physical_config


@dataclass
class Table2Result:
    """Measured Table 2 plus the paper's published values."""

    miss_penalty: int
    conventional_ipc: dict = field(default_factory=dict)
    virtual_ipc: dict = field(default_factory=dict)
    executions_per_commit: dict = field(default_factory=dict)

    @property
    def improvement_pct(self):
        return {
            b: 100.0 * (self.virtual_ipc[b] / self.conventional_ipc[b] - 1.0)
            for b in self.conventional_ipc
        }

    @property
    def hmean_conventional(self):
        return harmonic_mean(self.conventional_ipc.values())

    @property
    def hmean_virtual(self):
        return harmonic_mean(self.virtual_ipc.values())

    @property
    def hmean_improvement_pct(self):
        return 100.0 * (self.hmean_virtual / self.hmean_conventional - 1.0)

    @property
    def mean_executions_per_commit(self):
        vals = list(self.executions_per_commit.values())
        return sum(vals) / len(vals)

    def format(self):
        headers = ["benchmark", "conv IPC", "(paper)", "VP IPC", "(paper)",
                   "imp %", "(paper)", "exec/commit"]
        rows = []
        for b in ALL_BENCHMARKS:
            rows.append([
                b,
                f"{self.conventional_ipc[b]:.2f}",
                f"{paper_data.TABLE2_CONVENTIONAL_IPC[b]:.2f}",
                f"{self.virtual_ipc[b]:.2f}",
                f"{paper_data.TABLE2_VIRTUAL_IPC[b]:.2f}",
                f"{self.improvement_pct[b]:+.0f}",
                f"{paper_data.TABLE2_IMPROVEMENT_PCT[b]:+d}",
                f"{self.executions_per_commit[b]:.2f}",
            ])
        rows.append([
            "hmean",
            f"{self.hmean_conventional:.2f}",
            f"{paper_data.TABLE2_HMEAN_CONVENTIONAL:.2f}",
            f"{self.hmean_virtual:.2f}",
            f"{paper_data.TABLE2_HMEAN_VIRTUAL:.2f}",
            f"{self.hmean_improvement_pct:+.0f}",
            f"+{paper_data.TABLE2_HMEAN_IMPROVEMENT_PCT}",
            f"{self.mean_executions_per_commit:.2f}",
        ])
        return format_table(
            headers, rows,
            title=(f"Table 2 (miss penalty {self.miss_penalty} cycles): "
                   "conventional vs. virtual-physical renaming"),
        )


def run_table2(miss_penalty=50, cache=None):
    """Regenerate Table 2 (optionally at the 20-cycle miss penalty)."""
    cache = cache or SHARED_CACHE
    cache_cfg = CacheConfig(miss_penalty=miss_penalty)
    conv_cfg = conventional_config(cache=cache_cfg)
    vp_cfg = virtual_physical_config(nrr=32, cache=cache_cfg)
    result = Table2Result(miss_penalty=miss_penalty)
    grid = [RunSpec(bench, cfg)
            for bench in ALL_BENCHMARKS for cfg in (conv_cfg, vp_cfg)]
    runs = iter(cache.run_specs(grid))
    for bench in ALL_BENCHMARKS:
        conv, virt = next(runs), next(runs)
        result.conventional_ipc[bench] = conv.ipc
        result.virtual_ipc[bench] = virt.ipc
        result.executions_per_commit[bench] = virt.stats.executions_per_commit
    return result
