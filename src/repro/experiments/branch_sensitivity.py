"""Branch-prediction sensitivity of the virtual-physical advantage.

The paper's integer benchmarks gain little because mispredicted
branches drain the window before registers become the constraint.  This
(extra) experiment replaces the 2048-entry BHT with an oracle and
re-measures the VP improvement: with control flow out of the way, the
integer codes' window becomes register-bound too, and the VP advantage
on them should grow — quantifying how much of the int/FP asymmetry is
control-flow-induced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reports import format_table, harmonic_mean
from repro.experiments.runner import (
    ALL_BENCHMARKS,
    SHARED_CACHE,
    RunSpec,
)
from repro.trace.workloads import INT_BENCHMARKS
from repro.uarch.config import conventional_config, virtual_physical_config


@dataclass
class BranchSensitivityResult:
    """IPC per benchmark with the real BHT and with an oracle."""

    conventional_bht: dict = field(default_factory=dict)
    virtual_bht: dict = field(default_factory=dict)
    conventional_oracle: dict = field(default_factory=dict)
    virtual_oracle: dict = field(default_factory=dict)

    def improvement_pct(self, oracle, benchmarks=ALL_BENCHMARKS):
        conv = self.conventional_oracle if oracle else self.conventional_bht
        virt = self.virtual_oracle if oracle else self.virtual_bht
        base = harmonic_mean(conv[b] for b in benchmarks)
        late = harmonic_mean(virt[b] for b in benchmarks)
        return 100.0 * (late / base - 1.0)

    def format(self):
        headers = ["benchmark", "conv/BHT", "VP/BHT", "conv/oracle",
                   "VP/oracle"]
        rows = []
        for b in ALL_BENCHMARKS:
            rows.append([
                b,
                f"{self.conventional_bht[b]:.2f}",
                f"{self.virtual_bht[b]:.2f}",
                f"{self.conventional_oracle[b]:.2f}",
                f"{self.virtual_oracle[b]:.2f}",
            ])
        rows.append([
            "int imp.",
            "", f"{self.improvement_pct(False, INT_BENCHMARKS):+.0f}%",
            "", f"{self.improvement_pct(True, INT_BENCHMARKS):+.0f}%",
        ])
        return format_table(
            headers, rows,
            title="Branch sensitivity: VP improvement with BHT vs oracle",
        )


def run_branch_sensitivity(cache=None):
    """Both schemes, with and without oracle branch prediction."""
    cache = cache or SHARED_CACHE
    result = BranchSensitivityResult()
    grids = [
        (result.conventional_bht, conventional_config()),
        (result.virtual_bht, virtual_physical_config(nrr=32)),
        (result.conventional_oracle,
         conventional_config(perfect_branch_prediction=True)),
        (result.virtual_oracle,
         virtual_physical_config(nrr=32, perfect_branch_prediction=True)),
    ]
    specs = [RunSpec(bench, cfg)
             for _, cfg in grids for bench in ALL_BENCHMARKS]
    runs = iter(cache.run_specs(specs))
    for table, _ in grids:
        for bench in ALL_BENCHMARKS:
            table[bench] = next(runs).ipc
    return result
