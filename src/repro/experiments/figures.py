"""Figures 4-7 — the paper's parameter sweeps.

* **Figure 4**: speedup of the VP scheme with *write-back* allocation
  over conventional renaming, per benchmark, for NRR in
  {1, 4, 8, 16, 24, 32} (64 physical registers).
* **Figure 5**: the same sweep with *issue*-stage allocation.
* **Figure 6**: write-back vs. issue allocation head-to-head, each at
  its best NRR (32 for both, per the paper).
* **Figure 7**: IPC of conventional vs. VP for 48/64/96 physical
  registers per file, with NRR at its maximum (16/32/64).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reports import format_table, harmonic_mean
from repro.core.virtual_physical import AllocationStage
from repro.engine import RunSpec
from repro.experiments.runner import (
    ALL_BENCHMARKS,
    SHARED_CACHE,
)
from repro.trace.workloads import FP_BENCHMARKS, INT_BENCHMARKS
from repro.uarch.config import conventional_config, virtual_physical_config


def _grid(cache, configs, benchmarks=ALL_BENCHMARKS):
    """Run every config × benchmark in one batch; one IPC dict each."""
    specs = [RunSpec(b, cfg) for cfg in configs for b in benchmarks]
    results = iter(cache.run_specs(specs))
    return [
        {b: next(results).ipc for b in benchmarks} for _ in configs
    ]

NRR_SWEEP = (1, 4, 8, 16, 24, 32)
PHYS_SWEEP = (48, 64, 96)


@dataclass
class NrrSweepResult:
    """Figures 4 and 5: per-benchmark speedups across NRR values."""

    allocation: AllocationStage
    nrr_values: tuple = NRR_SWEEP
    baseline_ipc: dict = field(default_factory=dict)
    vp_ipc: dict = field(default_factory=dict)  # nrr -> {bench: ipc}

    def speedup(self, nrr, bench):
        return self.vp_ipc[nrr][bench] / self.baseline_ipc[bench]

    def speedups_at(self, nrr):
        return {b: self.speedup(nrr, b) for b in self.baseline_ipc}

    def mean_fp_speedup(self, nrr):
        base = harmonic_mean(self.baseline_ipc[b] for b in FP_BENCHMARKS)
        virt = harmonic_mean(self.vp_ipc[nrr][b] for b in FP_BENCHMARKS)
        return virt / base

    def mean_speedup(self, nrr):
        base = harmonic_mean(self.baseline_ipc[b] for b in ALL_BENCHMARKS)
        virt = harmonic_mean(self.vp_ipc[nrr][b] for b in ALL_BENCHMARKS)
        return virt / base

    def best_nrr(self):
        return max(self.nrr_values, key=self.mean_speedup)

    def format(self):
        stage = self.allocation.value
        headers = ["benchmark"] + [f"NRR={n}" for n in self.nrr_values]
        rows = []
        for b in ALL_BENCHMARKS:
            rows.append([b] + [f"{self.speedup(n, b):.2f}" for n in self.nrr_values])
        rows.append(
            ["hmean"] + [f"{self.mean_speedup(n):.2f}" for n in self.nrr_values]
        )
        figure = "Figure 4" if self.allocation is AllocationStage.WRITEBACK else "Figure 5"
        return format_table(
            headers, rows,
            title=f"{figure}: VP speedup over conventional ({stage} allocation)",
        )


def run_nrr_sweep(allocation, nrr_values=NRR_SWEEP, cache=None):
    """Shared engine for Figures 4 and 5 (one batch for the whole grid)."""
    cache = cache or SHARED_CACHE
    result = NrrSweepResult(allocation=AllocationStage(allocation),
                            nrr_values=tuple(nrr_values))
    configs = [conventional_config()] + [
        virtual_physical_config(nrr=nrr, allocation=result.allocation)
        for nrr in result.nrr_values
    ]
    tables = _grid(cache, configs)
    result.baseline_ipc = tables[0]
    for nrr, table in zip(result.nrr_values, tables[1:]):
        result.vp_ipc[nrr] = table
    return result


def run_figure4(cache=None):
    """Figure 4: NRR sweep with write-back allocation."""
    return run_nrr_sweep(AllocationStage.WRITEBACK, cache=cache)


def run_figure5(cache=None):
    """Figure 5: NRR sweep with issue-stage allocation."""
    return run_nrr_sweep(AllocationStage.ISSUE, cache=cache)


@dataclass
class Figure6Result:
    """Write-back vs. issue allocation, each at its optimal NRR (32)."""

    baseline_ipc: dict = field(default_factory=dict)
    writeback_ipc: dict = field(default_factory=dict)
    issue_ipc: dict = field(default_factory=dict)

    def writeback_speedup(self, bench):
        return self.writeback_ipc[bench] / self.baseline_ipc[bench]

    def issue_speedup(self, bench):
        return self.issue_ipc[bench] / self.baseline_ipc[bench]

    def format(self):
        headers = ["benchmark", "write-back", "issue"]
        rows = [
            [b, f"{self.writeback_speedup(b):.2f}", f"{self.issue_speedup(b):.2f}"]
            for b in ALL_BENCHMARKS
        ]
        hm = lambda ipcs: harmonic_mean(ipcs[b] for b in ALL_BENCHMARKS)
        base = hm(self.baseline_ipc)
        rows.append([
            "hmean",
            f"{hm(self.writeback_ipc) / base:.2f}",
            f"{hm(self.issue_ipc) / base:.2f}",
        ])
        return format_table(
            headers, rows,
            title="Figure 6: write-back vs. issue register allocation (NRR=32)",
        )


def run_figure6(cache=None):
    """Figure 6: both allocation stages at NRR=32."""
    cache = cache or SHARED_CACHE
    result = Figure6Result()
    result.baseline_ipc, result.writeback_ipc, result.issue_ipc = _grid(
        cache,
        [
            conventional_config(),
            virtual_physical_config(nrr=32,
                                    allocation=AllocationStage.WRITEBACK),
            virtual_physical_config(nrr=32, allocation=AllocationStage.ISSUE),
        ],
    )
    return result


@dataclass
class Figure7Result:
    """IPC for 48/64/96 physical registers, conventional vs. VP."""

    phys_values: tuple = PHYS_SWEEP
    conventional_ipc: dict = field(default_factory=dict)  # phys -> {bench: ipc}
    virtual_ipc: dict = field(default_factory=dict)

    def improvement_pct(self, phys):
        base = harmonic_mean(
            self.conventional_ipc[phys][b] for b in ALL_BENCHMARKS
        )
        virt = harmonic_mean(self.virtual_ipc[phys][b] for b in ALL_BENCHMARKS)
        return 100.0 * (virt / base - 1.0)

    def hmean(self, table, phys):
        return harmonic_mean(table[phys][b] for b in ALL_BENCHMARKS)

    def format(self):
        headers = ["benchmark"]
        for phys in self.phys_values:
            headers += [f"conv({phys})", f"virt({phys})"]
        rows = []
        for b in ALL_BENCHMARKS:
            row = [b]
            for phys in self.phys_values:
                row.append(f"{self.conventional_ipc[phys][b]:.2f}")
                row.append(f"{self.virtual_ipc[phys][b]:.2f}")
            rows.append(row)
        hm_row = ["hmean"]
        for phys in self.phys_values:
            hm_row.append(f"{self.hmean(self.conventional_ipc, phys):.2f}")
            hm_row.append(f"{self.hmean(self.virtual_ipc, phys):.2f}")
        rows.append(hm_row)
        return format_table(
            headers, rows,
            title="Figure 7: IPC vs. physical register file size",
        )


def run_figure7(phys_values=PHYS_SWEEP, cache=None):
    """Figure 7: register-file size sweep (NRR maxed at NPR-32)."""
    cache = cache or SHARED_CACHE
    result = Figure7Result(phys_values=tuple(phys_values))
    configs = []
    for phys in result.phys_values:
        configs.append(conventional_config(int_phys=phys, fp_phys=phys))
        configs.append(virtual_physical_config(
            nrr=phys - 32, int_phys=phys, fp_phys=phys))
    tables = iter(_grid(cache, configs))
    for phys in result.phys_values:
        result.conventional_ipc[phys] = next(tables)
        result.virtual_ipc[phys] = next(tables)
    return result
