"""The compiled engine tier: per-config codegen for the cycle loop.

The interpreter hot loop (:meth:`Processor._step`) re-hoists shared
state and re-tests configuration-frozen branches every simulated cycle:
policy capability hooks that are never bound, the register-file port
model that is off by default, the idle-skip flag, pipeline widths read
off the config object.  This module removes that overhead by *rendering
a specialized source string per configuration feature vector* and
compiling it once (``compile()``/``exec`` — the same trick
``dataclasses`` and ``namedtuple`` use):

* dead branches are dropped at render time (no ``rf_model`` → no
  port-arbitration code at all; a policy without ``on_issue`` /
  ``on_complete`` hooks → no hook call sites; ``idle_skip`` baked in),
* configuration scalars (widths, window sizes, port budgets, the
  commit delay, the deadlock horizon) become integer literals,
* the :class:`~repro.uarch.events.EventWheel` and the whole run loop
  are inlined, so all mutable machine state lives in function locals
  for the *entire run* and is synced back to the ``Processor`` in a
  ``finally`` block (deadlocks and post-run inspection see the same
  state the interpreter would leave).

The contract is **bit-identical** ``SimStats`` with the interpreter for
every configuration — pinned by ``tests/uarch/test_engine_differential
.py`` across a sampled config space and by the compiled-tier golden
pins.  Rare paths (precise-exception recovery, store-data firing) stay
interpreter methods, called with the hoisted state synced around them.

Engine selection is ``Processor(..., engine=...)`` /
``ProcessorConfig.engine`` / ``REPRO_ENGINE`` (see
:func:`resolve_engine`); any codegen failure falls back to the
interpreter transparently and is counted in
``SimStats.engine_fallbacks``.  Compiled code objects are cached per
:func:`engine_key` — many configurations share one specialization.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from heapq import heappush, heappop

from repro.core.conventional import ConventionalRenamer
from repro.core.policy import PolicyCapabilities, policy_capabilities
from repro.core.virtual_physical import VirtualPhysicalRenamer
from repro.core.tags import TAG_CLASS_SHIFT
from repro.isa.registers import CLASS_SHIFT, RegClass
from repro.uarch.dynamic import DynInstr

_FAR_FUTURE = 1 << 60
_WHEEL_HORIZON = 128  # mirrors EventWheel's default ring size

#: render/compile failures by reason (diagnostics; reset per process).
build_failures: dict[str, int] = {}

#: LRU bound on the in-process caches.  Specializations are keyed by
#: feature vector, so even a wide sweep shares a handful of entries;
#: the bound exists so a pathological config generator (fuzzers, the
#: shrinker) cannot grow the process without limit.
_CACHE_CAP = 64

_CODE_CACHE: OrderedDict[tuple, object] = OrderedDict()
_SOURCE_CACHE: OrderedDict[tuple, str] = OrderedDict()

#: code-cache traffic (diagnostics; reset by :func:`clear_cache`).
cache_hits = 0
cache_misses = 0
cache_evictions = 0


def _cache_put(cache, key, value):
    """Insert into an LRU-bounded cache, evicting oldest past the cap."""
    global cache_evictions
    cache[key] = value
    while len(cache) > _CACHE_CAP:
        cache.popitem(last=False)
        if cache is _CODE_CACHE:
            cache_evictions += 1


def resolve_engine(requested):
    """The effective engine tier for a request.

    ``None`` and ``"auto"`` defer to the ``REPRO_ENGINE`` environment
    variable, defaulting to ``"interp"`` — the conservative tier every
    golden pin was recorded on.  Raises ``ValueError`` on an unknown
    name (including an unknown ``REPRO_ENGINE`` value).
    """
    name = requested or "auto"
    if name == "auto":
        name = os.environ.get("REPRO_ENGINE", "").strip() or "interp"
    if name not in ("interp", "compiled", "native"):
        raise ValueError(
            f"unknown engine {name!r}; choose interp, compiled, native "
            "or auto")
    return name


def engine_features(processor):
    """The feature vector the codegen specializes on, or ``None``.

    Returns ``(flags, consts)`` dicts — booleans that gate template
    sections and integers baked as literals.  ``None`` means the
    configuration cannot be specialized: the policy is registered
    without a :class:`PolicyCapabilities` declaration, or the built
    renamer's instance flags contradict the declaration (a guard that
    keeps a drifted re-registration from compiling wrong code).
    """
    cfg = processor.config
    try:
        caps = policy_capabilities(cfg.policy)
    except KeyError:
        return None
    if caps is None or caps != PolicyCapabilities.of(processor.renamer):
        return None
    renamer = processor.renamer
    # Inline specializations bypass the method indirection entirely, so
    # they must be disabled when a test or tracer replaced the method on
    # the *instance* (class-level dispatch is snapshotted at build time
    # and honors such wrappers; an inline body would not).
    conv = (type(renamer) is ConventionalRenamer
            and not (set(renamer.__dict__)
                     & {"rename", "can_rename", "on_commit"}))
    vp = (type(renamer) is VirtualPhysicalRenamer
          and not (set(renamer.__dict__)
                   & {"rename", "can_rename", "on_commit", "on_dispatch",
                      "on_issue", "on_complete", "may_allocate_now",
                      "_try_allocate", "_rename_sources"}))
    flags = {
        "RF": bool(cfg.rf_model),
        "COMPLETE_HOOK": caps.has_complete_hook,
        "ISSUE_HOOK": caps.has_issue_hook,
        "DISPATCH_HOOK": caps.has_dispatch_hook,
        "VP_WB": caps.holds_writers_in_iq,
        "RETRY": bool(caps.supports_retry_gating and cfg.retry_gating),
        "IDLE": bool(processor._idle_skip),
        "PERFECT": bool(cfg.perfect_branch_prediction),
        "POOLS": processor._int_free is not None,
        "GATE": processor._rename_gate is not None,
        "CONV": conv,
        "VP_INLINE": vp,
        "INLINE_RENAME": conv or vp,
        "FU_INLINE": not (set(processor.fus.__dict__)
                          & {"find_free", "claim_unit"}),
        "BHT_INLINE": "update" not in processor.bht.__dict__,
    }
    consts = {
        "FETCH_W": cfg.fetch_width,
        "RENAME_W": cfg.rename_width,
        "ISSUE_W": cfg.issue_width,
        "COMMIT_W": cfg.commit_width,
        "ROB_SIZE": cfg.rob_size,
        "IQ_SIZE": cfg.iq_size,
        "FB_SIZE": cfg.fetch_buffer_size,
        "READ_PORTS": cfg.read_ports,
        "WRITE_PORTS": cfg.write_ports,
        "COMMIT_DELAY": 1 + caps.commit_extra_latency,
        "HORIZON": cfg.deadlock_horizon,
        "WHEEL_H": _WHEEL_HORIZON,
        "FAR_FUTURE": _FAR_FUTURE,
        "CLASS_SHIFT": CLASS_SHIFT,
        "INDEX_MASK": (1 << CLASS_SHIFT) - 1,
    }
    return flags, consts


def engine_key(processor):
    """Stable identity of the specialization a processor would compile.

    Derived from the same canonical identity scheme as
    ``ProcessorConfig.key()`` (a short sha256 over the sorted feature
    vector), so equal keys mean one shared code object.  ``None`` when
    the configuration cannot be specialized.
    """
    features = engine_features(processor)
    if features is None:
        return None
    flags, consts = features
    canon = repr((sorted(flags.items()), sorted(consts.items())))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


def cache_info():
    """Diagnostics: cached specializations and recorded build failures."""
    return {
        "specializations": len(_CODE_CACHE),
        "capacity": _CACHE_CAP,
        "hits": cache_hits,
        "misses": cache_misses,
        "evictions": cache_evictions,
        "build_failures": dict(build_failures),
    }


def clear_cache():
    """Drop every cached specialization (tests)."""
    global cache_hits, cache_misses, cache_evictions
    _CODE_CACHE.clear()
    _SOURCE_CACHE.clear()
    build_failures.clear()
    cache_hits = cache_misses = cache_evictions = 0


def _note_failure(reason):
    build_failures[reason] = build_failures.get(reason, 0) + 1


def render_source(flags, consts):
    """Render the specialized factory source for one feature vector.

    Pure string processing over :data:`_TEMPLATE`: ``#@if NAME`` /
    ``#@else`` / ``#@end`` directives keep or drop blocks by the flag
    dict (conditions are one flag name, optionally ``not``-prefixed;
    nesting supported), and ``__NAME__`` tokens are replaced with the
    constant literals.
    """
    out = []
    stack = []  # emitting-state per open #@if
    emitting = True
    for line in _TEMPLATE.splitlines():
        stripped = line.strip()
        if stripped.startswith("#@if "):
            cond = stripped[5:].strip()
            invert = cond.startswith("not ")
            name = cond[4:].strip() if invert else cond
            value = bool(flags[name]) ^ invert
            stack.append(emitting)
            emitting = emitting and value
            continue
        if stripped == "#@else":
            parent = stack[-1]
            emitting = parent and not emitting
            continue
        if stripped == "#@end":
            emitting = stack.pop()
            continue
        if emitting:
            out.append(line)
    if stack:
        raise SyntaxError("unbalanced #@if/#@end in the engine template")
    source = "\n".join(out) + "\n"
    for name, value in consts.items():
        source = source.replace(f"__{name}__", repr(int(value)))
    return source


def specialized_source(processor):
    """The rendered source a processor would run (debug/introspection)."""
    features = engine_features(processor)
    if features is None:
        return None
    flags, consts = features
    key = (tuple(sorted(flags.items())), tuple(sorted(consts.items())))
    source = _SOURCE_CACHE.get(key)
    if source is None:
        source = render_source(flags, consts)
        _cache_put(_SOURCE_CACHE, key, source)
    else:
        _SOURCE_CACHE.move_to_end(key)
    return source


def build_loop(processor):
    """A zero-argument callable running ``processor`` to completion, or
    ``None`` when the configuration cannot be specialized (the caller
    falls back to the interpreter and counts the fallback).

    Must be called *after* ``run()`` bound the trace stream
    (``processor._trace``): the factory snapshots bound methods and
    machine containers once, so everything the loop touches per cycle
    is a local or a closure cell.
    """
    features = engine_features(processor)
    if features is None:
        _note_failure("unsupported-policy")
        return None
    flags, consts = features
    key = (tuple(sorted(flags.items())), tuple(sorted(consts.items())))
    global cache_hits, cache_misses
    code = _CODE_CACHE.get(key)
    if code is None:
        cache_misses += 1
        try:
            source = _SOURCE_CACHE.get(key)
            if source is None:
                source = render_source(flags, consts)
                _cache_put(_SOURCE_CACHE, key, source)
            code = compile(source, f"<repro-engine {engine_key(processor)}>",
                           "exec")
        except SyntaxError:
            _note_failure("render-error")
            return None
        _cache_put(_CODE_CACHE, key, code)
    else:
        cache_hits += 1
        _CODE_CACHE.move_to_end(key)
    from repro.uarch.processor import SimulationDeadlock

    namespace = {
        "heappush": heappush,
        "heappop": heappop,
        "DynInstr": DynInstr,
        "TAG_CLASS_SHIFT": TAG_CLASS_SHIFT,
        "RC_INT": RegClass.INT,
        "RC_FP": RegClass.FP,
        "SimulationDeadlock": SimulationDeadlock,
        "_seq_of": _seq_of,
    }
    try:
        exec(code, namespace)
        return namespace["make_loop"](processor)
    except Exception:
        _note_failure("build-error")
        return None


def _seq_of(instr):
    """Sort key for same-cycle completion events (program order)."""
    return instr.seq


# The specialized run loop.  This is `Processor._step` plus the run
# loop, `_advance`, and the EventWheel, fused into one function with
# every per-cycle `self.` access turned into a local, every
# configuration scalar baked as a literal, and every
# configuration-dead branch dropped by the #@if directives.  Stage
# semantics and ordering mirror processor.py line for line — when
# editing either, edit both (the differential suite enforces the
# equivalence).
_TEMPLATE = '''\
def make_loop(p):
    """Bind one processor's state and return its specialized run loop."""
    stats = p.stats
    renamer = p.renamer
    mem = p.mem
    store_queue = mem.store_queue
    try_load = mem.try_load
    try_store_commit = mem.try_store_commit
    sq_set_address = store_queue.set_address
    sq_set_data_ready = store_queue.set_data_ready
    sq_insert = store_queue.insert
    sq_remove = store_queue.remove
    sq_oldest_unknown = store_queue.oldest_unknown_seq
    mshr_next_fill = mem.cache.mshrs.next_fill_time
    on_commit = renamer.on_commit
    rename = renamer.rename
    can_rename = renamer.can_rename
#@if DISPATCH_HOOK
    on_dispatch = renamer.on_dispatch
#@end
#@if ISSUE_HOOK
    on_issue = renamer.on_issue
#@end
#@if COMPLETE_HOOK
    on_complete = renamer.on_complete
#@end
#@if RETRY
    may_allocate_now = renamer.may_allocate_now
#@end
#@if RF
    regfile = p.regfile
    rf_start_read = regfile.start_read_cycle
    rf_start_write = regfile.start_write_cycle
    rf_can_read = regfile.can_read
    rf_claim_read = regfile.claim_read
    rf_can_write = regfile.can_write
    rf_claim_write = regfile.claim_write
#@end
#@if POOLS
    int_free = p._int_free
    fp_free = p._fp_free
    NPR_INT = p._npr_int
    NPR_FP = p._npr_fp
#@else
    allocated_physical = renamer.allocated_physical
#@end
#@if GATE
    rename_gate = p._rename_gate
#@end
#@if CONV
    int_tags = renamer.map_table[RC_INT]
    fp_tags = renamer.map_table[RC_FP]
    int_fl = renamer.free[RC_INT]
    fp_fl = renamer.free[RC_FP]
#@end
#@if VP_INLINE
    int_gmt = renamer.gmt[RC_INT]
    fp_gmt = renamer.gmt[RC_FP]
    int_tags = int_gmt.vp
    fp_tags = fp_gmt.vp
    int_gmt_p = int_gmt.p
    fp_gmt_p = fp_gmt.p
    int_gmt_v = int_gmt.v
    fp_gmt_v = fp_gmt.v
    int_pmt = renamer.pmt[RC_INT]
    fp_pmt = renamer.pmt[RC_FP]
    int_phys_fl = renamer.free_phys[RC_INT]
    fp_phys_fl = renamer.free_phys[RC_FP]
    int_vp_fl = renamer.free_vp[RC_INT]
    fp_vp_fl = renamer.free_vp[RC_FP]
    int_vp_d = int_vp_fl._free
    fp_vp_d = fp_vp_fl._free
    int_res = renamer._reserve_by_cls[RC_INT]
    fp_res = renamer._reserve_by_cls[RC_FP]
#@end
    bht_counters = p.bht._counters
    bht_mask = p.bht._mask
#@if not BHT_INLINE
    bht_update = p.bht.update
#@end
#@if FU_INLINE
    fu_busy = p.fus._busy_until
    fu_issued = p.fus._issued_cycle
    fu_issues = p.fus.issues
#@else
    fus_find_free = p.fus.find_free
    fus_claim_unit = p.fus.claim_unit
#@end
    struct_stalls = p.fus.structural_stalls
    rob = p.rob
    fetch_buffer = p.fetch_buffer
    ready_heap = p.ready_heap
    waiters = p.waiters
    data_waiters = p.data_waiters
    waiters_pop = waiters.pop
    data_waiters_pop = data_waiters.pop
    ready_at = p.ready_at
    ready_at_get = ready_at.get
    ready_at_pop = ready_at.pop
    replay = p._replay
    faults = p._fault_at_commits
    fire_stores = p._fire_stores
    recover = p._recover_from_fault
    trace = p._trace
    new_instr = DynInstr
    hpush = heappush
    hpop = heappop
    seq_of = _seq_of

    def loop():
        now = p.now
        iq_count = p.iq_count
        fetch_resume_at = p.fetch_resume_at
        next_seq = p._next_seq
        last_commit = p._last_commit_cycle
        exhausted = p._exhausted
        pending_mem = p.pending_mem
        mshr_gated = p._mshr_gated
        committed = stats.committed
        idle_skips = p.idle_skips
        idle_cycles_skipped = p.idle_cycles_skipped
        s_fetched = stats.fetched
        s_executions = stats.executions
        s_squashes = stats.squashes
        s_issue_alloc = stats.issue_alloc_blocks
        s_branches = stats.branches
        s_mispredicts = stats.mispredicts
        s_rob_full = stats.stall_rob_full
        s_iq_full = stats.stall_iq_full
        s_no_reg = stats.stall_no_reg
        s_sq_full = stats.stall_sq_full
        s_fetch_stall = stats.fetch_stall_cycles
        s_wb_defers = stats.wb_port_defers
        s_int_occ = stats.int_reg_occupancy_sum
        s_fp_occ = stats.fp_reg_occupancy_sum
        s_peak_rob = stats.peak_rob
        # The inlined event wheel: ring of per-cycle buckets, overflow
        # map past the horizon, min-heap of scheduled cycles.  The loop
        # visits cycles in order, so the ring base is simply `now`.
        ring = [None] * __WHEEL_H__
        overflow = {}
        times = []
        try:
            while not (exhausted and not fetch_buffer and not rob
                       and not replay):
                # ---- write-back: completion events ----------------------
                if times and times[0] <= now:
                    while times and times[0] <= now:
                        hpop(times)
                    slot = now % __WHEEL_H__
                    entry = ring[slot]
                    if entry is not None and entry[0] == now:
                        ring[slot] = None
                        events = entry[1]
                    else:
                        events = ()
                    if overflow:
                        extra = overflow.pop(now, None)
                        if extra is not None:
                            events = events + extra if events else extra
                else:
                    events = ()
                if events:
                    events.sort(key=seq_of)
#@if RF
                    rf_start_write()
#@else
                    int_wb_ports = __WRITE_PORTS__
                    fp_wb_ports = __WRITE_PORTS__
#@end
                    for instr in events:
                        if instr.squashed:
                            continue
                        if instr.is_store:
                            sq_set_address(instr.seq, instr.rec.addr)
                            instr.mem_ready_at = now
                            if instr.data_ready_at >= 0:
                                instr.completed = True
                                instr.completed_at = now
                            continue
                        if instr.is_br:
                            rec = instr.rec
                            s_branches += 1
#@if BHT_INLINE
                            bidx = (rec.pc >> 2) & bht_mask
                            ctr = bht_counters[bidx]
                            if rec.taken:
                                if ctr < 3:
                                    bht_counters[bidx] = ctr + 1
                            elif ctr > 0:
                                bht_counters[bidx] = ctr - 1
#@else
                            bht_update(rec.pc, rec.taken)
#@end
                            if instr.mispredicted:
                                s_mispredicts += 1
                                fetch_resume_at = now + 1
                            instr.completed = True
                            instr.completed_at = now
                            continue
                        cls = instr.dest_cls
#@if RF
                        if cls is not None and not rf_can_write(instr):
#@else
                        if cls is not None and (
                                int_wb_ports if cls == 0
                                else fp_wb_ports) == 0:
#@end
                            s_wb_defers += 1
                            t = now + 1
                            slot = t % __WHEEL_H__
                            entry = ring[slot]
                            if entry is not None:
                                entry[1].append(instr)
                            else:
                                ring[slot] = [t, [instr]]
                                hpush(times, t)
                            continue
#@if COMPLETE_HOOK
#@if VP_INLINE
                        if cls is not None and instr.dest_phys < 0:
                            res = int_res if cls == 0 else fp_res
                            fr = int_free if cls == 0 else fp_free
                            if not (instr.reserved
                                    or len(fr) > res.nrr - res.used):
                                renamer.squashes += 1
                                s_squashes += 1
                                instr.not_before = now + 1
                                hpush(ready_heap, instr.heap_item)
                                continue
                            if not fr:
                                raise RuntimeError(
                                    "reserved instruction found no free "
                                    "register: the NRR invariant is broken"
                                )
                            fl = int_phys_fl if cls == 0 else fp_phys_fl
                            phys = fr.popleft()
                            fl._members.discard(phys)
                            fl.allocations += 1
                            nf = len(fr)
                            if nf < fl.min_free:
                                fl.min_free = nf
                            instr.dest_phys = phys
                            vp = instr.vp_reg
                            (int_pmt if cls == 0 else fp_pmt)[vp] = phys
                            gvp = int_tags if cls == 0 else fp_tags
                            idx = instr.rec.dest & __INDEX_MASK__
                            if gvp[idx] == vp:
                                (int_gmt_p if cls == 0
                                 else fp_gmt_p)[idx] = phys
                                (int_gmt_v if cls == 0
                                 else fp_gmt_v)[idx] = True
                            if instr.reserved:
                                res.used += 1
#@else
                        if not on_complete(instr, now):
                            s_squashes += 1
                            instr.not_before = now + 1
                            hpush(ready_heap, instr.heap_item)
                            continue
#@end
#@end
                        if cls is not None:
#@if RF
                            rf_claim_write(instr)
#@else
                            if cls == 0:
                                int_wb_ports -= 1
                            else:
                                fp_wb_ports -= 1
#@end
                        instr.completed = True
                        instr.completed_at = now
                        if instr.in_iq:
                            instr.in_iq = False
                            iq_count -= 1
                        tag = instr.dest_tag
                        if tag != -1:
                            ready_at[tag] = now
                            waiting = waiters_pop(tag, None)
                            if waiting:
                                for waiter in waiting:
                                    waiter.wait_count -= 1
                                    if (waiter.wait_count == 0
                                            and not waiter.squashed):
                                        hpush(ready_heap, waiter.heap_item)
                            if data_waiters:
                                stores = data_waiters_pop(tag, None)
                                if stores:
                                    fire_stores(stores, now)

                # ---- commit: in-order retirement ------------------------
                if rob:
                    budget = __COMMIT_W__
                    before = committed
                    while budget and rob:
                        instr = rob[0]
                        if (not instr.completed
                                or instr.completed_at + __COMMIT_DELAY__
                                > now):
                            break
                        if faults and committed in faults:
                            faults.discard(committed)
                            p.iq_count = iq_count
                            p.pending_mem = pending_mem
                            p._mshr_gated = mshr_gated
                            p.fetch_resume_at = fetch_resume_at
                            recover(instr, now)
                            iq_count = p.iq_count
                            pending_mem = p.pending_mem
                            mshr_gated = p._mshr_gated
                            fetch_resume_at = p.fetch_resume_at
                        if instr.is_store:
                            if not try_store_commit(instr.rec.addr, now):
                                break
                            sq_remove(instr.seq)
                            if mshr_gated:
                                for gated in mshr_gated:
                                    gated.mem_ready_at = now
                                    gated.mshr_gated = False
                                mshr_gated.clear()
#@if CONV
                        cls = instr.dest_cls
                        if cls is not None:
                            fl = int_fl if cls == 0 else fp_fl
                            prev = instr.prev_phys
                            members = fl._members
                            if prev in members:
                                raise ValueError(
                                    f"double free of register {prev}")
                            members.add(prev)
                            free_d = fl._free
                            free_d.append(prev)
                            if len(free_d) > fl._capacity:
                                raise RuntimeError(
                                    "free list grew beyond its capacity")
#@else
#@if VP_INLINE
                        cls = instr.dest_cls
                        if cls is not None:
                            res = int_res if cls == 0 else fp_res
                            if not instr.reserved:
                                raise RuntimeError(
                                    "committing destination writer was not "
                                    "reserved; reserve bookkeeping is corrupt"
                                )
                            res.reg -= 1
                            res.used -= 1
                            pend = res._pending
                            while pend:
                                nxt = pend.popleft()
                                if nxt.squashed:
                                    continue
                                nxt.reserved = True
                                res.reg += 1
                                if nxt.dest_phys >= 0:
                                    res.used += 1
                                break
                            if cls == 0:
                                pmt = int_pmt
                                pfl = int_phys_fl
                                pfr = int_free
                                vfl = int_vp_fl
                                vfr = int_vp_d
                            else:
                                pmt = fp_pmt
                                pfl = fp_phys_fl
                                pfr = fp_free
                                vfl = fp_vp_fl
                                vfr = fp_vp_d
                            prev_vp = instr.prev_vp
                            prev_phys = pmt[prev_vp]
                            if prev_phys < 0:
                                raise RuntimeError(
                                    "previous VP mapping committed without "
                                    "a physical register"
                                )
                            pmt[prev_vp] = -1
                            members = pfl._members
                            if prev_phys in members:
                                raise ValueError(
                                    f"double free of register {prev_phys}")
                            members.add(prev_phys)
                            pfr.append(prev_phys)
                            if len(pfr) > pfl._capacity:
                                raise RuntimeError(
                                    "free list grew beyond its capacity")
                            members = vfl._members
                            if prev_vp in members:
                                raise ValueError(
                                    f"double free of register {prev_vp}")
                            members.add(prev_vp)
                            vfr.append(prev_vp)
                            if len(vfr) > vfl._capacity:
                                raise RuntimeError(
                                    "free list grew beyond its capacity")
#@else
                        on_commit(instr)
#@end
#@end
                        rob.popleft()
                        instr.commit_at = now
                        committed += 1
                        budget -= 1
                    if committed != before:
                        last_commit = now

                # ---- memory: loads attempt the cache --------------------
                if pending_mem:
                    still_pending = []
                    append = still_pending.append
                    blocking_store = sq_oldest_unknown()
                    while pending_mem:
                        item = hpop(pending_mem)
                        instr = item[1]
                        if instr.squashed:
                            continue
                        if (blocking_store is not None
                                and item[0] > blocking_store):
                            waits = 0 if instr.mem_ready_at > now else 1
                            waits += sum(1 for _, cut in pending_mem
                                         if not cut.squashed
                                         and cut.mem_ready_at <= now)
                            store_queue.waits += waits
                            append(item)
                            pending_mem.sort()
                            still_pending.extend(pending_mem)
                            pending_mem.clear()
                            break
                        if instr.mem_ready_at > now:
                            append(item)
                            continue
                        done = try_load(item[0], instr.rec.addr, now)
                        if done is None:
                            if mem.last_refusal == "mshr":
                                gate = mshr_next_fill(now)
                                if gate is not None and gate > now:
                                    instr.mem_ready_at = gate
                                    if not instr.mshr_gated:
                                        instr.mshr_gated = True
                                        mshr_gated.append(instr)
                            append(item)
                            continue
                        if done - now < __WHEEL_H__:
                            slot = done % __WHEEL_H__
                            entry = ring[slot]
                            if entry is not None:
                                entry[1].append(instr)
                            else:
                                ring[slot] = [done, [instr]]
                                hpush(times, done)
                        else:
                            items = overflow.get(done)
                            if items is not None:
                                items.append(instr)
                            else:
                                overflow[done] = [instr]
                                hpush(times, done)
                    pending_mem = still_pending

                # ---- issue: oldest-first over the ready set -------------
                if ready_heap:
                    budget = __ISSUE_W__
#@if RF
                    rf_start_read()
#@else
                    int_reads = __READ_PORTS__
                    fp_reads = __READ_PORTS__
#@end
                    retry = []
                    retry_append = retry.append
                    fu_blocked = 0
                    launched = 0
                    while budget and ready_heap:
                        item = hpop(ready_heap)
                        instr = item[1]
                        if instr.squashed:
                            continue
                        if instr.not_before > now:
                            retry_append(item)
                            continue
#@if RETRY
#@if VP_INLINE
                        if (instr.exec_count > 0
                                and instr.dest_phys < 0
                                and not instr.reserved):
                            cls = instr.dest_cls
                            if cls is not None:
                                res = int_res if cls == 0 else fp_res
                                if (len(int_free if cls == 0 else fp_free)
                                        <= res.nrr - res.used):
                                    retry_append(item)
                                    continue
#@else
                        if (instr.exec_count > 0
                                and instr.dest_cls is not None
                                and instr.dest_phys < 0
                                and not may_allocate_now(instr)):
                            retry_append(item)
                            continue
#@end
#@end
#@if RF
                        if not rf_can_read(instr):
                            retry_append(item)
                            continue
#@else
                        need_int = instr.need_int
                        need_fp = instr.need_fp
                        if need_int > int_reads or need_fp > fp_reads:
                            retry_append(item)
                            continue
#@end
                        kind = instr.fu_kind
                        kind_bit = 1 << kind
                        if fu_blocked & kind_bit:
                            struct_stalls[kind] += 1
                            retry_append(item)
                            continue
#@if FU_INLINE
                        busy = fu_busy[kind]
                        issued_l = fu_issued[kind]
                        unit = -1
                        i = 0
                        for b in busy:
                            if b <= now and issued_l[i] != now:
                                unit = i
                                break
                            i += 1
                        if unit < 0:
                            struct_stalls[kind] += 1
                            fu_blocked |= kind_bit
                            retry_append(item)
                            continue
#@else
                        unit = fus_find_free(kind, now)
                        if unit < 0:
                            fu_blocked |= kind_bit
                            retry_append(item)
                            continue
#@end
#@if ISSUE_HOOK
#@if VP_INLINE
                        cls = instr.dest_cls
                        if cls is not None and instr.dest_phys < 0:
                            res = int_res if cls == 0 else fp_res
                            fr = int_free if cls == 0 else fp_free
                            if not (instr.reserved
                                    or len(fr) > res.nrr - res.used):
                                renamer.issue_blocks += 1
                                s_issue_alloc += 1
                                retry_append(item)
                                continue
                            if not fr:
                                raise RuntimeError(
                                    "reserved instruction found no free "
                                    "register: the NRR invariant is broken"
                                )
                            fl = int_phys_fl if cls == 0 else fp_phys_fl
                            phys = fr.popleft()
                            fl._members.discard(phys)
                            fl.allocations += 1
                            nf = len(fr)
                            if nf < fl.min_free:
                                fl.min_free = nf
                            instr.dest_phys = phys
                            vp = instr.vp_reg
                            (int_pmt if cls == 0 else fp_pmt)[vp] = phys
                            gvp = int_tags if cls == 0 else fp_tags
                            idx = instr.rec.dest & __INDEX_MASK__
                            if gvp[idx] == vp:
                                (int_gmt_p if cls == 0
                                 else fp_gmt_p)[idx] = phys
                                (int_gmt_v if cls == 0
                                 else fp_gmt_v)[idx] = True
                            if instr.reserved:
                                res.used += 1
#@else
                        if not on_issue(instr, now):
                            s_issue_alloc += 1
                            retry_append(item)
                            continue
#@end
#@end
#@if FU_INLINE
                        issued_l[unit] = now
                        if not instr.pipelined:
                            busy[unit] = now + instr.latency
                        fu_issues[kind] += 1
#@else
                        fus_claim_unit(kind, unit, now, instr.latency,
                                       instr.pipelined)
#@end
#@if RF
                        rf_claim_read(instr)
#@else
                        int_reads -= need_int
                        fp_reads -= need_fp
#@end
                        budget -= 1
                        instr.issued = True
                        instr.exec_count += 1
                        launched += 1
                        if instr.first_issue_at < 0:
                            instr.first_issue_at = now
                        instr.last_issue_at = now
                        if instr.is_load:
                            instr.mem_ready_at = now + 1
                            hpush(pending_mem, item)
                        elif instr.is_store or instr.is_br:
                            t = now + 1
                            slot = t % __WHEEL_H__
                            entry = ring[slot]
                            if entry is not None:
                                entry[1].append(instr)
                            else:
                                ring[slot] = [t, [instr]]
                                hpush(times, t)
                        else:
                            t = now + instr.latency
                            if t - now < __WHEEL_H__:
                                slot = t % __WHEEL_H__
                                entry = ring[slot]
                                if entry is not None:
                                    entry[1].append(instr)
                                else:
                                    ring[slot] = [t, [instr]]
                                    hpush(times, t)
                            else:
                                items = overflow.get(t)
                                if items is not None:
                                    items.append(instr)
                                else:
                                    overflow[t] = [instr]
                                    hpush(times, t)
#@if VP_WB
                        if instr.in_iq and instr.dest_cls is None:
                            instr.in_iq = False
                            iq_count -= 1
#@else
                        if instr.in_iq:
                            instr.in_iq = False
                            iq_count -= 1
#@end
                    if not ready_heap:
                        ready_heap.extend(retry)
                    else:
                        for item in retry:
                            hpush(ready_heap, item)
                    if launched:
                        s_executions += launched

                # ---- rename/dispatch ------------------------------------
                if fetch_buffer:
                    budget = __RENAME_W__
                    while budget and fetch_buffer:
                        instr = fetch_buffer[0]
                        if len(rob) >= __ROB_SIZE__:
                            s_rob_full += 1
                            break
                        if iq_count >= __IQ_SIZE__:
                            s_iq_full += 1
                            break
                        if instr.is_store and store_queue.full:
                            s_sq_full += 1
                            break
#@if INLINE_RENAME
                        cls = instr.dest_cls
#@if CONV
                        if cls is not None and not (
                                int_free if cls == 0 else fp_free):
                            renamer.decode_stalls += 1
                            s_no_reg += 1
                            break
#@else
                        if cls is not None and not (
                                int_vp_d if cls == 0 else fp_vp_d):
                            renamer.vp_stalls += 1
                            s_no_reg += 1
                            break
#@end
                        fetch_buffer.popleft()
                        instr.rename_at = now
                        rec = instr.rec
                        src1 = rec.src1
                        src2 = rec.src2
                        if src1 >= 0:
                            c = src1 >> __CLASS_SHIFT__
                            tag1 = (c << TAG_CLASS_SHIFT) | (
                                int_tags if c == 0 else fp_tags)[
                                    src1 & __INDEX_MASK__]
                            if src2 >= 0:
                                c = src2 >> __CLASS_SHIFT__
                                instr.src_tags = (
                                    tag1,
                                    (c << TAG_CLASS_SHIFT) | (
                                        int_tags if c == 0 else fp_tags)[
                                        src2 & __INDEX_MASK__],
                                )
                            else:
                                instr.src_tags = (tag1,)
                        elif src2 >= 0:
                            c = src2 >> __CLASS_SHIFT__
                            instr.src_tags = (
                                (c << TAG_CLASS_SHIFT) | (
                                    int_tags if c == 0 else fp_tags)[
                                    src2 & __INDEX_MASK__],
                            )
                        else:
                            instr.src_tags = ()
                        if cls is None:
                            instr.dest_tag = -1
                        else:
#@if CONV
                            if cls == 0:
                                fl = int_fl
                                fr = int_free
                                table = int_tags
                            else:
                                fl = fp_fl
                                fr = fp_free
                                table = fp_tags
                            new_phys = fr.popleft()
                            fl._members.discard(new_phys)
                            fl.allocations += 1
                            nf = len(fr)
                            if nf < fl.min_free:
                                fl.min_free = nf
                            idx = rec.dest & __INDEX_MASK__
                            instr.prev_phys = table[idx]
                            instr.dest_phys = new_phys
                            table[idx] = new_phys
                            dest_tag = (cls << TAG_CLASS_SHIFT) | new_phys
#@else
                            if cls == 0:
                                fl = int_vp_fl
                                fr = int_vp_d
                                gvp = int_tags
                                gv = int_gmt_v
                            else:
                                fl = fp_vp_fl
                                fr = fp_vp_d
                                gvp = fp_tags
                                gv = fp_gmt_v
                            new_vp = fr.popleft()
                            fl._members.discard(new_vp)
                            fl.allocations += 1
                            nf = len(fr)
                            if nf < fl.min_free:
                                fl.min_free = nf
                            idx = rec.dest & __INDEX_MASK__
                            instr.vp_reg = new_vp
                            instr.prev_vp = gvp[idx]
                            gvp[idx] = new_vp
                            gv[idx] = False
                            dest_tag = (cls << TAG_CLASS_SHIFT) | new_vp
#@end
                            instr.dest_tag = dest_tag
                            ready_at_pop(dest_tag, None)
#@else
                        if (instr.dest_cls is not None
                                and not can_rename(instr.rec)):
                            s_no_reg += 1
                            break
                        fetch_buffer.popleft()
                        instr.rename_at = now
                        rename(instr)
                        if instr.dest_tag != -1:
                            ready_at_pop(instr.dest_tag, None)
#@end
#@if DISPATCH_HOOK
#@if VP_INLINE
                        if cls is not None:
                            res = int_res if cls == 0 else fp_res
                            if res.reg < res.nrr:
                                instr.reserved = True
                                res.reg += 1
                            else:
                                res._pending.append(instr)
#@else
                        on_dispatch(instr)
#@end
#@end
                        rob.append(instr)
                        if len(rob) > s_peak_rob:
                            s_peak_rob = len(rob)
                        instr.in_iq = True
                        iq_count += 1
                        instr.not_before = now + 1
                        budget -= 1
                        tags = instr.src_tags
                        if instr.is_store:
                            sq_insert(instr.seq)
                            wait_tags = tags[:1]
                            value_tag = tags[1]
                            if ready_at_get(value_tag,
                                            __FAR_FUTURE__) <= now:
                                instr.data_ready_at = now
                                sq_set_data_ready(instr.seq, now)
                            else:
                                data_waiters[value_tag].append(instr)
                        else:
                            wait_tags = tags
                        need_int = need_fp = 0
                        waiting = 0
                        for tag in wait_tags:
                            if tag >> TAG_CLASS_SHIFT:
                                need_fp += 1
                            else:
                                need_int += 1
                            if ready_at_get(tag, __FAR_FUTURE__) > now:
                                waiters[tag].append(instr)
                                waiting += 1
                        instr.need_int = need_int
                        instr.need_fp = need_fp
                        instr.wait_count = waiting
                        if waiting == 0:
                            hpush(ready_heap, instr.heap_item)

                # ---- fetch ----------------------------------------------
                if not exhausted or replay:
                    if now < fetch_resume_at:
                        s_fetch_stall += 1
                    else:
                        budget = __FETCH_W__
                        room = __FB_SIZE__ - len(fetch_buffer)
                        if room < budget:
                            budget = room
                        seq = next_seq
                        first_seq = seq
                        while budget:
                            if replay:
                                rec = replay.popleft()
                            else:
                                rec = next(trace, None)
                                if rec is None:
                                    exhausted = True
                                    break
                            instr = new_instr(rec, seq)
                            seq += 1
                            instr.fetch_at = now
                            fetch_buffer.append(instr)
                            budget -= 1
                            if instr.is_br:
#@if PERFECT
                                predicted_taken = rec.taken
#@else
                                predicted_taken = bht_counters[
                                    (rec.pc >> 2) & bht_mask] >= 2
#@end
                                if predicted_taken != rec.taken:
                                    instr.mispredicted = True
                                    fetch_resume_at = __FAR_FUTURE__
                                    break
                                if predicted_taken:
                                    break
                        next_seq = seq
                        s_fetched += seq - first_seq

                # ---- occupancy integrals + cycle advance ----------------
#@if POOLS
                s_int_occ += NPR_INT - len(int_free)
                s_fp_occ += NPR_FP - len(fp_free)
#@else
                s_int_occ += allocated_physical(RC_INT)
                s_fp_occ += allocated_physical(RC_FP)
#@end
#@if IDLE
                if ready_heap:
                    now += 1
                else:
                    # Inlined _advance: the single-pass `while True` is
                    # a structured stand-in for its early returns.
                    target = now + 1
                    while True:
                        if (exhausted and not fetch_buffer and not rob
                                and not replay):
                            break
                        next_mem = None
                        due_mem = False
                        for _, mi in pending_mem:
                            if mi.squashed:
                                continue
                            t = mi.mem_ready_at
                            if t <= now:
                                due_mem = True
                                break
                            if next_mem is None or t < next_mem:
                                next_mem = t
                        if due_mem:
                            break
                        commit_bound = None
                        if rob:
                            head = rob[0]
                            if head.completed:
                                commit_bound = (head.completed_at
                                                + __COMMIT_DELAY__)
                                if commit_bound <= now:
                                    break
                        fetch_dead = exhausted and not replay
                        fetch_bound = None
                        if (not fetch_dead
                                and len(fetch_buffer) < __FB_SIZE__):
                            if fetch_resume_at <= target:
                                break
                            fetch_bound = fetch_resume_at
                        stall_kind = 0
                        if fetch_buffer:
                            head = fetch_buffer[0]
                            if len(rob) >= __ROB_SIZE__:
                                stall_kind = 1
                            elif iq_count >= __IQ_SIZE__:
                                stall_kind = 2
                            elif head.is_store and store_queue.full:
                                stall_kind = 3
                            elif head.dest_cls is None:
                                break
#@if GATE
                            elif rename_gate[head.dest_cls].free_count:
                                break
                            else:
                                stall_kind = 4
#@else
                            elif can_rename(head.rec):
                                break
                            else:
                                stall_kind = 4
#@end
                        # times holds no entry <= now (drained at the
                        # top of the cycle), so its head is next_time().
                        best = times[0] if times else None
                        for t in (next_mem, commit_bound, fetch_bound):
                            if t is not None and (best is None
                                                 or t < best):
                                best = t
                        horizon_bound = last_commit + __HORIZON__ + 1
                        if best is None or best > horizon_bound:
                            best = horizon_bound
                        if best <= target:
                            break
                        skipped = best - target
#@if POOLS
                        s_int_occ += skipped * (NPR_INT - len(int_free))
                        s_fp_occ += skipped * (NPR_FP - len(fp_free))
#@else
                        s_int_occ += skipped * allocated_physical(RC_INT)
                        s_fp_occ += skipped * allocated_physical(RC_FP)
#@end
                        if not fetch_dead:
                            stalled = (best - 1
                                       if best < fetch_resume_at
                                       else fetch_resume_at - 1) - now
                            if stalled > 0:
                                s_fetch_stall += stalled
                        if stall_kind == 1:
                            s_rob_full += skipped
                        elif stall_kind == 2:
                            s_iq_full += skipped
                        elif stall_kind == 3:
                            s_sq_full += skipped
                        elif stall_kind == 4:
                            s_no_reg += skipped
                        idle_skips += 1
                        idle_cycles_skipped += skipped
                        target = best
                        break
                    now = target
#@else
                now += 1
#@end
                if now - last_commit > __HORIZON__:
                    raise SimulationDeadlock(
                        f"no commit for {__HORIZON__} cycles at "
                        f"cycle {now}; ROB head: "
                        f"{rob[0] if rob else None}"
                    )
        finally:
            p.now = now
            p.iq_count = iq_count
            p.pending_mem = pending_mem
            p._mshr_gated = mshr_gated
            p.fetch_resume_at = fetch_resume_at
            p._next_seq = next_seq
            p._last_commit_cycle = last_commit
            p._exhausted = exhausted
            p.idle_skips = idle_skips
            p.idle_cycles_skipped = idle_cycles_skipped
            stats.committed = committed
            stats.fetched = s_fetched
            stats.executions = s_executions
            stats.squashes = s_squashes
            stats.issue_alloc_blocks = s_issue_alloc
            stats.branches = s_branches
            stats.mispredicts = s_mispredicts
            stats.stall_rob_full = s_rob_full
            stats.stall_iq_full = s_iq_full
            stats.stall_no_reg = s_no_reg
            stats.stall_sq_full = s_sq_full
            stats.fetch_stall_cycles = s_fetch_stall
            stats.wb_port_defers = s_wb_defers
            stats.int_reg_occupancy_sum = s_int_occ
            stats.fp_reg_occupancy_sum = s_fp_occ
            stats.peak_rob = s_peak_rob

    return loop
'''
