"""Simulation statistics.

``SimStats`` is filled in by the pipeline as it runs; ``SimResult`` is
what :func:`repro.uarch.processor.simulate` returns to callers (stats
plus the configuration and identity of the run).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields


@dataclass(slots=True)
class SimStats:
    """Raw counters accumulated during one simulation.

    Slotted: the pipeline bumps these counters many times per simulated
    cycle, and slot access skips the instance-dict lookup.
    """

    cycles: int = 0
    committed: int = 0
    fetched: int = 0
    executions: int = 0  # issue events, counting re-executions
    squashes: int = 0  # VP write-back allocation failures
    issue_alloc_blocks: int = 0  # VP issue allocation failures
    branches: int = 0
    mispredicts: int = 0
    faults: int = 0  # injected precise exceptions
    loads: int = 0
    load_misses: int = 0
    stores: int = 0
    store_forwards: int = 0
    # Rename-stage stall cycles by cause (a cycle is charged to the cause
    # blocking the *oldest* un-renamed instruction).
    stall_rob_full: int = 0
    stall_iq_full: int = 0
    stall_no_reg: int = 0
    stall_sq_full: int = 0
    fetch_stall_cycles: int = 0  # cycles fetch sat waiting on a mispredict
    wb_port_defers: int = 0
    # Register-file port/bank contention model (uarch/regfile.py; both
    # counters stay 0 with the model off — the default).
    rf_read_stalls: int = 0  # issues blocked by read ports or banks
    rf_bank_conflicts: int = 0  # blocks caused specifically by a bank
    # Register-pressure accounting: sum over cycles of allocated registers.
    int_reg_occupancy_sum: int = 0
    fp_reg_occupancy_sum: int = 0
    peak_rob: int = 0
    # Engine-tier provenance: runs that requested the compiled engine but
    # fell back to the interpreter (codegen failure).  Always 0 on the
    # interpreted tier, so a silent fallback can never masquerade as a
    # compiled run in a differential comparison.
    engine_fallbacks: int = 0

    @property
    def ipc(self):
        """Committed instructions per cycle (0.0 before any cycle)."""
        if self.cycles == 0:
            return 0.0
        return self.committed / self.cycles

    @property
    def executions_per_commit(self):
        """The paper reports 3.3 for write-back allocation (§4.2.1)."""
        if self.committed == 0:
            return 0.0
        return self.executions / self.committed

    @property
    def mispredict_rate(self):
        """Mispredicted fraction of executed branches."""
        if self.branches == 0:
            return 0.0
        return self.mispredicts / self.branches

    @property
    def load_miss_rate(self):
        """L1 miss fraction of committed loads."""
        if self.loads == 0:
            return 0.0
        return self.load_misses / self.loads

    def avg_reg_occupancy(self, cls_name):
        """Mean allocated physical registers per cycle ('int' or 'fp')."""
        if self.cycles == 0:
            return 0.0
        total = (
            self.int_reg_occupancy_sum
            if cls_name == "int"
            else self.fp_reg_occupancy_sum
        )
        return total / self.cycles

    def to_dict(self):
        """All raw counters as a flat, JSON-compatible dict."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        """Rebuild from :meth:`to_dict` output (ignores unknown keys)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class SimResult:
    """Everything a caller needs to interpret one simulation run."""

    stats: SimStats
    config: object
    workload: str = ""
    seed: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def ipc(self):
        """Shortcut for ``stats.ipc``."""
        return self.stats.ipc

    def summary(self):
        """One-line human summary: IPC, rates, executions/commit."""
        s = self.stats
        return (
            f"{self.workload or 'trace'}: IPC={s.ipc:.3f} "
            f"({s.committed} instrs / {s.cycles} cycles), "
            f"mispredict={s.mispredict_rate:.1%}, "
            f"load-miss={s.load_miss_rate:.1%}, "
            f"exec/commit={s.executions_per_commit:.2f}"
        )

    def to_dict(self):
        """JSON-compatible form shared by the persistent result store and
        the CLI's JSON output.  Round-trips through :meth:`from_dict`."""
        config = self.config
        if config is not None and hasattr(config, "to_dict"):
            config = config.to_dict()
        return {
            "workload": self.workload,
            "seed": self.seed,
            "stats": self.stats.to_dict(),
            "config": config,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`."""
        from repro.uarch.config import ProcessorConfig

        config = data.get("config")
        if isinstance(config, dict):
            config = ProcessorConfig.from_dict(config)
        return cls(
            stats=SimStats.from_dict(data.get("stats", {})),
            config=config,
            workload=data.get("workload", ""),
            seed=data.get("seed", 0),
            extra=dict(data.get("extra", {})),
        )
