"""The out-of-order cycle engine.

Stage order inside one simulated cycle (see DESIGN.md §5 for the timing
contract each stage implements):

1. **wakeup** — dependence tags scheduled to become ready this cycle fire
   and release waiting instructions into the ready set.
2. **write-back** — completion events for this cycle: write-port
   arbitration, the renamer's completion hook (late allocation /
   squash-and-re-execute under the VP write-back policy), branch
   resolution, publication of result tags.
3. **memory** — loads that have finished address generation attempt the
   cache (disambiguation, ports, MSHRs); failures retry next cycle.
4. **issue** — oldest-first selection over ready instructions subject to
   issue width, register-file read ports, functional units, and the
   renamer's issue hook (issue-stage allocation).
5. **commit** — in-order retirement; stores write the cache here.
6. **rename/dispatch** — decode-stage renaming and insertion into
   ROB/IQ/store-queue.
7. **fetch** — up to 8 consecutive instructions; stalls at a mispredicted
   branch until it resolves (trace-driven wrong-path model).

Everything is driven by two event maps — ``wakeup_at`` (tag readiness)
and ``complete_at`` (execution completions) — so a cycle costs time
proportional to the work in it, not to the window size.
"""

from __future__ import annotations

import itertools
from collections import defaultdict, deque
from heapq import heappush, heappop

from repro.branch.bht import BranchHistoryTable
from repro.core.tags import tag_class
from repro.core.virtual_physical import AllocationStage, VirtualPhysicalRenamer
from repro.isa.registers import RegClass
from repro.memory.memory_system import MemorySystem
from repro.uarch.config import ProcessorConfig
from repro.uarch.dynamic import DynInstr
from repro.uarch.functional_units import FunctionalUnitPool
from repro.uarch.stats import SimResult, SimStats

_FAR_FUTURE = 1 << 60


class SimulationDeadlock(RuntimeError):
    """No instruction committed for ``deadlock_horizon`` cycles."""


class Processor:
    """One simulated machine; create a fresh instance per run."""

    def __init__(self, config=None):
        self.config = config or ProcessorConfig()
        cfg = self.config
        self.renamer = cfg.build_renamer()
        self.bht = BranchHistoryTable(cfg.bht_entries)
        self.mem = MemorySystem(cfg.cache, cfg.cache_ports, cfg.store_queue_size)
        self.fus = FunctionalUnitPool(cfg.fu_counts)
        self.stats = SimStats()
        self._vp_writeback = (
            isinstance(self.renamer, VirtualPhysicalRenamer)
            and self.renamer.allocation is AllocationStage.WRITEBACK
        )
        self._retry_gating = self._vp_writeback and cfg.retry_gating
        # Machine state.
        self.now = 0
        self.rob = deque()
        self.iq_count = 0
        self.fetch_buffer = deque()
        self.ready_heap = []  # (seq, instr), oldest first
        self.waiters = defaultdict(list)  # tag -> instrs waiting to become ready
        self.data_waiters = defaultdict(list)  # tag -> stores waiting for data
        self.ready_at = {}  # tag -> cycle its value is available
        self.wakeup_at = defaultdict(list)  # cycle -> tags firing
        self.complete_at = defaultdict(list)  # cycle -> completion events
        self.pending_mem = []  # loads awaiting their cache access
        self.fetch_resume_at = 0
        self._next_seq = 0
        self._last_commit_cycle = 0
        # Precise-exception injection: the K-th committing instruction
        # faults, flushing and replaying everything younger (§3.2.2).
        self._fault_at_commits = set()
        self._replay = deque()
        for tag in self.renamer.initial_ready_tags():
            self.ready_at[tag] = 0

    def inject_faults(self, commit_indices):
        """Arrange for the K-th committing instruction(s) to raise a
        precise exception.  Recovery pops the reorder buffer youngest
        first, rolls the rename tables back (the paper's §3.2.2 walk),
        and re-fetches the flushed instructions."""
        self._fault_at_commits.update(int(k) for k in commit_indices)

    # -- public API ----------------------------------------------------------

    def run(self, trace, max_instructions=None, skip=0):
        """Simulate ``max_instructions`` records of ``trace`` after ``skip``.

        The skipped prefix warms the cache and the branch predictor
        functionally (no timing), mirroring the paper's fast-forward of
        the first 100M instructions.
        """
        if getattr(self, "_ran", False):
            raise RuntimeError(
                "a Processor instance runs once; create a fresh one "
                "(its caches, predictor, and rename state are warm)"
            )
        self._ran = True
        stream = iter(trace)
        if skip:
            self._warm_up(stream, skip)
        if max_instructions is not None:
            stream = itertools.islice(stream, max_instructions)
        self._trace = stream
        self._exhausted = False
        while not (self._exhausted and not self.fetch_buffer
                   and not self.rob and not self._replay):
            self._step()
            if self.now - self._last_commit_cycle > self.config.deadlock_horizon:
                raise SimulationDeadlock(
                    f"no commit for {self.config.deadlock_horizon} cycles at "
                    f"cycle {self.now}; ROB head: "
                    f"{self.rob[0] if self.rob else None}"
                )
        self.stats.cycles = self.now
        self._harvest_stats()
        return SimResult(stats=self.stats, config=self.config)

    # -- warm-up ------------------------------------------------------------

    def _warm_up(self, stream, skip):
        cache = self.mem.cache
        bht = self.bht
        for rec in itertools.islice(stream, skip):
            if rec.addr:
                cache.warm((rec.addr,))
            if rec.op.name == "BRANCH":
                bht.update(rec.pc, rec.taken)

    # -- per-cycle machinery --------------------------------------------------

    def _step(self):
        now = self.now
        self._fire_wakeups(now)
        self._writeback(now)
        # Commit runs before the memory stage so committing stores (the
        # oldest instructions in the machine) win cache-port arbitration
        # over younger loads; otherwise a squash-and-retry storm can
        # starve the store at the ROB head forever.
        self._commit(now)
        self._memory_access(now)
        self._issue(now)
        self._rename_dispatch(now)
        self._fetch(now)
        self.stats.int_reg_occupancy_sum += self.renamer.allocated_physical(RegClass.INT)
        self.stats.fp_reg_occupancy_sum += self.renamer.allocated_physical(RegClass.FP)
        self.now = now + 1

    def _publish(self, tag, when):
        """Announce that ``tag``'s value (and register) exist from ``when``."""
        self.ready_at[tag] = when
        if when <= self.now:
            self._fire_tag(tag)
        else:
            self.wakeup_at[when].append(tag)

    def _fire_tag(self, tag):
        now = self.now
        for instr in self.waiters.pop(tag, ()):
            instr.wait_count -= 1
            if instr.wait_count == 0 and not instr.squashed:
                heappush(self.ready_heap, (instr.seq, instr))
        for store in self.data_waiters.pop(tag, ()):
            if store.squashed:
                continue
            store.data_ready_at = now
            self.mem.store_queue.set_data_ready(store.seq, now)
            if store.mem_ready_at >= 0 and not store.completed:
                store.completed = True
                store.completed_at = now

    def _fire_wakeups(self, now):
        for tag in self.wakeup_at.pop(now, ()):
            self._fire_tag(tag)

    # -- write-back -----------------------------------------------------------

    def _writeback(self, now):
        events = self.complete_at.pop(now, None)
        if not events:
            return
        events.sort(key=lambda i: i.seq)
        ports_left = {
            RegClass.INT: self.config.write_ports,
            RegClass.FP: self.config.write_ports,
        }
        for instr in events:
            if instr.squashed:
                continue  # flushed by precise-exception recovery
            if instr.is_store:
                self._store_ea_done(instr, now)
                continue
            if instr.is_br:
                self._resolve_branch(instr, now)
                continue
            cls = instr.dest_cls
            if cls is not None and ports_left[cls] == 0:
                self.stats.wb_port_defers += 1
                self.complete_at[now + 1].append(instr)
                continue
            if not self.renamer.on_complete(instr, now):
                # VP write-back allocation failed: squash back to the IQ.
                self.stats.squashes += 1
                instr.not_before = now + 1
                heappush(self.ready_heap, (instr.seq, instr))
                continue
            if cls is not None:
                ports_left[cls] -= 1
            instr.completed = True
            instr.completed_at = now
            if instr.in_iq:
                instr.in_iq = False
                self.iq_count -= 1
            if instr.dest_tag != -1:
                self._publish(instr.dest_tag, now)

    def _store_ea_done(self, instr, now):
        self.mem.store_queue.set_address(instr.seq, instr.rec.addr)
        instr.mem_ready_at = now
        if instr.data_ready_at >= 0:
            instr.completed = True
            instr.completed_at = now

    def _resolve_branch(self, instr, now):
        rec = instr.rec
        self.stats.branches += 1
        self.bht.update(rec.pc, rec.taken)
        if instr.mispredicted:
            self.stats.mispredicts += 1
            self.fetch_resume_at = now + 1
        instr.completed = True
        instr.completed_at = now

    # -- memory ---------------------------------------------------------------

    def _memory_access(self, now):
        if not self.pending_mem:
            return
        self.pending_mem.sort(key=lambda i: i.seq)
        still_pending = []
        for instr in self.pending_mem:
            if instr.squashed:
                continue
            if instr.mem_ready_at > now:
                still_pending.append(instr)
                continue
            done = self.mem.try_load(instr.seq, instr.rec.addr, now)
            if done is None:
                still_pending.append(instr)
                continue
            self.complete_at[done].append(instr)
        self.pending_mem = still_pending

    # -- issue ----------------------------------------------------------------

    def _issue(self, now):
        budget = self.config.issue_width
        reads_left = {
            RegClass.INT: self.config.read_ports,
            RegClass.FP: self.config.read_ports,
        }
        retry = []
        heap = self.ready_heap
        while budget and heap:
            seq, instr = heappop(heap)
            if instr.squashed:
                continue
            if instr.not_before > now:
                retry.append((seq, instr))
                continue
            # Optional engineering improvement (retry_gating): a squashed
            # instruction re-executes only when the allocation rule could
            # currently admit it; spinning pointlessly would burn
            # functional units and cache ports that first-time issues
            # (branch resolution in particular) need.  The paper's
            # machine spins, so gating defaults to off.
            if (
                self._retry_gating
                and instr.exec_count > 0
                and instr.dest_cls is not None
                and instr.dest_phys < 0
                and not self.renamer.may_allocate_now(instr)
            ):
                retry.append((seq, instr))
                continue
            # Register-file read ports.
            need = defaultdict(int)
            read_tags = instr.src_tags[:1] if instr.is_store else instr.src_tags
            for tag in read_tags:
                need[tag_class(tag)] += 1
            if any(reads_left[cls] < n for cls, n in need.items()):
                retry.append((seq, instr))
                continue
            # Functional unit (checked before allocation so a failed
            # issue-stage allocation does not waste a unit).
            if not self.fus.can_issue(instr.fu_kind, now):
                retry.append((seq, instr))
                continue
            if not self.renamer.on_issue(instr, now):
                self.stats.issue_alloc_blocks += 1
                retry.append((seq, instr))
                continue
            self.fus.claim(instr.fu_kind, now, instr.latency, instr.pipelined)
            for cls, n in need.items():
                reads_left[cls] -= n
            budget -= 1
            self._launch(instr, now)
        for item in retry:
            heappush(heap, item)

    def _launch(self, instr, now):
        instr.issued = True
        instr.exec_count += 1
        self.stats.executions += 1
        if instr.first_issue_at < 0:
            instr.first_issue_at = now
        instr.last_issue_at = now
        if instr.is_load:
            instr.mem_ready_at = now + 1  # EA ready next cycle
            self.pending_mem.append(instr)
        elif instr.is_store or instr.is_br:
            self.complete_at[now + 1].append(instr)
        else:
            self.complete_at[now + instr.latency].append(instr)
        # Under VP write-back allocation, destination writers stay in the
        # IQ until their completion succeeds (they may be squashed and
        # re-executed); everything else frees its IQ entry at issue.
        holds_iq = self._vp_writeback and instr.dest_cls is not None
        if instr.in_iq and not holds_iq:
            instr.in_iq = False
            self.iq_count -= 1

    # -- commit ---------------------------------------------------------------

    def _commit(self, now):
        budget = self.config.commit_width
        extra = self.renamer.commit_extra_latency
        rob = self.rob
        while budget and rob:
            instr = rob[0]
            if not instr.completed or instr.completed_at + 1 + extra > now:
                break
            if self.stats.committed in self._fault_at_commits:
                self._fault_at_commits.discard(self.stats.committed)
                self._recover_from_fault(instr, now)
                # The offending instruction itself commits below (its
                # fault is now "handled"); everything younger replays.
            if instr.is_store:
                if not self.mem.try_store_commit(instr.rec.addr, now):
                    break  # no cache port this cycle; retry in order
                self.mem.store_queue.remove(instr.seq)
            self.renamer.on_commit(instr)
            rob.popleft()
            instr.commit_at = now
            self.stats.committed += 1
            self._last_commit_cycle = now
            budget -= 1

    # -- precise-exception recovery ---------------------------------------------

    def _recover_from_fault(self, offender, now):
        """Flush everything younger than ``offender`` and replay it.

        Implements the paper's §3.2.2 recovery: the reorder buffer is
        popped from the newest entry down to the offending one, each
        pop undoing the rename mapping (the renamer's ``rollback``);
        the flushed dynamic instructions re-enter through fetch.
        """
        rob = self.rob
        assert rob and rob[0] is offender, "faults are detected at the head"
        younger = list(rob)[1:]
        while len(rob) > 1:
            rob.pop()
        # Rename-state rollback wants youngest first.
        self.renamer.rollback(list(reversed(younger)))
        freed_iq = 0
        for instr in younger:
            instr.squashed = True
            if instr.in_iq:
                instr.in_iq = False
                freed_iq += 1
        self.iq_count -= freed_iq
        # Store-queue entries of flushed stores disappear.
        self.mem.store_queue.remove_younger_than(offender.seq)
        # Loads waiting on the memory system are dropped (their MSHRs, if
        # any, simply fill unused — as in real lockup-free caches).
        self.pending_mem = [i for i in self.pending_mem if not i.squashed]
        # Replay in program order: the flushed window, then the
        # un-renamed fetch buffer, then anything an *earlier* fault left
        # queued (everything flushed now is older than those records).
        flushed = [instr.rec for instr in younger]
        flushed.extend(instr.rec for instr in self.fetch_buffer)
        self.fetch_buffer.clear()
        self._replay.extendleft(reversed(flushed))
        # Fetch restarts after the exception is handled.
        self.fetch_resume_at = now + 1
        self.stats.faults += 1

    # -- rename / dispatch ------------------------------------------------------

    def _rename_dispatch(self, now):
        cfg = self.config
        budget = cfg.rename_width
        buffer = self.fetch_buffer
        renamer = self.renamer
        stats = self.stats
        while budget and buffer:
            instr = buffer[0]
            if len(self.rob) >= cfg.rob_size:
                stats.stall_rob_full += 1
                break
            if self.iq_count >= cfg.iq_size:
                stats.stall_iq_full += 1
                break
            if instr.is_store and self.mem.store_queue.full:
                stats.stall_sq_full += 1
                break
            if not renamer.can_rename(instr.rec):
                stats.stall_no_reg += 1
                break
            buffer.popleft()
            instr.rename_at = now
            renamer.rename(instr)
            if instr.dest_tag != -1:
                # A fresh name starts a new lifetime: clear stale readiness.
                self.ready_at.pop(instr.dest_tag, None)
            if hasattr(renamer, "on_dispatch"):
                renamer.on_dispatch(instr)
            self.rob.append(instr)
            if len(self.rob) > stats.peak_rob:
                stats.peak_rob = len(self.rob)
            instr.in_iq = True
            self.iq_count += 1
            instr.not_before = now + 1
            self._wire_dependences(instr, now)
            budget -= 1

    def _wire_dependences(self, instr, now):
        tags = instr.src_tags
        if instr.is_store:
            self.mem.store_queue.insert(instr.seq)
            wait_tags = tags[:1]
            value_tag = tags[1]
            ready = self.ready_at.get(value_tag, _FAR_FUTURE)
            if ready <= now:
                instr.data_ready_at = now
                self.mem.store_queue.set_data_ready(instr.seq, now)
            else:
                self.data_waiters[value_tag].append(instr)
        else:
            wait_tags = tags
        pending = 0
        for tag in wait_tags:
            if self.ready_at.get(tag, _FAR_FUTURE) > now:
                self.waiters[tag].append(instr)
                pending += 1
        instr.wait_count = pending
        if pending == 0:
            heappush(self.ready_heap, (instr.seq, instr))

    # -- fetch ----------------------------------------------------------------

    def _fetch(self, now):
        if self._exhausted and not self._replay:
            return
        if now < self.fetch_resume_at:
            self.stats.fetch_stall_cycles += 1
            return
        cfg = self.config
        budget = cfg.fetch_width
        buffer = self.fetch_buffer
        while budget and len(buffer) < cfg.fetch_buffer_size:
            if self._replay:
                rec = self._replay.popleft()
            else:
                rec = next(self._trace, None)
            if rec is None:
                self._exhausted = True
                return
            instr = DynInstr(rec, self._next_seq)
            self._next_seq += 1
            instr.fetch_at = now
            buffer.append(instr)
            self.stats.fetched += 1
            budget -= 1
            if instr.is_br:
                if self.config.perfect_branch_prediction:
                    predicted_taken = rec.taken
                else:
                    predicted_taken = self.bht.predict(rec.pc)
                if predicted_taken != rec.taken:
                    # Trace-driven wrong-path model: stop fetching until
                    # the branch resolves (its resolution sets resume).
                    instr.mispredicted = True
                    self.fetch_resume_at = _FAR_FUTURE
                    return
                if predicted_taken:
                    return  # a predicted-taken branch ends the fetch group

    # -- final bookkeeping -----------------------------------------------------

    def _harvest_stats(self):
        cache = self.mem.cache
        self.stats.loads = cache.loads
        self.stats.load_misses = cache.load_misses
        self.stats.stores = cache.stores
        self.stats.store_forwards = self.mem.store_queue.forwards


def simulate(config=None, trace=None, workload=None,
             max_instructions=30_000, skip=2_000, seed=1234):
    """One-call simulation entry point.

    Provide either a ``trace`` (any iterable of
    :class:`~repro.isa.instruction.TraceRecord`) or a ``workload`` (a
    benchmark name from :data:`repro.trace.WORKLOADS` or a
    :class:`~repro.trace.Workload` instance).
    """
    from repro.trace.generator import SyntheticTrace
    from repro.trace.program import Workload
    from repro.trace.workloads import load_workload

    if (trace is None) == (workload is None):
        raise ValueError("provide exactly one of trace= or workload=")
    name = ""
    if workload is not None:
        if isinstance(workload, str):
            name = workload
            workload = load_workload(workload)
        elif isinstance(workload, Workload):
            name = workload.name
        else:
            raise TypeError("workload must be a name or a Workload")
        trace = SyntheticTrace(workload, seed)
    processor = Processor(config or ProcessorConfig())
    result = processor.run(trace, max_instructions=max_instructions, skip=skip)
    result.workload = name
    result.seed = seed
    return result
