"""The out-of-order cycle engine.

Stage order inside one simulated cycle (see DESIGN.md §5 for the timing
contract each stage implements; all stages are inlined into
:meth:`Processor._step`, the interpreter-level hot loop):

1. **write-back/wakeup** — completion events for this cycle: write-port
   arbitration, the renamer's completion hook (late allocation /
   squash-and-re-execute under the VP write-back policy), branch
   resolution, publication of result tags.  Tag wakeup is fused into
   publication: a value and its register exist exactly when the
   producer completes, so waiters are released in the same pass and no
   separate wakeup queue exists.
2. **commit** — in-order retirement; stores write the cache here.  Commit
   runs before the memory stage so committing stores (the oldest
   instructions in the machine) win cache-port arbitration over younger
   loads.
3. **memory** — loads that have finished address generation attempt the
   cache (disambiguation, ports, MSHRs); failures retry next cycle.
4. **issue** — oldest-first selection over ready instructions subject to
   issue width, register-file read ports, functional units, and the
   renamer's issue hook (issue-stage allocation).
5. **rename/dispatch** — decode-stage renaming and insertion into
   ROB/IQ/store-queue.
6. **fetch** — up to 8 consecutive instructions; stalls at a mispredicted
   branch until it resolves (trace-driven wrong-path model).

Timing contract of the event machinery
--------------------------------------

Execution completions are driven by one
:class:`~repro.uarch.events.EventWheel` — ``complete_at`` — so a cycle
costs time proportional to the work in it, not to the window size.
Loads between EA computation and their cache access wait in
``pending_mem``, a min-heap ordered by sequence number (program order
decides cache-port priority).

**Idle-cycle skip.**  When a cycle ends with provably nothing to do —
no ready instructions, no load awaiting a cache retry, no commit
possible before a known future cycle, fetch blocked (mispredict stall,
full fetch buffer, or trace exhausted) and rename blocked (or the fetch
buffer empty) — the engine jumps ``now`` directly to the earliest
future scheduled event instead of spinning through the empty cycles of
a long miss stall or a division.  The jump is *exactly* accounted: the
per-cycle counters the spin would have incremented
(``fetch_stall_cycles``, the rename-stall cause charged to the oldest
un-renamed instruction, and the register-occupancy integrals) are bulk
added for the skipped cycles, so ``SimStats`` is bit-identical with the
skip on or off (``Processor(config, idle_skip=False)`` disables it; the
``idle_cycles_skipped`` attribute counts what was saved).  Renamer-
internal diagnostic counters that are not part of ``SimStats`` (e.g.
``decode_stalls``) are not spun during skipped cycles.  The deadlock
horizon bounds every jump, so :class:`SimulationDeadlock` fires at the
same cycle it would without the skip.
"""

from __future__ import annotations

import itertools
from collections import defaultdict, deque
from heapq import heapify, heappush, heappop
from operator import attrgetter

from repro.branch.bht import BranchHistoryTable
from repro.core.tags import TAG_CLASS_SHIFT
from repro.isa.opcodes import OpClass
from repro.isa.registers import RegClass
from repro.memory.memory_system import MemorySystem
from repro.uarch.config import ProcessorConfig
from repro.uarch.dynamic import DynInstr
from repro.uarch.events import EventWheel
from repro.uarch.functional_units import FunctionalUnitPool
from repro.uarch.regfile import RegisterFilePorts
from repro.uarch.stats import SimResult, SimStats

_FAR_FUTURE = 1 << 60

_BY_SEQ = attrgetter("seq")


class SimulationDeadlock(RuntimeError):
    """No instruction committed for ``deadlock_horizon`` cycles."""


class Processor:
    """One simulated machine; create a fresh instance per run."""

    def __init__(self, config=None, idle_skip=True, engine=None):
        self.config = config or ProcessorConfig()
        cfg = self.config
        # Engine tier: the explicit argument wins, else the config field
        # ("auto" defers to REPRO_ENGINE at run time — see
        # repro.uarch.compiled.resolve_engine).  engine_used records the
        # tier that actually ran.
        self._engine = engine if engine is not None else cfg.engine
        self.engine_used = None
        self.renamer = cfg.build_renamer()
        self.bht = BranchHistoryTable(cfg.bht_entries)
        self.mem = MemorySystem(cfg.cache, cfg.cache_ports, cfg.store_queue_size)
        self.fus = FunctionalUnitPool(cfg.fu_counts)
        self.stats = SimStats()
        # The policy's declared capabilities drive every engine fast
        # path: no-op hooks are never bound, so the hot loop stays
        # branch-free for policies that don't use them, with zero
        # knowledge of concrete renamer classes.
        renamer = self.renamer
        self._vp_writeback = renamer.holds_writers_in_iq
        self._retry_gating = renamer.supports_retry_gating and cfg.retry_gating
        self._commit_extra = renamer.commit_extra_latency
        self._on_dispatch = (renamer.on_dispatch
                             if renamer.has_dispatch_hook else None)
        self._issue_hook = renamer.on_issue if renamer.has_issue_hook else None
        self._complete_hook = (renamer.on_complete
                               if renamer.has_complete_hook else None)
        # The free pools backing the per-cycle occupancy integrals; the
        # attribute-chain walk through allocated_physical() would cost a
        # measurable slice of every cycle.
        pools = renamer.phys_pools()
        if pools is not None:
            # The underlying deques, counted with a plain len() per cycle.
            self._int_free = pools[RegClass.INT]._free
            self._fp_free = pools[RegClass.FP]._free
            self._npr_int = renamer.npr[RegClass.INT]
            self._npr_fp = renamer.npr[RegClass.FP]
        else:  # custom policy without the standard pool layout
            self._int_free = self._fp_free = None
            self._npr_int = self._npr_fp = 0
        # Side-effect-free stand-in for can_rename() during idle-skip
        # probing (see RenamingPolicy.rename_gate_pools): can_rename()
        # itself bumps policy-internal stall diagnostics, which a
        # speculative probe must not touch.
        self._rename_gate = renamer.rename_gate_pools()
        # Register-file port/bank contention model; None = the legacy
        # fixed per-class port checks (bit-identical golden stats).
        self.regfile = RegisterFilePorts(cfg) if cfg.rf_model else None
        # Machine state.
        self.now = 0
        self.rob = deque()
        self.iq_count = 0
        self.fetch_buffer = deque()
        self.ready_heap = []  # (seq, instr), oldest first
        self.waiters = defaultdict(list)  # tag -> instrs waiting to become ready
        self.data_waiters = defaultdict(list)  # tag -> stores waiting for data
        self.ready_at = {}  # tag -> cycle its value is available
        self.complete_at = EventWheel()  # cycle -> completion events
        self.pending_mem = []  # heap of (seq, load) awaiting cache access
        # Loads rejected for lack of an MSHR sleep until the first cycle
        # their rejection could be reconsidered (earliest fill completion);
        # a committing store can install lines earlier, so it wakes them.
        self._mshr_gated = []
        self.fetch_resume_at = 0
        self._next_seq = 0
        self._last_commit_cycle = 0
        self._wb_ports = [0, 0]  # reused write-port scratch (INT, FP)
        self._idle_skip = idle_skip
        self.idle_skips = 0  # jumps taken (diagnostic)
        self.idle_cycles_skipped = 0  # cycles not simulated (diagnostic)
        # Precise-exception injection: the K-th committing instruction
        # faults, flushing and replaying everything younger (§3.2.2).
        self._fault_at_commits = set()
        self._replay = deque()
        for tag in self.renamer.initial_ready_tags():
            self.ready_at[tag] = 0

    def inject_faults(self, commit_indices):
        """Arrange for the K-th committing instruction(s) to raise a
        precise exception.  Recovery pops the reorder buffer youngest
        first, rolls the rename tables back (the paper's §3.2.2 walk),
        and re-fetches the flushed instructions."""
        self._fault_at_commits.update(int(k) for k in commit_indices)

    # -- public API ----------------------------------------------------------

    def run(self, trace, max_instructions=None, skip=0):
        """Simulate ``max_instructions`` records of ``trace`` after ``skip``.

        The skipped prefix warms the cache and the branch predictor
        functionally (no timing), mirroring the paper's fast-forward of
        the first 100M instructions.
        """
        if getattr(self, "_ran", False):
            raise RuntimeError(
                "a Processor instance runs once; create a fresh one "
                "(its caches, predictor, and rename state are warm)"
            )
        self._ran = True
        stream = iter(trace)
        if skip:
            self._warm_up(stream, skip)
        if max_instructions is not None:
            stream = itertools.islice(stream, max_instructions)
        self._trace = stream
        self._exhausted = False
        from repro.uarch import compiled as _compiled

        engine = _compiled.resolve_engine(self._engine)
        self.engine_used = "interp"
        # The native tier runs the whole trace in C.  It needs the
        # record list up front (one marshalling pass); on any build or
        # marshalling failure it falls back to the compiled tier below,
        # counting the fallback.  Per-instance _step instrumentation
        # forces the interpreter for the same reason as the compiled
        # tier (silently: the request is reinterpreted, not failed).
        if engine == "native" and "_step" not in self.__dict__:
            from repro.uarch import native as _native

            if max_instructions is None:
                # An unbounded stream cannot be safely materialized.
                _native._note_failure("unbounded-trace")
            else:
                records = list(stream)
                self._trace = stream = iter(records)
                self.engine_used = "native"
                if _native.execute(self, records):
                    self.stats.cycles = self.now
                    self._harvest_stats()
                    return SimResult(stats=self.stats, config=self.config)
                self.engine_used = "interp"
            self.stats.engine_fallbacks += 1
        # The compiled tier takes over the whole run loop.  Per-instance
        # _step instrumentation (tests monkeypatch it) forces the
        # interpreter: a replaced _step would never be called by the
        # specialized loop.
        if engine in ("compiled", "native") and "_step" not in self.__dict__:
            loop = _compiled.build_loop(self)
            if loop is not None:
                self.engine_used = "compiled"
                loop()
                self.stats.cycles = self.now
                self._harvest_stats()
                return SimResult(stats=self.stats, config=self.config)
            self.stats.engine_fallbacks += 1
        step = self._step  # honors per-instance test instrumentation
        horizon = self.config.deadlock_horizon
        while not (self._exhausted and not self.fetch_buffer
                   and not self.rob and not self._replay):
            step()
            if self.now - self._last_commit_cycle > horizon:
                raise SimulationDeadlock(
                    f"no commit for {horizon} cycles at "
                    f"cycle {self.now}; ROB head: "
                    f"{self.rob[0] if self.rob else None}"
                )
        self.stats.cycles = self.now
        self._harvest_stats()
        return SimResult(stats=self.stats, config=self.config)

    # -- warm-up ------------------------------------------------------------

    def _warm_up(self, stream, skip):
        warm = self.mem.cache.warm_address
        bht_update = self.bht.update
        branch = OpClass.BRANCH
        for rec in itertools.islice(stream, skip):
            if rec.addr:
                warm(rec.addr)
            if rec.op is branch:
                bht_update(rec.pc, rec.taken)

    # -- the per-cycle hot loop ----------------------------------------------

    def _step(self):
        """Simulate one cycle: every pipeline stage, inlined.

        The stage bodies live in one function on purpose — the engine's
        throughput is bounded by interpreter overhead, and the inlining
        saves both the per-stage call and the re-hoisting of shared
        locals.  Section banners mark the stage boundaries; the stage
        semantics are documented in the module docstring and DESIGN.md §5.
        """
        now = self.now
        cfg = self.config
        stats = self.stats
        renamer = self.renamer

        # ---- write-back: completion events ------------------------------
        # (Tag wakeup is folded into publication below: a completing
        # producer publishes its tag and releases waiters in the same
        # cycle, so no separate wakeup queue exists.)
        events = self.complete_at.pop(now) if self.complete_at.due(now) else ()
        if events:
            events.sort(key=_BY_SEQ)
            regfile = self.regfile
            if regfile is not None:
                regfile.start_write_cycle()
            ports_left = self._wb_ports
            ports_left[0] = ports_left[1] = cfg.write_ports
            on_complete = self._complete_hook
            ready_at = self.ready_at
            ready_heap = self.ready_heap
            waiters_pop = self.waiters.pop
            data_waiters = self.data_waiters
            defer_push = self.complete_at.push
            for instr in events:
                if instr.squashed:
                    continue  # flushed by precise-exception recovery
                if instr.is_store:
                    # EA computation done: hand the address to the store
                    # queue; the store completes once its data is ready.
                    self.mem.store_queue.set_address(instr.seq, instr.rec.addr)
                    instr.mem_ready_at = now
                    if instr.data_ready_at >= 0:
                        instr.completed = True
                        instr.completed_at = now
                    continue
                if instr.is_br:
                    rec = instr.rec
                    stats.branches += 1
                    self.bht.update(rec.pc, rec.taken)
                    if instr.mispredicted:
                        stats.mispredicts += 1
                        self.fetch_resume_at = now + 1
                    instr.completed = True
                    instr.completed_at = now
                    continue
                cls = instr.dest_cls
                if cls is not None and (
                        ports_left[cls] == 0 if regfile is None
                        else not regfile.can_write(instr)):
                    stats.wb_port_defers += 1
                    defer_push(now + 1, instr)
                    continue
                if on_complete is not None and not on_complete(instr, now):
                    # VP write-back allocation failed: squash to the IQ.
                    stats.squashes += 1
                    instr.not_before = now + 1
                    heappush(ready_heap, instr.heap_item)
                    continue
                if cls is not None:
                    if regfile is None:
                        ports_left[cls] -= 1
                    else:
                        regfile.claim_write(instr)
                instr.completed = True
                instr.completed_at = now
                if instr.in_iq:
                    instr.in_iq = False
                    self.iq_count -= 1
                tag = instr.dest_tag
                if tag != -1:
                    # Publish the result tag and wake its waiters (a
                    # completion's value is always ready this cycle).
                    ready_at[tag] = now
                    waiting = waiters_pop(tag, None)
                    if waiting:
                        for waiter in waiting:
                            waiter.wait_count -= 1
                            if waiter.wait_count == 0 and not waiter.squashed:
                                heappush(ready_heap, waiter.heap_item)
                    if data_waiters:
                        stores = data_waiters.pop(tag, None)
                        if stores:
                            self._fire_stores(stores, now)

        # ---- commit: in-order retirement --------------------------------
        rob = self.rob
        if rob:
            budget = cfg.commit_width
            extra = self._commit_extra
            on_commit = renamer.on_commit
            faults = self._fault_at_commits
            committed = stats.committed
            while budget and rob:
                instr = rob[0]
                if not instr.completed or instr.completed_at + 1 + extra > now:
                    break
                if faults and committed in faults:
                    faults.discard(committed)
                    self._recover_from_fault(instr, now)
                    # The offending instruction itself commits below (its
                    # fault is now "handled"); everything younger replays.
                if instr.is_store:
                    if not self.mem.try_store_commit(instr.rec.addr, now):
                        break  # no cache port this cycle; retry in order
                    self.mem.store_queue.remove(instr.seq)
                    if self._mshr_gated:
                        # The store may have installed a line a sleeping
                        # load needs; let them all re-check this cycle
                        # (the memory stage runs after commit).
                        for gated in self._mshr_gated:
                            gated.mem_ready_at = now
                            gated.mshr_gated = False
                        self._mshr_gated.clear()
                on_commit(instr)
                rob.popleft()
                instr.commit_at = now
                committed += 1
                budget -= 1
            if committed != stats.committed:
                stats.committed = committed
                self._last_commit_cycle = now

        # ---- memory: loads attempt the cache ----------------------------
        pending = self.pending_mem
        if pending:
            mem = self.mem
            try_load = mem.try_load
            push_complete = self.complete_at.push
            still_pending = []
            append = still_pending.append
            # A load younger than the oldest store with an unknown
            # address cannot disambiguate this cycle; since the heap
            # drains in ascending sequence order, the first such load
            # ends the scan for everyone behind it.  (Store state cannot
            # change during this stage, so one snapshot is valid.)
            blocking_store = self.mem.store_queue.oldest_unknown_seq()
            # Draining a heap yields ascending sequence numbers: program
            # order decides who gets the cache ports.
            while pending:
                item = heappop(pending)
                instr = item[1]
                if instr.squashed:
                    continue
                if blocking_store is not None and item[0] > blocking_store:
                    # Keep the store queue's waits diagnostic faithful:
                    # every cut-short load that would have attempted the
                    # cache this cycle would have been told to WAIT.
                    waits = 0 if instr.mem_ready_at > now else 1
                    waits += sum(1 for _, cut in pending
                                 if not cut.squashed
                                 and cut.mem_ready_at <= now)
                    self.mem.store_queue.waits += waits
                    append(item)
                    # The remaining heap items all have higher seqs, so
                    # sorting them keeps the rebuilt list a valid heap.
                    pending.sort()
                    still_pending.extend(pending)
                    pending.clear()
                    break
                if instr.mem_ready_at > now:
                    append(item)
                    continue
                done = try_load(item[0], instr.rec.addr, now)
                if done is None:
                    if mem.last_refusal == "mshr":
                        # MSHRs full: nothing changes for this load until
                        # a fill completes (or a store commit wakes it);
                        # sleep instead of re-probing every cycle.
                        gate = mem.cache.mshrs.next_fill_time(now)
                        if gate is not None and gate > now:
                            instr.mem_ready_at = gate
                            if not instr.mshr_gated:
                                # One wake-list entry per load, however
                                # many times its sleep is re-gated.
                                instr.mshr_gated = True
                                self._mshr_gated.append(instr)
                    append(item)
                    continue
                push_complete(done, instr)
            # Built in ascending order, so the list is already a valid heap.
            self.pending_mem = still_pending

        # ---- issue: oldest-first over the ready set ---------------------
        heap = self.ready_heap
        if heap:
            budget = cfg.issue_width
            int_reads = fp_reads = cfg.read_ports
            regfile = self.regfile
            if regfile is not None:
                regfile.start_read_cycle()
            retry = []
            fus = self.fus
            retry_gating = self._retry_gating
            vp_writeback = self._vp_writeback
            on_issue = self._issue_hook
            # A unit kind found fully busy stays busy for the rest of the
            # cycle (claims only consume); memoize the verdict so a deep
            # ready queue doesn't re-scan the pool per blocked instruction.
            fu_blocked = 0
            launched = 0
            complete_push = self.complete_at.push
            pending_mem = self.pending_mem
            while budget and heap:
                item = heappop(heap)
                instr = item[1]
                if instr.squashed:
                    continue
                if instr.not_before > now:
                    retry.append(item)
                    continue
                # Optional engineering improvement (retry_gating): a
                # squashed instruction re-executes only when the
                # allocation rule could currently admit it; spinning
                # pointlessly would burn functional units and cache ports
                # that first-time issues (branch resolution in particular)
                # need.  The paper's machine spins, so gating defaults off.
                if (
                    retry_gating
                    and instr.exec_count > 0
                    and instr.dest_cls is not None
                    and instr.dest_phys < 0
                    and not renamer.may_allocate_now(instr)
                ):
                    retry.append(item)
                    continue
                # Register-file read ports (pre-counted at dispatch;
                # checked here, charged after the FU and issue-hook
                # checks pass so a refused issue consumes nothing).
                if regfile is None:
                    need_int = instr.need_int
                    need_fp = instr.need_fp
                    if need_int > int_reads or need_fp > fp_reads:
                        retry.append(item)
                        continue
                elif not regfile.can_read(instr):
                    retry.append(item)
                    continue
                # Functional unit (checked before allocation so a failed
                # issue-stage allocation does not waste a unit).
                kind = instr.fu_kind
                kind_bit = 1 << kind
                if fu_blocked & kind_bit:
                    # Memoized verdict; keep the per-blocked-instruction
                    # structural-stall diagnostic faithful to a re-scan.
                    fus.structural_stalls[kind] += 1
                    retry.append(item)
                    continue
                unit = fus.find_free(kind, now)
                if unit < 0:
                    fu_blocked |= kind_bit
                    retry.append(item)
                    continue
                if on_issue is not None and not on_issue(instr, now):
                    stats.issue_alloc_blocks += 1
                    retry.append(item)
                    continue
                fus.claim_unit(kind, unit, now, instr.latency, instr.pipelined)
                if regfile is None:
                    int_reads -= need_int
                    fp_reads -= need_fp
                else:
                    regfile.claim_read(instr)
                budget -= 1
                # Launch (inlined): schedule completion / memory access.
                instr.issued = True
                instr.exec_count += 1
                launched += 1
                if instr.first_issue_at < 0:
                    instr.first_issue_at = now
                instr.last_issue_at = now
                if instr.is_load:
                    instr.mem_ready_at = now + 1  # EA ready next cycle
                    heappush(pending_mem, item)
                elif instr.is_store or instr.is_br:
                    complete_push(now + 1, instr)
                else:
                    complete_push(now + instr.latency, instr)
                # Under VP write-back allocation, destination writers stay
                # in the IQ until their completion succeeds (they may be
                # squashed and re-executed); everything else frees its IQ
                # entry at issue.
                if instr.in_iq and not (vp_writeback
                                        and instr.dest_cls is not None):
                    instr.in_iq = False
                    self.iq_count -= 1
            if not heap:
                # Nothing left un-popped: the retries were collected in
                # ascending order, so the sorted list IS a valid heap —
                # the common stall cycle restores without any pushes.
                heap.extend(retry)
            else:
                for item in retry:
                    heappush(heap, item)
            if launched:
                stats.executions += launched

        # ---- rename/dispatch --------------------------------------------
        buffer = self.fetch_buffer
        if buffer:
            budget = cfg.rename_width
            rename = renamer.rename
            can_rename = renamer.can_rename
            on_dispatch = self._on_dispatch
            rob_size = cfg.rob_size
            iq_size = cfg.iq_size
            store_queue = self.mem.store_queue
            ready_at = self.ready_at
            waiters = self.waiters
            ready_heap = self.ready_heap
            while budget and buffer:
                instr = buffer[0]
                if len(rob) >= rob_size:
                    stats.stall_rob_full += 1
                    break
                if self.iq_count >= iq_size:
                    stats.stall_iq_full += 1
                    break
                if instr.is_store and store_queue.full:
                    stats.stall_sq_full += 1
                    break
                if instr.dest_cls is not None and not can_rename(instr.rec):
                    # (Dest-less instructions always pass can_rename; the
                    # call is skipped for them.)
                    stats.stall_no_reg += 1
                    break
                buffer.popleft()
                instr.rename_at = now
                rename(instr)
                if instr.dest_tag != -1:
                    # A fresh name starts a new lifetime: clear readiness.
                    ready_at.pop(instr.dest_tag, None)
                if on_dispatch is not None:
                    on_dispatch(instr)
                rob.append(instr)
                if len(rob) > stats.peak_rob:
                    stats.peak_rob = len(rob)
                instr.in_iq = True
                self.iq_count += 1
                instr.not_before = now + 1
                budget -= 1
                # Wire dependences (inlined).  ``wait_tags`` is exactly
                # the set of register-file reads at issue (a store reads
                # only its base; the value moves at completion), so the
                # per-class read-port needs are counted here once.
                tags = instr.src_tags
                if instr.is_store:
                    store_queue.insert(instr.seq)
                    wait_tags = tags[:1]
                    value_tag = tags[1]
                    if ready_at.get(value_tag, _FAR_FUTURE) <= now:
                        instr.data_ready_at = now
                        store_queue.set_data_ready(instr.seq, now)
                    else:
                        self.data_waiters[value_tag].append(instr)
                else:
                    wait_tags = tags
                need_int = need_fp = 0
                waiting = 0
                for tag in wait_tags:
                    if tag >> TAG_CLASS_SHIFT:
                        need_fp += 1
                    else:
                        need_int += 1
                    if ready_at.get(tag, _FAR_FUTURE) > now:
                        waiters[tag].append(instr)
                        waiting += 1
                instr.need_int = need_int
                instr.need_fp = need_fp
                instr.wait_count = waiting
                if waiting == 0:
                    heappush(ready_heap, instr.heap_item)

        # ---- fetch -------------------------------------------------------
        if not self._exhausted or self._replay:
            if now < self.fetch_resume_at:
                stats.fetch_stall_cycles += 1
            else:
                budget = cfg.fetch_width
                room = cfg.fetch_buffer_size - len(buffer)
                if room < budget:
                    budget = room  # the buffer only grows inside this loop
                replay = self._replay
                perfect = cfg.perfect_branch_prediction
                # Inlined BHT predict: counter top bit decides direction.
                bht_counters = self.bht._counters
                bht_mask = self.bht._mask
                trace = self._trace
                seq = self._next_seq
                first_seq = seq
                while budget:
                    if replay:
                        rec = replay.popleft()
                    else:
                        rec = next(trace, None)
                        if rec is None:
                            self._exhausted = True
                            break
                    instr = DynInstr(rec, seq)
                    seq += 1
                    instr.fetch_at = now
                    buffer.append(instr)
                    budget -= 1
                    if instr.is_br:
                        predicted_taken = (
                            rec.taken if perfect
                            else bht_counters[(rec.pc >> 2) & bht_mask] >= 2)
                        if predicted_taken != rec.taken:
                            # Trace-driven wrong-path model: stop fetching
                            # until the branch resolves (resolution sets
                            # the resume cycle).
                            instr.mispredicted = True
                            self.fetch_resume_at = _FAR_FUTURE
                            break
                        if predicted_taken:
                            break  # predicted-taken ends the fetch group
                self._next_seq = seq
                stats.fetched += seq - first_seq

        # ---- occupancy integrals + cycle advance ------------------------
        int_free = self._int_free
        if int_free is not None:
            stats.int_reg_occupancy_sum += self._npr_int - len(int_free)
            stats.fp_reg_occupancy_sum += self._npr_fp - len(self._fp_free)
        else:
            stats.int_reg_occupancy_sum += renamer.allocated_physical(
                RegClass.INT)
            stats.fp_reg_occupancy_sum += renamer.allocated_physical(
                RegClass.FP)
        if self._idle_skip and not self.ready_heap:
            self.now = self._advance(now)
        else:
            self.now = now + 1

    def _advance(self, now):
        """The next cycle to simulate: ``now + 1``, or the next scheduled
        event when every intermediate cycle is provably a no-op.  Callers
        guarantee the idle skip is enabled and the ready set is empty."""
        nxt = now + 1
        if (self._exhausted and not self.fetch_buffer and not self.rob
                and not self._replay):
            return nxt  # drained: the run loop exits at the current cycle
        # A load past EA computation retries the cache every cycle; one
        # still waiting for its EA bounds the jump.
        next_mem = None
        for _, instr in self.pending_mem:
            if instr.squashed:
                continue
            t = instr.mem_ready_at
            if t <= now:
                return nxt
            if next_mem is None or t < next_mem:
                next_mem = t
        rob = self.rob
        commit_bound = None
        if rob:
            head = rob[0]
            if head.completed:
                commit_bound = head.completed_at + 1 + self._commit_extra
                if commit_bound <= now:
                    return nxt  # a commit is due (or port-blocked): step
        cfg = self.config
        buffer = self.fetch_buffer
        fetch_dead = self._exhausted and not self._replay
        fetch_bound = None
        if not fetch_dead and len(buffer) < cfg.fetch_buffer_size:
            if self.fetch_resume_at <= nxt:
                return nxt  # fetch runs next cycle
            fetch_bound = self.fetch_resume_at
        stall_attr = None
        if buffer:
            head = buffer[0]
            if len(rob) >= cfg.rob_size:
                stall_attr = "stall_rob_full"
            elif self.iq_count >= cfg.iq_size:
                stall_attr = "stall_iq_full"
            elif head.is_store and self.mem.store_queue.full:
                stall_attr = "stall_sq_full"
            elif head.dest_cls is None:
                return nxt  # dest-less: rename always proceeds
            elif self._rename_gate is not None:
                if self._rename_gate[head.dest_cls].free_count:
                    return nxt  # rename makes progress next cycle
                stall_attr = "stall_no_reg"
            elif self.renamer.can_rename(head.rec):
                return nxt  # rename makes progress next cycle
            else:
                stall_attr = "stall_no_reg"
        bounds = [
            t for t in (self.complete_at.next_time(),
                        next_mem, commit_bound, fetch_bound)
            if t is not None
        ]
        horizon_bound = self._last_commit_cycle + cfg.deadlock_horizon + 1
        target = min(min(bounds), horizon_bound) if bounds else horizon_bound
        if target <= nxt:
            return nxt
        # Bulk-account the counters the skipped no-op cycles would have
        # incremented, exactly as the spin would.
        skipped = target - nxt
        stats = self.stats
        renamer = self.renamer
        stats.int_reg_occupancy_sum += (
            skipped * renamer.allocated_physical(RegClass.INT))
        stats.fp_reg_occupancy_sum += (
            skipped * renamer.allocated_physical(RegClass.FP))
        if not fetch_dead:
            stalled = min(target - 1, self.fetch_resume_at - 1) - now
            if stalled > 0:
                stats.fetch_stall_cycles += stalled
        if stall_attr is not None:
            setattr(stats, stall_attr, getattr(stats, stall_attr) + skipped)
        self.idle_skips += 1
        self.idle_cycles_skipped += skipped
        return target

    # -- event helpers --------------------------------------------------------

    def _fire_stores(self, stores, now):
        """Deliver a fired tag's value to stores waiting on their data."""
        for store in stores:
            if store.squashed:
                continue
            store.data_ready_at = now
            self.mem.store_queue.set_data_ready(store.seq, now)
            if store.mem_ready_at >= 0 and not store.completed:
                store.completed = True
                store.completed_at = now

    # -- precise-exception recovery ---------------------------------------------

    def _recover_from_fault(self, offender, now):
        """Flush everything younger than ``offender`` and replay it.

        Implements the paper's §3.2.2 recovery: the reorder buffer is
        popped from the newest entry down to the offending one, each
        pop undoing the rename mapping (the renamer's ``rollback``);
        the flushed dynamic instructions re-enter through fetch.
        """
        rob = self.rob
        assert rob and rob[0] is offender, "faults are detected at the head"
        younger = list(rob)[1:]
        while len(rob) > 1:
            rob.pop()
        # Rename-state rollback wants youngest first.
        self.renamer.rollback(list(reversed(younger)))
        freed_iq = 0
        for instr in younger:
            instr.squashed = True
            if instr.in_iq:
                instr.in_iq = False
                freed_iq += 1
        self.iq_count -= freed_iq
        # Store-queue entries of flushed stores disappear.
        self.mem.store_queue.remove_younger_than(offender.seq)
        # Loads waiting on the memory system are dropped (their MSHRs, if
        # any, simply fill unused — as in real lockup-free caches).
        alive = [e for e in self.pending_mem if not e[1].squashed]
        heapify(alive)
        self.pending_mem = alive
        self._mshr_gated = [g for g in self._mshr_gated if not g.squashed]
        # Replay in program order: the flushed window, then the
        # un-renamed fetch buffer, then anything an *earlier* fault left
        # queued (everything flushed now is older than those records).
        flushed = [instr.rec for instr in younger]
        flushed.extend(instr.rec for instr in self.fetch_buffer)
        self.fetch_buffer.clear()
        self._replay.extendleft(reversed(flushed))
        # Fetch restarts after the exception is handled.
        self.fetch_resume_at = now + 1
        self.stats.faults += 1

    # -- final bookkeeping -----------------------------------------------------

    def _harvest_stats(self):
        cache = self.mem.cache
        self.stats.loads = cache.loads
        self.stats.load_misses = cache.load_misses
        self.stats.stores = cache.stores
        self.stats.store_forwards = self.mem.store_queue.forwards
        if self.regfile is not None:
            self.stats.rf_read_stalls = self.regfile.read_stalls
            self.stats.rf_bank_conflicts = self.regfile.bank_conflicts


def simulate(config=None, trace=None, workload=None,
             max_instructions=30_000, skip=2_000, seed=1234):
    """One-call simulation entry point.

    Provide either a ``trace`` (any iterable of
    :class:`~repro.isa.instruction.TraceRecord`) or a ``workload`` (a
    benchmark name from :data:`repro.trace.WORKLOADS` or a
    :class:`~repro.trace.Workload` instance).
    """
    from repro.trace.generator import SyntheticTrace
    from repro.trace.program import Workload
    from repro.trace.workloads import load_workload

    if (trace is None) == (workload is None):
        raise ValueError("provide exactly one of trace= or workload=")
    name = ""
    if workload is not None:
        if isinstance(workload, str):
            name = workload
            workload = load_workload(workload)
            if max_instructions is not None:
                # Registry workloads are uniquely named, so repeated
                # runs of the same (workload, seed) point share one
                # materialized record list (see trace.generator).
                from repro.trace.generator import materialized_trace

                trace = materialized_trace(
                    workload, seed, skip + max_instructions)
            else:
                trace = SyntheticTrace(workload, seed)
        elif isinstance(workload, Workload):
            name = workload.name
            trace = SyntheticTrace(workload, seed)
        else:
            raise TypeError("workload must be a name or a Workload")
    processor = Processor(config or ProcessorConfig())
    result = processor.run(trace, max_instructions=max_instructions, skip=skip)
    result.workload = name
    result.seed = seed
    return result
