"""Processor configuration.

``ProcessorConfig()`` with no arguments is the paper's §4.1 machine:
8-wide fetch/commit, 128-entry reorder buffer, 64 physical registers per
file, the Table 1 functional units, a 2048-entry BHT, three cache ports,
and the 16 KB lockup-free L1 with a 50-cycle miss penalty.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from enum import Enum

from repro.core.policy import AllocationStage, policy_name_for, resolve_policy
from repro.isa.opcodes import DEFAULT_FU_COUNTS, FUKind
from repro.isa.registers import NUM_LOGICAL_FP, NUM_LOGICAL_INT
from repro.memory.cache import CacheConfig


class RenamingScheme(Enum):
    """Which renamer family drives the pipeline.

    The enum values double as the ``scheme`` strings of the policy
    registry (:mod:`repro.core.policy`); a ``(scheme, allocation)`` pair
    names exactly one registered policy (``ProcessorConfig.policy``).
    """

    CONVENTIONAL = "conventional"
    VIRTUAL_PHYSICAL = "virtual-physical"
    EARLY_RELEASE = "early-release"


@dataclass(frozen=True, slots=True)
class ProcessorConfig:
    """All knobs of the simulated machine (defaults = the paper's §4.1).

    Slotted: the cycle engine reads these fields in its per-cycle hot
    loop, and slot access skips the instance-dict lookup.
    """

    # Widths.
    fetch_width: int = 8
    rename_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    # Window.
    rob_size: int = 128
    iq_size: int = 128
    fetch_buffer_size: int = 16
    # Register files.
    int_phys: int = 64
    fp_phys: int = 64
    nlr_int: int = NUM_LOGICAL_INT
    nlr_fp: int = NUM_LOGICAL_FP
    read_ports: int = 16
    write_ports: int = 8
    # Register-file port/bank contention model (uarch/regfile.py) — off
    # by default: the engine then runs the legacy fixed per-class port
    # checks and golden SimStats stay bit-identical.  With rf_model on,
    # issue and write-back arbitrate through RegisterFilePorts:
    # per-class budgets (rf_read_ports/rf_write_ports, None = reuse the
    # legacy budgets above) and, when rf_banks > 1, per-bank port limits
    # with conflict stalls.
    rf_model: bool = False
    rf_read_ports: int | None = None
    rf_write_ports: int | None = None
    rf_banks: int = 1
    rf_bank_read_ports: int = 1
    rf_bank_write_ports: int = 1
    # Renaming.
    scheme: RenamingScheme = RenamingScheme.CONVENTIONAL
    allocation: AllocationStage = AllocationStage.WRITEBACK
    nrr_int: int = 32
    nrr_fp: int = 32
    # Paper-faithful write-back allocation lets squashed instructions
    # re-execute freely ("re-executions usually spend resources that
    # otherwise would be unused", §4.2.1, 3.3 executions per commit).
    # Setting retry_gating=True holds a squashed instruction in the
    # issue queue until the NRR rule could admit its allocation — an
    # engineering improvement evaluated as an ablation, not the default.
    retry_gating: bool = False
    # Functional units (Table 1).
    fu_counts: dict = field(default_factory=lambda: dict(DEFAULT_FU_COUNTS))
    # Memory.
    cache: CacheConfig = field(default_factory=CacheConfig)
    cache_ports: int = 3
    store_queue_size: int | None = None
    # Branch prediction.
    bht_entries: int = 2048
    # Oracle prediction (isolates renaming effects from control flow in
    # ablations; the paper's machine always uses the BHT).
    perfect_branch_prediction: bool = False
    # Safety net: abort if nothing commits for this many cycles.
    deadlock_horizon: int = 200_000
    # Engine tier (execution strategy, not machine identity): "interp"
    # runs the interpreter hot loop, "compiled" the per-config generated
    # loop (uarch/compiled.py), "native" the C-compiled loop
    # (uarch/native; falls back native -> compiled -> interp on any
    # build failure, loudly via SimStats.engine_fallbacks), "auto"
    # defers to REPRO_ENGINE (default interp).  All tiers are
    # bit-identical by contract, so the field is excluded from key() —
    # results cache across tiers.
    engine: str = "auto"

    def __post_init__(self):
        if self.engine not in ("auto", "interp", "compiled", "native"):
            raise ValueError(
                f"engine={self.engine!r}; choose auto, interp, compiled "
                "or native")
        if min(self.fetch_width, self.rename_width, self.issue_width,
               self.commit_width) < 1:
            raise ValueError("pipeline widths must be at least 1")
        if self.rob_size < 1 or self.iq_size < 1:
            raise ValueError("window structures need at least one entry")
        if self.rf_model:
            # An instruction reads at most two registers of one class
            # per issue, so two read ports (per class; per bank when
            # banked) is the narrowest deadlock-free file — below that
            # a two-source instruction can never issue and the machine
            # livelocks on the ROB head.
            effective_reads = (self.rf_read_ports
                               if self.rf_read_ports is not None
                               else self.read_ports)
            if effective_reads < 2:
                raise ValueError(
                    f"rf_read_ports={effective_reads} deadlocks: an "
                    "instruction may read two registers of one class, "
                    "so the model needs at least 2 read ports")
            if self.rf_write_ports is not None and self.rf_write_ports < 1:
                raise ValueError("rf_write_ports must be >= 1")
            if self.rf_banks < 1:
                raise ValueError("rf_banks must be >= 1")
            if self.rf_banks > 1 and self.rf_bank_read_ports < 2:
                raise ValueError(
                    "rf_bank_read_ports must be >= 2 when banked (two "
                    "sources of one instruction may map to one bank)")
            if self.rf_bank_write_ports < 1:
                raise ValueError("rf_bank_write_ports must be >= 1")
        if self.scheme is RenamingScheme.VIRTUAL_PHYSICAL:
            for nrr, npr, nlr, label in (
                (self.nrr_int, self.int_phys, self.nlr_int, "int"),
                (self.nrr_fp, self.fp_phys, self.nlr_fp, "fp"),
            ):
                if not 1 <= nrr <= npr - nlr:
                    raise ValueError(
                        f"NRR({label})={nrr} outside 1..{npr - nlr}"
                    )

    @property
    def policy(self):
        """The registry name of the policy this configuration selects
        (e.g. ``"conventional"``, ``"vp-writeback"``)."""
        return policy_name_for(self.scheme.value, self.allocation)

    def build_renamer(self):
        """Instantiate the renaming policy this configuration selects,
        resolved through the policy registry."""
        return resolve_policy(self.policy).build(self)

    def port_model(self):
        """The effective register-file port configuration, as a flat
        JSON-compatible dict — recorded per point by ``repro bench`` so
        port-enabled baselines can't be confused with port-free ones."""
        return {
            "model": self.rf_model,
            "read_ports": (self.rf_read_ports
                           if self.rf_read_ports is not None
                           else self.read_ports),
            "write_ports": (self.rf_write_ports
                            if self.rf_write_ports is not None
                            else self.write_ports),
            "banks": self.rf_banks,
            "bank_read_ports": self.rf_bank_read_ports,
            "bank_write_ports": self.rf_bank_write_ports,
        }

    def with_(self, **changes):
        """A modified copy (sugar over :func:`dataclasses.replace`)."""
        return replace(self, **changes)

    def to_dict(self):
        """Canonical JSON-compatible form (enums by name, nested configs
        as dicts).  Round-trips through :meth:`from_dict`."""
        d = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "fu_counts":
                value = {FUKind(k).name: v for k, v in value.items()}
            elif f.name == "cache":
                value = {cf.name: getattr(value, cf.name)
                         for cf in fields(CacheConfig)}
            elif isinstance(value, Enum):
                value = value.value
            d[f.name] = value
        # Derived, self-describing extra: the registry name the enum
        # fields resolve to (from_dict accepts it in place of them).
        d["policy"] = self.policy
        return d

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict` (ignores unknown keys).

        Accepts a ``"policy"`` registry name in place of the
        ``scheme``/``allocation`` pair, so hand-written configs can say
        ``{"policy": "vp-issue"}``; explicit ``scheme``/``allocation``
        keys win when both are present.
        """
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        if "policy" in data:
            info = resolve_policy(data["policy"])
            kwargs.setdefault("scheme", info.scheme)
            if info.allocation is not None:
                kwargs.setdefault("allocation", info.allocation.value)
        if "scheme" in kwargs:
            kwargs["scheme"] = RenamingScheme(kwargs["scheme"])
        if "allocation" in kwargs:
            kwargs["allocation"] = AllocationStage(kwargs["allocation"])
        if "fu_counts" in kwargs:
            kwargs["fu_counts"] = {
                FUKind[k]: v for k, v in kwargs["fu_counts"].items()
            }
        if "cache" in kwargs and isinstance(kwargs["cache"], dict):
            cache_known = {f.name for f in fields(CacheConfig)}
            kwargs["cache"] = CacheConfig(**{
                k: v for k, v in kwargs["cache"].items() if k in cache_known
            })
        return cls(**kwargs)

    def key(self):
        """Stable content-hash identity of this configuration.

        Unlike ``repr()``, the hash is insensitive to dict ordering and
        identical across processes and interpreter runs, so it can key a
        persistent result store.  The ``engine`` field is excluded: the
        tiers are bit-identical by contract, so the same machine run on
        either engine is the same result.
        """
        d = self.to_dict()
        d.pop("engine", None)
        canon = json.dumps(d, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


def conventional_config(**changes):
    """The paper's baseline machine."""
    return ProcessorConfig(scheme=RenamingScheme.CONVENTIONAL).with_(**changes)


def virtual_physical_config(nrr=32, allocation=AllocationStage.WRITEBACK, **changes):
    """The paper's proposed machine (defaults: write-back allocation, NRR=32).

    ``changes`` are applied in the same construction (not afterwards), so
    a config like ``nrr=64, int_phys=96`` validates against the final
    register count rather than the default one.
    """
    fields = dict(
        scheme=RenamingScheme.VIRTUAL_PHYSICAL,
        allocation=allocation,
        nrr_int=nrr,
        nrr_fp=nrr,
    )
    fields.update(changes)
    return ProcessorConfig(**fields)


def policy_config(policy, *, nrr=None, **changes):
    """A :class:`ProcessorConfig` for a registry policy name.

    The one construction path every entry layer (CLI, experiments,
    benchmarks, examples) shares: ``policy_config("vp-issue", nrr=8)``
    is the registry-driven spelling of
    ``virtual_physical_config(nrr=8, allocation=AllocationStage.ISSUE)``.
    ``nrr`` applies only to policies that use the NRR knob (it is an
    error to pass it to one that doesn't); ``changes`` are arbitrary
    config-field overrides applied in the same construction.
    """
    info = resolve_policy(policy)
    if not info.uses_nrr:
        if nrr is not None:
            raise ValueError(f"policy {policy!r} does not take an NRR value")
        return ProcessorConfig(
            scheme=RenamingScheme(info.scheme)).with_(**changes)
    return virtual_physical_config(
        nrr=32 if nrr is None else nrr,
        allocation=info.allocation, **changes)
