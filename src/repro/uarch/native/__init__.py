"""The native engine tier: C codegen + an on-disk artifact cache.

The compiled tier (``repro.uarch.compiled``) removed the per-cycle
Python overhead it could — re-hoisted state, configuration-dead
branches — but the residual cost is CPython bytecode dispatch itself.
This package lowers the same per-``ProcessorConfig`` specialization to
C99: a ``#define`` header rendered per feature vector is prepended to
``engine_template.c`` (one translation unit), compiled once with the
system toolchain (``cc -O2 -shared -fPIC``; ``REPRO_CC`` overrides the
probe order), and loaded through :mod:`ctypes`.  The trace is marshalled
once into flat ``array``-module buffers, the whole run executes in
native code, and a flat counter block is mapped back onto ``SimStats``
— the contract is **bit-identical** statistics with the interpreter,
enforced by the same differential stack as the compiled tier
(``tools/engine_diff.py``, golden replays, the chaos differential).

Shared objects are cached under ``REPRO_CACHE_DIR/native/`` keyed by
``sha256(header + template)`` so sweeps and pool workers compile each
specialization at most once per machine; the file name also embeds a
template fingerprint so stale artifacts from an older code version are
recognizable (``repro cache stats`` flags them, ``repro cache compact``
prunes them).  A cross-process ``flock`` serializes concurrent builds
of the same artifact.

Everything degrades loudly but gracefully: no toolchain, a failed
compile, an unspecializable processor, or a trace shape the C loop does
not model falls back to the compiled tier (then the interpreter), with
the reason recorded in :data:`build_failures` and the fallback counted
in ``SimStats.engine_fallbacks``.

Known limitation: after a native run the renamer's *map-table and
free-list contents* are not synced back (only their statistics
counters are) — post-run code that inspects rename state should use
the interpreted or compiled tiers.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from array import array
from contextlib import contextmanager
from pathlib import Path

from repro.isa.opcodes import FUKind, OP_DECODE
from repro.isa.registers import RegClass
from repro.uarch import compiled as _compiled

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX host
    fcntl = None

#: build/marshal failures by reason (diagnostics; reset per process).
build_failures: dict[str, int] = {}

#: in-process cache of loaded shared objects, keyed by artifact name.
_LIB_CACHE: dict[str, object] = {}

_TOOLCHAIN_UNSET = object()
_toolchain = _TOOLCHAIN_UNSET

_TEMPLATE_PATH = Path(__file__).with_name("engine_template.c")
_template_cache = None

#: The flat counter block the C loop fills, in slot order.  This tuple
#: is the single source of truth: it generates the ``K_*`` defines in
#: the rendered header, and the sync-back indexes counters by it.
_COUNTER_NAMES = (
    "now", "exhausted", "committed", "fetched", "executions", "squashes",
    "issue_alloc_blocks", "branches", "mispredicts", "stall_rob_full",
    "stall_iq_full", "stall_no_reg", "stall_sq_full", "fetch_stall_cycles",
    "wb_port_defers", "int_reg_occupancy_sum", "fp_reg_occupancy_sum",
    "peak_rob", "iq_count", "fetch_resume_at", "next_seq", "last_commit",
    "idle_skips", "idle_cycles_skipped", "cache_loads", "cache_load_misses",
    "cache_stores", "cache_store_misses", "cache_mshr_stalls",
    "sq_forwards", "sq_waits", "port_conflicts", "mshr_allocations",
    "mshr_merges", "mshr_rejections", "bus_transfers", "bus_busy_cycles",
    "bus_free_at", "rf_read_stalls", "rf_bank_conflicts",
    "ren_decode_stalls", "ren_vp_stalls", "ren_squashes",
    "ren_issue_blocks", "fl_int_allocs", "fl_int_min_free", "fl_fp_allocs",
    "fl_fp_min_free", "vp_int_allocs", "vp_int_min_free", "vp_fp_allocs",
    "vp_fp_min_free",
    "fu_issues_0", "fu_issues_1", "fu_issues_2", "fu_issues_3",
    "fu_issues_4", "fu_issues_5",
    "fu_stalls_0", "fu_stalls_1", "fu_stalls_2", "fu_stalls_3",
    "fu_stalls_4", "fu_stalls_5",
    "deadlock_head",
)
_K = {name: i for i, name in enumerate(_COUNTER_NAMES)}
N_COUNTERS = len(_COUNTER_NAMES)

_PROBE_SOURCE = "int repro_probe(void) { return 42; }\n"


def _note_failure(reason):
    build_failures[reason] = build_failures.get(reason, 0) + 1


def _template_text():
    global _template_cache
    if _template_cache is None:
        _template_cache = _TEMPLATE_PATH.read_text(encoding="utf-8")
    return _template_cache


def template_fingerprint():
    """Short hash of the C template; embedded in artifact file names so
    artifacts from an older template are recognizable as stale."""
    text = _template_text().encode("utf-8")
    return hashlib.sha256(text).hexdigest()[:8]


def _try_compiler(cc):
    """Probe-compile a trivial shared object with ``cc``."""
    with tempfile.TemporaryDirectory(prefix="repro-cc-") as tmp:
        src = os.path.join(tmp, "probe.c")
        out = os.path.join(tmp, "probe.so")
        with open(src, "w", encoding="utf-8") as fh:
            fh.write(_PROBE_SOURCE)
        try:
            result = subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", "-o", out, src],
                capture_output=True, timeout=60)
        except (OSError, subprocess.TimeoutExpired):
            return False
        return result.returncode == 0 and os.path.exists(out)


def toolchain():
    """The working C compiler for this host, or ``None``.

    Probed once per process: ``$REPRO_CC`` first (if set, *only* it —
    an explicit override should fail loudly, not silently fall back to
    another compiler), then ``cc``, ``gcc``, ``clang``.
    """
    global _toolchain
    if _toolchain is _TOOLCHAIN_UNSET:
        override = os.environ.get("REPRO_CC", "").strip()
        candidates = [override] if override else ["cc", "gcc", "clang"]
        _toolchain = next((cc for cc in candidates if _try_compiler(cc)),
                          None)
    return _toolchain


def clear_cache():
    """Drop the in-process library cache and failure counters (tests).

    The on-disk artifacts and the toolchain probe are *not* reset —
    they are host properties, not run state.
    """
    _LIB_CACHE.clear()
    build_failures.clear()


def cache_info():
    """Diagnostics mirroring :func:`repro.uarch.compiled.cache_info`."""
    return {
        "loaded_libraries": len(_LIB_CACHE),
        "build_failures": dict(build_failures),
    }


def artifact_dir():
    """Where compiled shared objects live: ``REPRO_CACHE_DIR/native``."""
    from repro.engine.store import default_cache_dir

    return Path(default_cache_dir()) / "native"


# -- feature gating ----------------------------------------------------------


def native_features(processor):
    """``((flags, consts), None)`` or ``(None, reason)``.

    The native tier supports exactly the fully-inlined specializations:
    the compiled tier must be able to specialize the processor *and*
    every subsystem hook must be inlinable (no instance-level
    monkeypatching anywhere the C loop bypasses).
    """
    features = _compiled.engine_features(processor)
    if features is None:
        return None, "unsupported-policy"
    flags, _ = features
    if not (flags["INLINE_RENAME"] and flags["FU_INLINE"]
            and flags["BHT_INLINE"] and flags["POOLS"] and flags["GATE"]):
        return None, "unsupported-policy"
    if flags["VP_INLINE"]:
        if not flags["DISPATCH_HOOK"]:
            return None, "unsupported-policy"
        if flags["VP_WB"] != flags["COMPLETE_HOOK"]:
            return None, "unsupported-policy"
    elif (flags["COMPLETE_HOOK"] or flags["ISSUE_HOOK"]
            or flags["DISPATCH_HOOK"] or flags["VP_WB"] or flags["RETRY"]):
        return None, "unsupported-policy"
    return features, None


def _pristine(processor):
    """The C loop assumes reset machine state (identity rename maps,
    full free pools, cycle zero); refuse anything pre-mutated."""
    p = processor
    if (p.now != 0 or p._next_seq != 0 or p.rob or p.fetch_buffer
            or p.pending_mem or p._replay or p.stats.committed
            or p.stats.cycles):
        return False
    pools = [p.renamer.phys_pools()[cls] for cls in (RegClass.INT,
                                                     RegClass.FP)]
    gate = p.renamer.rename_gate_pools()
    if gate is not None:
        pools.extend(gate[cls] for cls in (RegClass.INT, RegClass.FP))
    return all(fl.allocations == 0 and fl.free_count == fl.capacity
               for fl in pools)


# -- header rendering --------------------------------------------------------


def _c_int(value):
    value = int(value)
    if -(2 ** 31) < value < 2 ** 31:
        return str(value)
    return f"INT64_C({value})"


def render_header(processor, flags, consts):
    """The ``#define`` header completing ``engine_template.c`` into one
    self-contained translation unit for this processor's feature
    vector."""
    cfg = processor.config
    ren = processor.renamer
    INT, FP = RegClass.INT, RegClass.FP
    vp = flags["VP_INLINE"]

    lines = ["/* generated by repro.uarch.native - do not edit */"]
    define = lambda name, value: lines.append(f"#define {name} {value}")

    define("F_RF", int(flags["RF"]))
    define("F_COMPLETE", int(flags["COMPLETE_HOOK"]))
    define("F_ISSUE", int(flags["ISSUE_HOOK"]))
    define("F_VP_WB", int(flags["VP_WB"]))
    define("F_RETRY", int(flags["RETRY"]))
    define("F_IDLE", int(flags["IDLE"]))
    define("F_PERFECT", int(flags["PERFECT"]))
    define("F_VP", int(vp))
    define("F_CONV", int(flags["CONV"]))

    for name in ("FETCH_W", "RENAME_W", "ISSUE_W", "COMMIT_W", "ROB_SIZE",
                 "IQ_SIZE", "FB_SIZE", "READ_PORTS", "WRITE_PORTS",
                 "COMMIT_DELAY", "HORIZON", "CLASS_SHIFT", "INDEX_MASK"):
        define(name, _c_int(consts[name]))
    define("FAR_FUTURE", _c_int(consts["FAR_FUTURE"]))

    nlr = {c: ren.nlr[c] for c in (INT, FP)}
    npr = {c: ren.npr[c] for c in (INT, FP)}
    nvr = {c: ren.nvr[c] for c in (INT, FP)} if vp else dict(npr)
    if vp:
        nrr = {c: ren._reserve_by_cls[c].nrr for c in (INT, FP)}
    else:
        nrr = {INT: 0, FP: 0}
    define("NLR_INT", nlr[INT])
    define("NLR_FP", nlr[FP])
    define("NPR_INT", npr[INT])
    define("NPR_FP", npr[FP])
    define("NVR_INT", nvr[INT])
    define("NVR_FP", nvr[FP])
    define("NRR_INT", nrr[INT])
    define("NRR_FP", nrr[FP])
    define("MAX_IDENT", max(npr[INT], npr[FP], nvr[INT], nvr[FP]))
    define("SQ_CAP", cfg.store_queue_size or 0)

    ccfg = processor.mem.cache.config
    define("NUM_LINES", ccfg.num_lines)
    define("LINE_BYTES", ccfg.line_bytes)
    define("HIT_LAT", ccfg.hit_latency)
    define("MISS_PEN", ccfg.miss_penalty)
    define("MSHR_N", ccfg.mshr_entries)
    define("BUS_CPL", ccfg.bus_cycles_per_line)
    define("CACHE_PORTS", cfg.cache_ports)
    define("BHT_MASK", processor.bht._mask)

    if flags["RF"]:
        rf = processor.regfile
        define("RF_RP", rf.read_ports)
        define("RF_WP", rf.write_ports)
        define("RF_BANKS", rf.banks)
        define("RF_BANK_RP", rf.bank_read_ports)
        define("RF_BANK_WP", rf.bank_write_ports)
    else:
        define("RF_BANKS", 1)

    fu_n = [len(processor.fus._busy_until[kind]) for kind in FUKind]
    define("FU_MAX", max(fu_n))
    define("FU_N_INIT", "{" + ", ".join(map(str, fu_n)) + "}")

    define("N_OPS", len(OP_DECODE))
    cols = {"OP_DEST_INIT": [], "OP_LOAD_INIT": [], "OP_STORE_INIT": [],
            "OP_BR_INIT": [], "OP_FU_INIT": [], "OP_LAT_INIT": [],
            "OP_PIPE_INIT": []}
    for dcls, is_load, is_store, is_br, fu_kind, latency, pipelined \
            in OP_DECODE:
        cols["OP_DEST_INIT"].append(-1 if dcls is None else int(dcls))
        cols["OP_LOAD_INIT"].append(int(is_load))
        cols["OP_STORE_INIT"].append(int(is_store))
        cols["OP_BR_INIT"].append(int(is_br))
        cols["OP_FU_INIT"].append(int(fu_kind))
        cols["OP_LAT_INIT"].append(int(latency))
        cols["OP_PIPE_INIT"].append(int(pipelined))
    for name, values in cols.items():
        define(name, "{" + ", ".join(map(str, values)) + "}")

    for i, name in enumerate(_COUNTER_NAMES):
        define(f"K_{name.upper()}", i)
    define("N_COUNTERS", N_COUNTERS)
    return "\n".join(lines) + "\n"


def native_key(processor):
    """Stable identity of the artifact a processor would compile, or
    ``None`` when it cannot run natively.  Hashes the *rendered* header
    plus the template text, so any semantic change to either produces a
    new artifact."""
    features, _ = native_features(processor)
    if features is None:
        return None
    header = render_header(processor, *features)
    blob = (header + _template_text()).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


# -- artifact build + load ---------------------------------------------------


@contextmanager
def _build_lock(directory):
    """Cross-process exclusive lock serializing artifact builds."""
    if fcntl is None:  # pragma: no cover - non-POSIX host
        yield
        return
    with open(directory / ".lock", "w") as lockf:
        fcntl.flock(lockf, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(lockf, fcntl.LOCK_UN)


def _declare(lib):
    lib.repro_run.restype = ctypes.c_int64
    lib.repro_run.argtypes = [ctypes.c_int64] + [ctypes.c_void_p] * 10
    return lib


def build_library(processor):
    """``(loaded library, None)`` or ``(None, failure reason)``.

    Cache ladder: in-process loaded library -> on-disk shared object ->
    compile (under the cross-process build lock, with an atomic rename
    so readers never see a partial artifact).
    """
    features, reason = native_features(processor)
    if features is None:
        _note_failure(reason)
        return None, reason
    cc = toolchain()
    if cc is None:
        _note_failure("no-toolchain")
        return None, "no-toolchain"
    header = render_header(processor, *features)
    template = _template_text()
    key = hashlib.sha256((header + template).encode("utf-8")) \
        .hexdigest()[:16]
    name = f"engine-{template_fingerprint()}-{key}.so"
    lib = _LIB_CACHE.get(name)
    if lib is not None:
        return lib, None
    directory = artifact_dir()
    so_path = directory / name
    if not so_path.exists():
        try:
            directory.mkdir(parents=True, exist_ok=True)
        except OSError:
            _note_failure("cache-dir-unwritable")
            return None, "cache-dir-unwritable"
        with _build_lock(directory):
            if not so_path.exists():  # a peer may have built it meanwhile
                src_path = directory / f"{name[:-3]}.c"
                tmp_path = directory / f".{name}.tmp-{os.getpid()}"
                try:
                    src_path.write_text(header + template,
                                        encoding="utf-8")
                    result = subprocess.run(
                        [cc, "-O2", "-shared", "-fPIC",
                         "-o", str(tmp_path), str(src_path)],
                        capture_output=True, timeout=300)
                    if result.returncode != 0:
                        _note_failure("compile-error")
                        return None, "compile-error"
                    os.replace(tmp_path, so_path)
                except (OSError, subprocess.TimeoutExpired):
                    _note_failure("compile-error")
                    return None, "compile-error"
                finally:
                    for leftover in (tmp_path, src_path):
                        try:
                            leftover.unlink()
                        except OSError:
                            pass
    try:
        # PyDLL, not CDLL: the GIL stays held during the call, so the
        # file-scope statics in the C loop need no further locking.
        lib = _declare(ctypes.PyDLL(str(so_path)))
    except OSError:
        _note_failure("load-error")
        return None, "load-error"
    _LIB_CACHE[name] = lib
    return lib, None


# -- marshalling + execution -------------------------------------------------


def _marshal(records):
    """Flat per-field buffers for the C loop, or ``(None, reason)``."""
    n = len(records)
    pc = array("q", bytes(8 * n))
    op = array("i", bytes(4 * n))
    dest = array("i", bytes(4 * n))
    src1 = array("i", bytes(4 * n))
    src2 = array("i", bytes(4 * n))
    addr = array("q", bytes(8 * n))
    taken = array("b", bytes(n))
    for i, rec in enumerate(records):
        o = int(rec.op)
        op[i] = o
        pc[i] = rec.pc
        dest[i] = rec.dest
        src1[i] = rec.src1
        src2[i] = rec.src2
        addr[i] = rec.addr
        taken[i] = 1 if rec.taken else 0
        if OP_DECODE[o][2] and (rec.src1 < 0 or rec.src2 < 0):
            # A store's value tag is src_tags[1]; the Python tiers
            # crash on a store missing a source, the C loop cannot.
            return None, "store-missing-src"
    return (pc, op, dest, src1, src2, addr, taken), None


def _ptr(arr):
    return ctypes.c_void_p(arr.buffer_info()[0])


def _sync(processor, c, tags_arr, bht_arr):
    """Map the flat counter block back onto the live Python objects.

    Mirrors the ``finally`` sync of the compiled tier plus the
    subsystem counters ``_harvest_stats`` reads afterwards.
    """
    p = processor
    K = _K
    st = p.stats
    p.now = c[K["now"]]
    p._exhausted = bool(c[K["exhausted"]])
    p.iq_count = c[K["iq_count"]]
    p.fetch_resume_at = c[K["fetch_resume_at"]]
    p._next_seq = c[K["next_seq"]]
    p._last_commit_cycle = c[K["last_commit"]]
    p.idle_skips = c[K["idle_skips"]]
    p.idle_cycles_skipped = c[K["idle_cycles_skipped"]]
    st.committed = c[K["committed"]]
    st.fetched = c[K["fetched"]]
    st.executions = c[K["executions"]]
    st.squashes = c[K["squashes"]]
    st.issue_alloc_blocks = c[K["issue_alloc_blocks"]]
    st.branches = c[K["branches"]]
    st.mispredicts = c[K["mispredicts"]]
    st.stall_rob_full = c[K["stall_rob_full"]]
    st.stall_iq_full = c[K["stall_iq_full"]]
    st.stall_no_reg = c[K["stall_no_reg"]]
    st.stall_sq_full = c[K["stall_sq_full"]]
    st.fetch_stall_cycles = c[K["fetch_stall_cycles"]]
    st.wb_port_defers = c[K["wb_port_defers"]]
    st.int_reg_occupancy_sum = c[K["int_reg_occupancy_sum"]]
    st.fp_reg_occupancy_sum = c[K["fp_reg_occupancy_sum"]]
    st.peak_rob = c[K["peak_rob"]]

    cache = p.mem.cache
    cache.loads = c[K["cache_loads"]]
    cache.load_misses = c[K["cache_load_misses"]]
    cache.stores = c[K["cache_stores"]]
    cache.store_misses = c[K["cache_store_misses"]]
    cache.mshr_stalls = c[K["cache_mshr_stalls"]]
    cache._tags[:] = tags_arr.tolist()
    cache.mshrs.allocations = c[K["mshr_allocations"]]
    cache.mshrs.merges = c[K["mshr_merges"]]
    cache.mshrs.rejections = c[K["mshr_rejections"]]
    cache.bus.transfers = c[K["bus_transfers"]]
    cache.bus.busy_cycles = c[K["bus_busy_cycles"]]
    cache.bus._free_at = c[K["bus_free_at"]]
    p.mem.port_conflicts = c[K["port_conflicts"]]
    sq = p.mem.store_queue
    sq.forwards = c[K["sq_forwards"]]
    sq.waits = c[K["sq_waits"]]
    p.bht._counters[:] = bht_arr.tolist()

    ren = p.renamer
    if hasattr(ren, "vp_stalls"):
        ren.vp_stalls = c[K["ren_vp_stalls"]]
        ren.squashes = c[K["ren_squashes"]]
        ren.issue_blocks = c[K["ren_issue_blocks"]]
    elif hasattr(ren, "decode_stalls"):
        ren.decode_stalls = c[K["ren_decode_stalls"]]
    pools = ren.phys_pools()
    for cls, prefix in ((RegClass.INT, "fl_int"), (RegClass.FP, "fl_fp")):
        pools[cls].allocations = c[K[f"{prefix}_allocs"]]
        pools[cls].min_free = c[K[f"{prefix}_min_free"]]
    if hasattr(ren, "free_vp"):
        for cls, prefix in ((RegClass.INT, "vp_int"),
                            (RegClass.FP, "vp_fp")):
            ren.free_vp[cls].allocations = c[K[f"{prefix}_allocs"]]
            ren.free_vp[cls].min_free = c[K[f"{prefix}_min_free"]]

    for kind in FUKind:
        p.fus.issues[kind] = c[K[f"fu_issues_{int(kind)}"]]
        p.fus.structural_stalls[kind] = c[K[f"fu_stalls_{int(kind)}"]]
    if p.regfile is not None:
        p.regfile.read_stalls = c[K["rf_read_stalls"]]
        p.regfile.bank_conflicts = c[K["rf_bank_conflicts"]]


def execute(processor, records):
    """Run ``records`` through the native loop on ``processor``.

    Returns ``True`` when the native tier ran and the processor's state
    was synced (the caller finishes with ``_harvest_stats`` exactly as
    for the compiled tier), ``False`` on any fallback (reason recorded
    in :data:`build_failures`), and raises ``SimulationDeadlock`` — with
    the interpreter's message prefix — when the simulation deadlocks.
    """
    n = len(records)
    if n == 0:
        _note_failure("empty-trace")
        return False
    if n >= 2 ** 31:
        _note_failure("trace-too-long")
        return False
    if processor._fault_at_commits:
        _note_failure("fault-injection")
        return False
    if not _pristine(processor):
        _note_failure("non-pristine-state")
        return False
    lib, reason = build_library(processor)
    if lib is None:
        return False
    buffers, reason = _marshal(records)
    if buffers is None:
        _note_failure(reason)
        return False
    tags_arr = array("q", processor.mem.cache._tags)
    bht_arr = array("b", processor.bht._counters)
    counters = array("q", bytes(8 * N_COUNTERS))
    rc = lib.repro_run(ctypes.c_int64(n), *map(_ptr, buffers),
                       _ptr(tags_arr), _ptr(bht_arr), _ptr(counters))
    if rc in (0, 1):
        _sync(processor, counters, tags_arr, bht_arr)
        if rc == 1:
            from repro.uarch.processor import SimulationDeadlock

            head = counters[_K["deadlock_head"]]
            horizon = processor.config.deadlock_horizon
            raise SimulationDeadlock(
                f"no commit for {horizon} cycles at cycle "
                f"{processor.now}; ROB head: "
                f"{'native seq %d' % head if head >= 0 else None}")
        return True
    # rc 2: a C-side invariant check fired *before* any corrupting
    # write; nothing was synced, so the Python state is still clean and
    # the compiled tier will reproduce the same crash the interpreter
    # would raise.  rc 3: allocation failure, nothing ran.
    _note_failure("native-alloc" if rc == 3 else "native-invariant")
    return False


# -- artifact-cache maintenance ----------------------------------------------


def artifact_stats():
    """Accounting for ``repro cache stats``: artifact count and bytes,
    with artifacts from an older template flagged stale."""
    directory = artifact_dir()
    current = f"engine-{template_fingerprint()}-"
    count = stale = total = stale_bytes = 0
    if directory.is_dir():
        for path in directory.glob("engine-*.so"):
            try:
                size = path.stat().st_size
            except OSError:
                continue
            count += 1
            total += size
            if not path.name.startswith(current):
                stale += 1
                stale_bytes += size
    return {
        "dir": str(directory),
        "artifacts": count,
        "bytes": total,
        "stale_artifacts": stale,
        "stale_bytes": stale_bytes,
    }


def _dir_writable(directory):
    """Can this process create and write files under ``directory``?"""
    try:
        directory.mkdir(parents=True, exist_ok=True)
        probe = directory / f".writable-{os.getpid()}"
        probe.write_bytes(b"ok")
        probe.unlink()
        return True
    except OSError:
        return False


def probe():
    """Host-readiness report for the native tier (``repro engines`` and
    ``tools/native_probe.py``).

    Every check that the tier needs at run time, checked up front:
    a working C compiler (probe-compiled, not just found on PATH) and a
    writable artifact cache directory.  ``available`` is the
    conjunction — when it is ``False``, ``engine=native`` falls back
    to the compiled tier on every run (loudly, via
    ``SimStats.engine_fallbacks``).
    """
    cc = toolchain()
    directory = artifact_dir()
    writable = _dir_writable(directory)
    return {
        "toolchain": cc,
        "cache_dir": str(directory),
        "cache_dir_writable": writable,
        "template_fingerprint": template_fingerprint(),
        "available": cc is not None and writable,
    }


def prune_stale():
    """Remove artifacts whose template fingerprint is not current (for
    ``repro cache compact``).  Returns ``(removed count, freed bytes)``."""
    directory = artifact_dir()
    current = f"engine-{template_fingerprint()}-"
    removed = freed = 0
    if directory.is_dir():
        for path in directory.glob("engine-*.so"):
            if path.name.startswith(current):
                continue
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size
    return removed, freed
