/* The native engine tier: one specialized cycle loop in C99.
 *
 * This file is the second half of a single translation unit: the Python
 * side (repro.uarch.native) renders a #define header per ProcessorConfig
 * feature vector (the same flags/consts repro.uarch.compiled specializes
 * on, plus the machine geometry the Python tiers read off live objects)
 * and prepends it to this template before invoking the system C
 * compiler.  Dead feature branches are dropped by the preprocessor
 * (#if F_*), configuration scalars are compile-time literals, and the
 * whole trace runs in one call.
 *
 * Stage semantics and ordering mirror repro/uarch/compiled.py's
 * _TEMPLATE line for line — when editing either, edit both (the
 * three-tier differential suite enforces the equivalence).  The
 * contract is bit-identical SimStats with the interpreter.
 *
 * Entry point:
 *   int64_t repro_run(n, rec_pc, rec_op, rec_dest, rec_src1, rec_src2,
 *                     rec_addr, rec_taken, cache_tags_io, bht_io,
 *                     counters)
 * Return codes: 0 = trace completed; 1 = simulated deadlock (counters
 * and cache/BHT state are synced, the caller raises
 * SimulationDeadlock); 2 = internal invariant violated (nothing is
 * synced, the caller falls back to the compiled tier which reproduces
 * the same crash); 3 = out of memory (nothing ran, caller falls back).
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ---- decode tables (initializers rendered by the header) ----------- */

static const int8_t OP_DEST[N_OPS] = OP_DEST_INIT;   /* -1 none, 0 INT, 1 FP */
static const uint8_t OP_LOAD[N_OPS] = OP_LOAD_INIT;
static const uint8_t OP_STORE[N_OPS] = OP_STORE_INIT;
static const uint8_t OP_BR[N_OPS] = OP_BR_INIT;
static const int8_t OP_FU[N_OPS] = OP_FU_INIT;
static const int8_t OP_LAT[N_OPS] = OP_LAT_INIT;
static const uint8_t OP_PIPE[N_OPS] = OP_PIPE_INIT;
static const int32_t FU_N[6] = FU_N_INIT;

#define TAG_SHIFT 16
#define TIDX(tag) (((int64_t)(tag) >> TAG_SHIFT) * MAX_IDENT \
                   + ((tag) & 0xFFFF))

/* Dynamic-instruction flag bits. */
#define FL_DONE 1u
#define FL_INIQ 2u
#define FL_RES 4u
#define FL_MISP 8u
#define FL_MGATED 16u

#define EV_CAP (ROB_SIZE + FB_SIZE + 16)
#define SH_CAP (ROB_SIZE + 16)
#define SQ_RING (ROB_SIZE + 1)
#define MSHR_HEAP (MSHR_N + 2)

/* ---- machine state (file scope: the loader uses PyDLL, so the GIL
 * serializes every entry and statics are safe) ----------------------- */

static int g_rc;

static int64_t g_n;
static const int64_t *r_pc;
static const int32_t *r_op, *r_dest, *r_src1, *r_src2;
static const int64_t *r_addr;
static const int8_t *r_taken;

/* per-instruction dynamic state, indexed by seq (== trace index) */
static int64_t *d_nb, *d_mra, *d_dra, *d_cat;
static int32_t *d_dtag, *d_dphys, *d_prev, *d_vpr, *d_rt1, *d_rt2, *d_xcnt;
static uint8_t *d_fl, *d_ni, *d_nf, *d_wc;

/* ROB / fetch buffer rings */
static int32_t *rob_q, *fb_q;
static int64_t rob_h, rob_n, fb_h, fb_n;

/* event heap: (time, seq), keyed by time only; same-cycle events are
 * drained together and sorted by seq, matching events.sort(key=_seq_of) */
static int64_t *evt_t;
static int32_t *evt_s;
static int64_t ev_n;

/* ready / pending-mem heaps (int32 seq min-heaps) and scratch arrays */
static int32_t *rh_q, *pm_q, *rt_q, *sp_q, *mg_q, *ev_list;
static int64_t rh_n, pm_n, mg_n;

/* wakeup lists: per-tag FIFO linked lists from a bump node pool */
static int32_t *wn_next, *wn_seq;
static int64_t wn_n, wn_cap;
static int32_t *w_head, *w_tail, *dw_head, *dw_tail;
static int64_t *ready_at;

/* free pools */
typedef struct {
    int32_t *ring;
    uint8_t *member;
    int64_t head, count, capacity, ring_cap, allocations, min_free;
} pool_t;
static pool_t pool_phys[2];   /* conv: renamer.free; vp: free_phys */
#if F_VP
static pool_t pool_vp[2];
static int32_t *pmt[2], *gvp[2], *gp[2];
static uint8_t *gv[2];
static int64_t res_reg[2], res_used[2];
static int32_t *pend_q[2];
static int64_t pend_h[2], pend_t[2];
static const int64_t res_nrr[2] = { NRR_INT, NRR_FP };
#else
static int32_t *map_tab[2];
#endif
static const int64_t pool_nlr[2] = { NLR_INT, NLR_FP };
static const int64_t pool_npr[2] = { NPR_INT, NPR_FP };
#if F_VP
static const int64_t pool_nvr[2] = { NVR_INT, NVR_FP };
#endif

/* store queue: ring in age order + monotonic unknown-address queue */
static int32_t *sq_seq;
static int64_t *sq_word, *sq_drt;
static uint8_t *sq_known;
static int64_t sq_h, sq_n;
static int32_t *un_q;
static int64_t un_h, un_t;
static int64_t sq_forwards, sq_waits;

/* functional units */
static int64_t fu_busy[6][FU_MAX], fu_issued[6][FU_MAX];
static int64_t fu_issues[6], fu_stalls[6];

/* cache + MSHRs + bus + ports */
static int64_t *c_tags;
static int64_t c_loads, c_load_misses, c_stores, c_store_misses,
    c_mshr_stalls;
static int64_t mp_line[MSHR_N], mp_fill[MSHR_N];
static int64_t mp_n;
static int64_t mh_fill[MSHR_HEAP], mh_line[MSHR_HEAP];
static int64_t mh_n;
static int64_t m_allocs, m_merges, m_rejects;
static int64_t bus_free, bus_transfers, bus_busy;
static int64_t port_cycle, ports_used, port_conflicts;
static int last_refusal; /* 1 disambiguation, 2 port, 3 mshr */

/* BHT */
static int8_t *bht;

#if F_RF
static int64_t rf_reads[2], rf_writes[2];
static int64_t rf_bank_r[2 * RF_BANKS], rf_bank_w[2 * RF_BANKS];
static int64_t rf_read_stalls, rf_bank_conflicts;
#endif

/* renamer diagnostics */
static int64_t ren_decode_stalls, ren_vp_stalls, ren_squashes,
    ren_issue_blocks;

/* ---- small helpers ------------------------------------------------- */

static int cmp_i32(const void *a, const void *b)
{
    int32_t x = *(const int32_t *)a, y = *(const int32_t *)b;
    return (x > y) - (x < y);
}

static void ev_push(int64_t t, int32_t s)
{
    int64_t i;
    if (ev_n >= EV_CAP) { g_rc = 2; return; }
    i = ev_n++;
    while (i > 0) {
        int64_t par = (i - 1) >> 1;
        if (evt_t[par] <= t)
            break;
        evt_t[i] = evt_t[par];
        evt_s[i] = evt_s[par];
        i = par;
    }
    evt_t[i] = t;
    evt_s[i] = s;
}

static int32_t ev_pop(void)
{
    int32_t top = evt_s[0];
    int64_t lt, i;
    int32_t ls;
    ev_n--;
    lt = evt_t[ev_n];
    ls = evt_s[ev_n];
    i = 0;
    for (;;) {
        int64_t c = 2 * i + 1;
        if (c >= ev_n)
            break;
        if (c + 1 < ev_n && evt_t[c + 1] < evt_t[c])
            c++;
        if (evt_t[c] >= lt)
            break;
        evt_t[i] = evt_t[c];
        evt_s[i] = evt_s[c];
        i = c;
    }
    if (ev_n > 0) {
        evt_t[i] = lt;
        evt_s[i] = ls;
    }
    return top;
}

static void h32_push(int32_t *h, int64_t *pn, int64_t cap, int32_t v)
{
    int64_t i;
    if (*pn >= cap) { g_rc = 2; return; }
    i = (*pn)++;
    while (i > 0) {
        int64_t par = (i - 1) >> 1;
        if (h[par] <= v)
            break;
        h[i] = h[par];
        i = par;
    }
    h[i] = v;
}

static int32_t h32_pop(int32_t *h, int64_t *pn)
{
    int32_t top = h[0], last;
    int64_t i, m;
    m = --(*pn);
    last = h[m];
    i = 0;
    for (;;) {
        int64_t c = 2 * i + 1;
        if (c >= m)
            break;
        if (c + 1 < m && h[c + 1] < h[c])
            c++;
        if (h[c] >= last)
            break;
        h[i] = h[c];
        i = c;
    }
    if (m > 0)
        h[i] = last;
    return top;
}

static int32_t pool_alloc(pool_t *p)
{
    int32_t id;
    if (p->count <= 0) { g_rc = 2; return -1; }
    id = p->ring[p->head];
    p->head = (p->head + 1) % p->ring_cap;
    p->count--;
    p->member[id] = 0;
    p->allocations++;
    if (p->count < p->min_free)
        p->min_free = p->count;
    return id;
}

static void pool_release(pool_t *p, int32_t id)
{
    if (id < 0 || id > MAX_IDENT || p->member[id]) { g_rc = 2; return; }
    p->member[id] = 1;
    p->ring[(p->head + p->count) % p->ring_cap] = id;
    p->count++;
    if (p->count > p->capacity)
        g_rc = 2;
}

static void wl_append(int32_t *head, int32_t *tail, int64_t t, int32_t s)
{
    int32_t node;
    if (wn_n >= wn_cap) { g_rc = 2; return; }
    node = (int32_t)wn_n++;
    wn_seq[node] = s;
    wn_next[node] = -1;
    if (head[t] < 0)
        head[t] = node;
    else
        wn_next[tail[t]] = node;
    tail[t] = node;
}

/* ---- store queue --------------------------------------------------- */

static int64_t sq_find(int32_t seq)
{
    /* Binary search the age-ordered ring; returns a ring offset or -1. */
    int64_t lo = 0, hi = sq_n - 1;
    while (lo <= hi) {
        int64_t mid = (lo + hi) >> 1;
        int32_t v = sq_seq[(sq_h + mid) % SQ_RING];
        if (v == seq)
            return mid;
        if (v < seq)
            lo = mid + 1;
        else
            hi = mid - 1;
    }
    return -1;
}

static void sq_insert(int32_t seq)
{
#if SQ_CAP
    if (sq_n >= SQ_CAP) { g_rc = 2; return; }
#endif
    if (sq_n >= SQ_RING) { g_rc = 2; return; }
    if (sq_n && sq_seq[(sq_h + sq_n - 1) % SQ_RING] >= seq) {
        g_rc = 2;
        return;
    }
    {
        int64_t slot = (sq_h + sq_n) % SQ_RING;
        sq_seq[slot] = seq;
        sq_known[slot] = 0;
        sq_word[slot] = -1;
        sq_drt[slot] = -1;
        sq_n++;
    }
    if (un_t > g_n) { g_rc = 2; return; }
    un_q[un_t++] = seq;
}

static void sq_set_address(int32_t seq, int64_t addr)
{
    int64_t off = sq_find(seq);
    int64_t slot;
    if (off < 0) { g_rc = 2; return; }
    slot = (sq_h + off) % SQ_RING;
    sq_known[slot] = 1;
    sq_word[slot] = addr / 8;
}

static void sq_set_data_ready(int32_t seq, int64_t when)
{
    int64_t off = sq_find(seq);
    if (off < 0) { g_rc = 2; return; }
    sq_drt[(sq_h + off) % SQ_RING] = when;
}

static void sq_remove_front(int32_t seq)
{
    if (!sq_n || sq_seq[sq_h] != seq) { g_rc = 2; return; }
    sq_h = (sq_h + 1) % SQ_RING;
    sq_n--;
}

static int32_t sq_oldest_unknown(void)
{
    while (un_h < un_t) {
        int32_t seq = un_q[un_h];
        int64_t off = sq_find(seq);
        if (off < 0 || sq_known[(sq_h + off) % SQ_RING]) {
            un_h++;
            continue;
        }
        return seq;
    }
    return -1;
}

/* check_load outcomes */
#define LO_WAIT 0
#define LO_FORWARD 1
#define LO_ACCESS 2

static int sq_check_load(int32_t load_seq, int64_t addr, int64_t now)
{
    int32_t oldest;
    int64_t word, k, match = -1;
    if (!sq_n)
        return LO_ACCESS;
    oldest = sq_oldest_unknown();
    if (oldest >= 0 && oldest < load_seq) {
        sq_waits++;
        return LO_WAIT;
    }
    word = addr / 8;
    for (k = 0; k < sq_n; k++) {
        int64_t slot = (sq_h + k) % SQ_RING;
        if (sq_seq[slot] >= load_seq)
            break;
        if (sq_word[slot] == word)
            match = slot; /* youngest older match wins */
    }
    if (match < 0)
        return LO_ACCESS;
    if (sq_drt[match] < 0 || sq_drt[match] > now) {
        sq_waits++;
        return LO_WAIT;
    }
    sq_forwards++;
    return LO_FORWARD;
}

/* ---- MSHRs + bus + cache ------------------------------------------- */

static void mshr_expire(int64_t now)
{
    while (mh_n && mh_fill[0] <= now) {
        int64_t fill = mh_fill[0], line = mh_line[0], i, m, lt, ll;
        m = --mh_n;
        lt = mh_fill[m];
        ll = mh_line[m];
        i = 0;
        for (;;) {
            int64_t c = 2 * i + 1;
            if (c >= m)
                break;
            if (c + 1 < m && mh_fill[c + 1] < mh_fill[c])
                c++;
            if (mh_fill[c] >= lt)
                break;
            mh_fill[i] = mh_fill[c];
            mh_line[i] = mh_line[c];
            i = c;
        }
        if (m > 0) {
            mh_fill[i] = lt;
            mh_line[i] = ll;
        }
        for (i = 0; i < mp_n; i++)
            if (mp_line[i] == line && mp_fill[i] == fill) {
                mp_line[i] = mp_line[mp_n - 1];
                mp_fill[i] = mp_fill[mp_n - 1];
                mp_n--;
                break;
            }
    }
}

static int64_t mshr_lookup(int64_t line, int64_t now)
{
    int64_t i;
    mshr_expire(now);
    for (i = 0; i < mp_n; i++)
        if (mp_line[i] == line) {
            m_merges++;
            return mp_fill[i];
        }
    return -1;
}

static int mshr_has_room(int64_t now)
{
    mshr_expire(now);
    if (mp_n >= MSHR_N) {
        m_rejects++;
        return 0;
    }
    return 1;
}

static void mshr_alloc(int64_t line, int64_t now, int64_t fill)
{
    int64_t i;
    mshr_expire(now);
    for (i = 0; i < mp_n; i++)
        if (mp_line[i] == line) { g_rc = 2; return; }
    if (mp_n >= MSHR_N || mh_n >= MSHR_HEAP) { g_rc = 2; return; }
    mp_line[mp_n] = line;
    mp_fill[mp_n] = fill;
    mp_n++;
    i = mh_n++;
    while (i > 0) {
        int64_t par = (i - 1) >> 1;
        if (mh_fill[par] <= fill)
            break;
        mh_fill[i] = mh_fill[par];
        mh_line[i] = mh_line[par];
        i = par;
    }
    mh_fill[i] = fill;
    mh_line[i] = line;
    m_allocs++;
}

static int64_t mshr_next_fill(int64_t now)
{
    mshr_expire(now);
    /* Every heap pair with fill > now is live (allocate rejects
     * duplicate lines and deletion only happens at expiry), so the top
     * is the answer. */
    return mh_n ? mh_fill[0] : -1;
}

static int64_t bus_fill(int64_t now)
{
    int64_t start = now + MISS_PEN - BUS_CPL, finish;
    if (bus_free > start)
        start = bus_free;
    finish = start + BUS_CPL;
    bus_free = finish;
    bus_transfers++;
    bus_busy += BUS_CPL;
    return finish;
}

static int64_t cache_load(int64_t addr, int64_t now)
{
    int64_t line = addr / LINE_BYTES, pending, fill;
    c_loads++;
    pending = mshr_lookup(line, now);
    if (pending >= 0) {
        int64_t hit = now + HIT_LAT;
        c_load_misses++;
        return pending > hit ? pending : hit;
    }
    if (c_tags[line % NUM_LINES] == line)
        return now + HIT_LAT;
    c_load_misses++;
    if (!mshr_has_room(now)) {
        c_mshr_stalls++;
        c_loads--;
        c_load_misses--;
        return -1;
    }
    fill = bus_fill(now);
    mshr_alloc(line, now, fill);
    c_tags[line % NUM_LINES] = line;
    return fill;
}

static void cache_store(int64_t addr, int64_t now)
{
    int64_t line = addr / LINE_BYTES, pending, fill;
    c_stores++;
    pending = mshr_lookup(line, now);
    if (pending >= 0) {
        c_store_misses++;
        return;
    }
    if (c_tags[line % NUM_LINES] == line)
        return;
    c_store_misses++;
    if (!mshr_has_room(now)) {
        c_tags[line % NUM_LINES] = line;
        return;
    }
    fill = bus_fill(now);
    mshr_alloc(line, now, fill);
    c_tags[line % NUM_LINES] = line;
}

static int port_available(int64_t now)
{
    if (now != port_cycle) {
        port_cycle = now;
        ports_used = 0;
    }
    return ports_used < CACHE_PORTS;
}

static int64_t try_load(int32_t seq, int64_t addr, int64_t now)
{
    int outcome = sq_check_load(seq, addr, now);
    int64_t done;
    if (outcome == LO_WAIT) {
        last_refusal = 1;
        return -1;
    }
    if (outcome == LO_FORWARD)
        return now + HIT_LAT; /* forwarding costs no cache port */
    if (!port_available(now)) {
        port_conflicts++;
        last_refusal = 2;
        return -1;
    }
    done = cache_load(addr, now);
    if (done < 0) {
        last_refusal = 3;
        return -1;
    }
    ports_used++;
    return done;
}

static int try_store_commit(int64_t addr, int64_t now)
{
    if (!port_available(now)) {
        port_conflicts++;
        return 0;
    }
    ports_used++;
    cache_store(addr, now);
    return 1;
}

/* ---- register-file port model -------------------------------------- */

#if F_RF
static void rf_start_read(void)
{
    rf_reads[0] = rf_reads[1] = RF_RP;
#if RF_BANKS > 1
    {
        int64_t i;
        for (i = 0; i < 2 * RF_BANKS; i++)
            rf_bank_r[i] = RF_BANK_RP;
    }
#endif
}

static void rf_start_write(void)
{
    rf_writes[0] = rf_writes[1] = RF_WP;
#if RF_BANKS > 1
    {
        int64_t i;
        for (i = 0; i < 2 * RF_BANKS; i++)
            rf_bank_w[i] = RF_BANK_WP;
    }
#endif
}

#define RF_SLOT(tag) (((int64_t)(tag) >> TAG_SHIFT) * RF_BANKS \
                      + ((tag) & 0xFFFF) % RF_BANKS)

static int rf_can_read(int32_t s)
{
    int64_t ni = d_ni[s], nf = d_nf[s];
    if (ni > rf_reads[0] || nf > rf_reads[1]) {
        rf_read_stalls++;
        return 0;
    }
#if RF_BANKS > 1
    if (ni || nf) {
        int32_t t1 = d_rt1[s], t2 = d_rt2[s];
        if (t1 >= 0 && t2 >= 0) {
            int64_t s1 = RF_SLOT(t1), s2 = RF_SLOT(t2);
            if (s1 == s2) {
                if (rf_bank_r[s1] < 2) {
                    rf_read_stalls++;
                    rf_bank_conflicts++;
                    return 0;
                }
            } else if (rf_bank_r[s1] < 1 || rf_bank_r[s2] < 1) {
                rf_read_stalls++;
                rf_bank_conflicts++;
                return 0;
            }
        } else if (t1 >= 0 && rf_bank_r[RF_SLOT(t1)] < 1) {
            rf_read_stalls++;
            rf_bank_conflicts++;
            return 0;
        }
    }
#endif
    return 1;
}

static void rf_claim_read(int32_t s)
{
    rf_reads[0] -= d_ni[s];
    rf_reads[1] -= d_nf[s];
#if RF_BANKS > 1
    if (d_ni[s] || d_nf[s]) {
        if (d_rt1[s] >= 0)
            rf_bank_r[RF_SLOT(d_rt1[s])]--;
        if (d_rt2[s] >= 0)
            rf_bank_r[RF_SLOT(d_rt2[s])]--;
    }
#endif
}

static int rf_can_write(int32_t s, int cls)
{
    if (rf_writes[cls] == 0)
        return 0;
#if RF_BANKS > 1
    if (rf_bank_w[RF_SLOT(d_dtag[s])] == 0) {
        rf_bank_conflicts++;
        return 0;
    }
#endif
    return 1;
}

static void rf_claim_write(int32_t s, int cls)
{
    rf_writes[cls]--;
#if RF_BANKS > 1
    rf_bank_w[RF_SLOT(d_dtag[s])]--;
#endif
}
#endif /* F_RF */

/* ---- VP allocation (write-back or issue stage) --------------------- */

#if F_VP
static int vp_try_alloc(int32_t s, int cls)
{
    pool_t *fr = &pool_phys[cls];
    int32_t phys, vp;
    int64_t idx;
    if (!((d_fl[s] & FL_RES) || fr->count > res_nrr[cls] - res_used[cls]))
        return 0;
    if (fr->count == 0) {
        g_rc = 2; /* the NRR invariant is broken */
        return 1;
    }
    phys = pool_alloc(fr);
    d_dphys[s] = phys;
    vp = d_vpr[s];
    pmt[cls][vp] = phys;
    idx = r_dest[s] & INDEX_MASK;
    if (gvp[cls][idx] == vp) {
        gp[cls][idx] = phys;
        gv[cls][idx] = 1;
    }
    if (d_fl[s] & FL_RES)
        res_used[cls]++;
    return 1;
}
#endif

/* ---- allocation / teardown ----------------------------------------- */

static void *g_blocks[64];
static int g_nblocks;

static void *xalloc(int64_t nbytes)
{
    void *p = malloc((size_t)nbytes);
    if (p == NULL)
        g_rc = 3;
    else
        g_blocks[g_nblocks++] = p;
    return p;
}

static void free_all(void)
{
    int i;
    for (i = 0; i < g_nblocks; i++)
        free(g_blocks[i]);
    g_nblocks = 0;
}

static void pool_init(pool_t *p, int64_t first, int64_t last_excl)
{
    int64_t i, cap = last_excl - first;
    p->capacity = cap;
    p->ring_cap = cap + 1;
    p->head = 0;
    p->count = cap;
    p->allocations = 0;
    p->min_free = cap;
    p->ring = (int32_t *)xalloc(p->ring_cap * 4);
    p->member = (uint8_t *)xalloc((int64_t)MAX_IDENT + 1);
    if (g_rc)
        return;
    memset(p->member, 0, (size_t)MAX_IDENT + 1);
    for (i = 0; i < cap; i++) {
        p->ring[i] = (int32_t)(first + i);
        p->member[first + i] = 1;
    }
}

static int setup(int64_t n)
{
    int64_t i, cls;
    g_rc = 0;
    g_nblocks = 0;
    g_n = n;

    d_nb = (int64_t *)xalloc(n * 8);
    d_mra = (int64_t *)xalloc(n * 8);
    d_dra = (int64_t *)xalloc(n * 8);
    d_cat = (int64_t *)xalloc(n * 8);
    d_dtag = (int32_t *)xalloc(n * 4);
    d_dphys = (int32_t *)xalloc(n * 4);
    d_prev = (int32_t *)xalloc(n * 4);
    d_vpr = (int32_t *)xalloc(n * 4);
    d_rt1 = (int32_t *)xalloc(n * 4);
    d_rt2 = (int32_t *)xalloc(n * 4);
    d_xcnt = (int32_t *)xalloc(n * 4);
    d_fl = (uint8_t *)xalloc(n);
    d_ni = (uint8_t *)xalloc(n);
    d_nf = (uint8_t *)xalloc(n);
    d_wc = (uint8_t *)xalloc(n);

    rob_q = (int32_t *)xalloc((int64_t)(ROB_SIZE + 1) * 4);
    fb_q = (int32_t *)xalloc((int64_t)(FB_SIZE + 1) * 4);
    evt_t = (int64_t *)xalloc((int64_t)EV_CAP * 8);
    evt_s = (int32_t *)xalloc((int64_t)EV_CAP * 4);
    ev_list = (int32_t *)xalloc((int64_t)EV_CAP * 4);
    rh_q = (int32_t *)xalloc((int64_t)SH_CAP * 4);
    pm_q = (int32_t *)xalloc((int64_t)SH_CAP * 4);
    rt_q = (int32_t *)xalloc((int64_t)SH_CAP * 4);
    sp_q = (int32_t *)xalloc((int64_t)SH_CAP * 4);
    mg_q = (int32_t *)xalloc((int64_t)SH_CAP * 4);

    wn_cap = 2 * n + 8;
    wn_next = (int32_t *)xalloc(wn_cap * 4);
    wn_seq = (int32_t *)xalloc(wn_cap * 4);
    wn_n = 0;
    w_head = (int32_t *)xalloc(2 * (int64_t)MAX_IDENT * 4);
    w_tail = (int32_t *)xalloc(2 * (int64_t)MAX_IDENT * 4);
    dw_head = (int32_t *)xalloc(2 * (int64_t)MAX_IDENT * 4);
    dw_tail = (int32_t *)xalloc(2 * (int64_t)MAX_IDENT * 4);
    ready_at = (int64_t *)xalloc(2 * (int64_t)MAX_IDENT * 8);

    sq_seq = (int32_t *)xalloc((int64_t)SQ_RING * 4);
    sq_word = (int64_t *)xalloc((int64_t)SQ_RING * 8);
    sq_drt = (int64_t *)xalloc((int64_t)SQ_RING * 8);
    sq_known = (uint8_t *)xalloc((int64_t)SQ_RING);
    un_q = (int32_t *)xalloc((n + 1) * 4);

#if F_VP
    for (cls = 0; cls < 2; cls++) {
        pmt[cls] = (int32_t *)xalloc(pool_nvr[cls] * 4);
        gvp[cls] = (int32_t *)xalloc(pool_nlr[cls] * 4);
        gp[cls] = (int32_t *)xalloc(pool_nlr[cls] * 4);
        gv[cls] = (uint8_t *)xalloc(pool_nlr[cls]);
        pend_q[cls] = (int32_t *)xalloc((n + 1) * 4);
    }
#else
    for (cls = 0; cls < 2; cls++)
        map_tab[cls] = (int32_t *)xalloc(pool_nlr[cls] * 4);
#endif
    if (g_rc)
        return g_rc;

    rob_h = rob_n = fb_h = fb_n = 0;
    ev_n = rh_n = pm_n = mg_n = 0;
    sq_h = sq_n = un_h = un_t = 0;
    sq_forwards = sq_waits = 0;

    for (i = 0; i < 2 * MAX_IDENT; i++) {
        w_head[i] = w_tail[i] = dw_head[i] = dw_tail[i] = -1;
        ready_at[i] = FAR_FUTURE;
    }
    for (cls = 0; cls < 2; cls++)
        for (i = 0; i < pool_nlr[cls]; i++)
            ready_at[cls * MAX_IDENT + i] = 0;

    for (cls = 0; cls < 2; cls++) {
        pool_init(&pool_phys[cls], pool_nlr[cls], pool_npr[cls]);
#if F_VP
        pool_init(&pool_vp[cls], pool_nlr[cls], pool_nvr[cls]);
        res_reg[cls] = res_used[cls] = 0;
        pend_h[cls] = pend_t[cls] = 0;
        for (i = 0; i < pool_nvr[cls]; i++)
            pmt[cls][i] = i < pool_nlr[cls] ? (int32_t)i : -1;
        for (i = 0; i < pool_nlr[cls]; i++) {
            gvp[cls][i] = (int32_t)i;
            gp[cls][i] = (int32_t)i;
            gv[cls][i] = 1;
        }
#else
        for (i = 0; i < pool_nlr[cls]; i++)
            map_tab[cls][i] = (int32_t)i;
#endif
    }
    if (g_rc)
        return g_rc;

    for (i = 0; i < 6; i++) {
        int64_t u;
        fu_issues[i] = fu_stalls[i] = 0;
        for (u = 0; u < FU_MAX; u++) {
            fu_busy[i][u] = 0;
            fu_issued[i][u] = -1;
        }
    }

    mp_n = mh_n = 0;
    m_allocs = m_merges = m_rejects = 0;
    c_loads = c_load_misses = c_stores = c_store_misses = c_mshr_stalls = 0;
    bus_free = bus_transfers = bus_busy = 0;
    port_cycle = -1;
    ports_used = 0;
    port_conflicts = 0;
    last_refusal = 0;
    ren_decode_stalls = ren_vp_stalls = ren_squashes = ren_issue_blocks = 0;
#if F_RF
    rf_read_stalls = rf_bank_conflicts = 0;
    rf_reads[0] = rf_reads[1] = rf_writes[0] = rf_writes[1] = 0;
    for (i = 0; i < 2 * RF_BANKS; i++)
        rf_bank_r[i] = rf_bank_w[i] = 0;
#endif
    return 0;
}

/* ---- the run loop --------------------------------------------------- */

int64_t repro_run(int64_t n,
                  const int64_t *rec_pc, const int32_t *rec_op,
                  const int32_t *rec_dest, const int32_t *rec_src1,
                  const int32_t *rec_src2, const int64_t *rec_addr,
                  const int8_t *rec_taken,
                  int64_t *cache_tags_io, int8_t *bht_io,
                  int64_t *counters)
{
    int64_t now = 0, fetch_resume_at = 0, next_seq = 0, last_commit = 0;
    int64_t iq_count = 0, committed = 0, idle_skips = 0,
        idle_cycles_skipped = 0;
    int64_t s_fetched = 0, s_executions = 0, s_squashes = 0,
        s_issue_alloc = 0, s_branches = 0, s_mispredicts = 0,
        s_rob_full = 0, s_iq_full = 0, s_no_reg = 0, s_sq_full = 0,
        s_fetch_stall = 0, s_wb_defers = 0, s_int_occ = 0, s_fp_occ = 0,
        s_peak_rob = 0;
    int exhausted = 0;
    int64_t deadlock_head = -1;
    int64_t rc;

    r_pc = rec_pc;
    r_op = rec_op;
    r_dest = rec_dest;
    r_src1 = rec_src1;
    r_src2 = rec_src2;
    r_addr = rec_addr;
    r_taken = rec_taken;
    c_tags = cache_tags_io;
    bht = bht_io;

    if (setup(n)) {
        rc = g_rc;
        free_all();
        return rc;
    }

    while (!(exhausted && !fb_n && !rob_n)) {
        /* ---- write-back: completion events -------------------------- */
        int64_t ev_cnt = 0;
        while (ev_n && evt_t[0] <= now)
            ev_list[ev_cnt++] = ev_pop();
        if (ev_cnt) {
            int64_t k;
#if F_RF
            rf_start_write();
#else
            int64_t int_wb = WRITE_PORTS, fp_wb = WRITE_PORTS;
#endif
            qsort(ev_list, (size_t)ev_cnt, 4, cmp_i32);
            for (k = 0; k < ev_cnt; k++) {
                int32_t s = ev_list[k];
                int32_t op = r_op[s];
                int cls;
                int32_t tag;
                if (OP_STORE[op]) {
                    sq_set_address(s, r_addr[s]);
                    d_mra[s] = now;
                    if (d_dra[s] >= 0) {
                        d_fl[s] |= FL_DONE;
                        d_cat[s] = now;
                    }
                    continue;
                }
                if (OP_BR[op]) {
                    int64_t bidx = (r_pc[s] >> 2) & BHT_MASK;
                    int8_t ctr = bht[bidx];
                    s_branches++;
                    if (r_taken[s]) {
                        if (ctr < 3)
                            bht[bidx] = ctr + 1;
                    } else if (ctr > 0) {
                        bht[bidx] = ctr - 1;
                    }
                    if (d_fl[s] & FL_MISP) {
                        s_mispredicts++;
                        fetch_resume_at = now + 1;
                    }
                    d_fl[s] |= FL_DONE;
                    d_cat[s] = now;
                    continue;
                }
                cls = OP_DEST[op];
#if F_RF
                if (cls >= 0 && !rf_can_write(s, cls)) {
#else
                if (cls >= 0 && (cls == 0 ? int_wb : fp_wb) == 0) {
#endif
                    s_wb_defers++;
                    ev_push(now + 1, s);
                    continue;
                }
#if F_COMPLETE
                if (cls >= 0 && d_dphys[s] < 0) {
                    if (!vp_try_alloc(s, cls)) {
                        ren_squashes++;
                        s_squashes++;
                        d_nb[s] = now + 1;
                        h32_push(rh_q, &rh_n, SH_CAP, s);
                        continue;
                    }
                    if (g_rc)
                        goto bail;
                }
#endif
                if (cls >= 0) {
#if F_RF
                    rf_claim_write(s, cls);
#else
                    if (cls == 0)
                        int_wb--;
                    else
                        fp_wb--;
#endif
                }
                d_fl[s] |= FL_DONE;
                d_cat[s] = now;
                if (d_fl[s] & FL_INIQ) {
                    d_fl[s] &= ~FL_INIQ;
                    iq_count--;
                }
                tag = d_dtag[s];
                if (tag != -1) {
                    int64_t ti = TIDX(tag);
                    int32_t node;
                    ready_at[ti] = now;
                    node = w_head[ti];
                    w_head[ti] = w_tail[ti] = -1;
                    while (node >= 0) {
                        int32_t w = wn_seq[node];
                        d_wc[w]--;
                        if (d_wc[w] == 0)
                            h32_push(rh_q, &rh_n, SH_CAP, w);
                        node = wn_next[node];
                    }
                    node = dw_head[ti];
                    dw_head[ti] = dw_tail[ti] = -1;
                    while (node >= 0) {
                        int32_t d = wn_seq[node];
                        d_dra[d] = now;
                        sq_set_data_ready(d, now);
                        if (d_mra[d] >= 0 && !(d_fl[d] & FL_DONE)) {
                            d_fl[d] |= FL_DONE;
                            d_cat[d] = now;
                        }
                        node = wn_next[node];
                    }
                }
            }
            if (g_rc)
                goto bail;
        }

        /* ---- commit: in-order retirement ---------------------------- */
        if (rob_n) {
            int64_t budget = COMMIT_W, before = committed;
            while (budget && rob_n) {
                int32_t s = rob_q[rob_h];
                int32_t op = r_op[s];
                int cls;
                if (!(d_fl[s] & FL_DONE) || d_cat[s] + COMMIT_DELAY > now)
                    break;
                if (OP_STORE[op]) {
                    if (!try_store_commit(r_addr[s], now))
                        break;
                    sq_remove_front(s);
                    if (mg_n) {
                        int64_t g;
                        for (g = 0; g < mg_n; g++) {
                            d_mra[mg_q[g]] = now;
                            d_fl[mg_q[g]] &= ~FL_MGATED;
                        }
                        mg_n = 0;
                    }
                }
                cls = OP_DEST[op];
#if F_VP
                if (cls >= 0) {
                    int32_t prev_vp, prev_phys;
                    if (!(d_fl[s] & FL_RES)) {
                        g_rc = 2;
                        goto bail;
                    }
                    res_reg[cls]--;
                    res_used[cls]--;
                    if (pend_h[cls] < pend_t[cls]) {
                        int32_t nxt = pend_q[cls][pend_h[cls]++];
                        d_fl[nxt] |= FL_RES;
                        res_reg[cls]++;
                        if (d_dphys[nxt] >= 0)
                            res_used[cls]++;
                    }
                    prev_vp = d_prev[s];
                    prev_phys = pmt[cls][prev_vp];
                    if (prev_phys < 0) {
                        g_rc = 2;
                        goto bail;
                    }
                    pmt[cls][prev_vp] = -1;
                    pool_release(&pool_phys[cls], prev_phys);
                    pool_release(&pool_vp[cls], prev_vp);
                }
#else
                if (cls >= 0)
                    pool_release(&pool_phys[cls], d_prev[s]);
#endif
                if (g_rc)
                    goto bail;
                rob_h = (rob_h + 1) % (ROB_SIZE + 1);
                rob_n--;
                committed++;
                budget--;
            }
            if (committed != before)
                last_commit = now;
        }
        if (g_rc)
            goto bail;

        /* ---- memory: loads attempt the cache ------------------------ */
        if (pm_n) {
            int64_t sp_n = 0;
            int32_t blocking = sq_oldest_unknown();
            while (pm_n) {
                int32_t s = h32_pop(pm_q, &pm_n);
                int64_t done;
                if (blocking >= 0 && s > blocking) {
                    int64_t waits = d_mra[s] > now ? 0 : 1, j;
                    for (j = 0; j < pm_n; j++)
                        if (d_mra[pm_q[j]] <= now)
                            waits++;
                    sq_waits += waits;
                    sp_q[sp_n++] = s;
                    qsort(pm_q, (size_t)pm_n, 4, cmp_i32);
                    memcpy(sp_q + sp_n, pm_q, (size_t)pm_n * 4);
                    sp_n += pm_n;
                    pm_n = 0;
                    break;
                }
                if (d_mra[s] > now) {
                    sp_q[sp_n++] = s;
                    continue;
                }
                done = try_load(s, r_addr[s], now);
                if (done < 0) {
                    if (last_refusal == 3) {
                        int64_t gate = mshr_next_fill(now);
                        if (gate >= 0 && gate > now) {
                            d_mra[s] = gate;
                            if (!(d_fl[s] & FL_MGATED)) {
                                d_fl[s] |= FL_MGATED;
                                mg_q[mg_n++] = s;
                            }
                        }
                    }
                    sp_q[sp_n++] = s;
                    continue;
                }
                ev_push(done, s);
            }
            memcpy(pm_q, sp_q, (size_t)sp_n * 4);
            pm_n = sp_n;
        }
        if (g_rc)
            goto bail;

        /* ---- issue: oldest-first over the ready set ----------------- */
        if (rh_n) {
            int64_t budget = ISSUE_W, launched = 0, rt_n = 0;
            int fu_blocked = 0;
#if F_RF
            rf_start_read();
#else
            int64_t int_reads = READ_PORTS, fp_reads = READ_PORTS;
#endif
            while (budget && rh_n) {
                int32_t s = h32_pop(rh_q, &rh_n);
                int32_t op = r_op[s];
                int kind, kind_bit, unit;
                int64_t u, nu;
                if (d_nb[s] > now) {
                    rt_q[rt_n++] = s;
                    continue;
                }
#if F_RETRY
                if (d_xcnt[s] > 0 && d_dphys[s] < 0
                        && !(d_fl[s] & FL_RES)) {
                    int rcls = OP_DEST[op];
                    if (rcls >= 0
                            && pool_phys[rcls].count
                               <= res_nrr[rcls] - res_used[rcls]) {
                        rt_q[rt_n++] = s;
                        continue;
                    }
                }
#endif
#if F_RF
                if (!rf_can_read(s)) {
                    rt_q[rt_n++] = s;
                    continue;
                }
#else
                if (d_ni[s] > int_reads || d_nf[s] > fp_reads) {
                    rt_q[rt_n++] = s;
                    continue;
                }
#endif
                kind = OP_FU[op];
                kind_bit = 1 << kind;
                if (fu_blocked & kind_bit) {
                    fu_stalls[kind]++;
                    rt_q[rt_n++] = s;
                    continue;
                }
                unit = -1;
                nu = FU_N[kind];
                for (u = 0; u < nu; u++)
                    if (fu_busy[kind][u] <= now
                            && fu_issued[kind][u] != now) {
                        unit = (int)u;
                        break;
                    }
                if (unit < 0) {
                    fu_stalls[kind]++;
                    fu_blocked |= kind_bit;
                    rt_q[rt_n++] = s;
                    continue;
                }
#if F_ISSUE
                {
                    int icls = OP_DEST[op];
                    if (icls >= 0 && d_dphys[s] < 0) {
                        if (!vp_try_alloc(s, icls)) {
                            ren_issue_blocks++;
                            s_issue_alloc++;
                            rt_q[rt_n++] = s;
                            continue;
                        }
                        if (g_rc)
                            goto bail;
                    }
                }
#endif
                fu_issued[kind][unit] = now;
                if (!OP_PIPE[op])
                    fu_busy[kind][unit] = now + OP_LAT[op];
                fu_issues[kind]++;
#if F_RF
                rf_claim_read(s);
#else
                int_reads -= d_ni[s];
                fp_reads -= d_nf[s];
#endif
                budget--;
                d_xcnt[s]++;
                launched++;
                if (OP_LOAD[op]) {
                    d_mra[s] = now + 1;
                    h32_push(pm_q, &pm_n, SH_CAP, s);
                } else if (OP_STORE[op] || OP_BR[op]) {
                    ev_push(now + 1, s);
                } else {
                    ev_push(now + OP_LAT[op], s);
                }
#if F_VP_WB
                if ((d_fl[s] & FL_INIQ) && OP_DEST[op] < 0) {
                    d_fl[s] &= ~FL_INIQ;
                    iq_count--;
                }
#else
                if (d_fl[s] & FL_INIQ) {
                    d_fl[s] &= ~FL_INIQ;
                    iq_count--;
                }
#endif
            }
            if (!rh_n) {
                memcpy(rh_q, rt_q, (size_t)rt_n * 4);
                rh_n = rt_n;
            } else {
                int64_t j;
                for (j = 0; j < rt_n; j++)
                    h32_push(rh_q, &rh_n, SH_CAP, rt_q[j]);
            }
            if (launched)
                s_executions += launched;
        }
        if (g_rc)
            goto bail;

        /* ---- rename/dispatch ---------------------------------------- */
        if (fb_n) {
            int64_t budget = RENAME_W;
            while (budget && fb_n) {
                int32_t s = fb_q[fb_h];
                int32_t op = r_op[s];
                int cls = OP_DEST[op];
                int32_t src1, src2, t1 = -1, t2 = -1;
                int64_t need_int = 0, need_fp = 0, waiting = 0;
                if (rob_n >= ROB_SIZE) {
                    s_rob_full++;
                    break;
                }
                if (iq_count >= IQ_SIZE) {
                    s_iq_full++;
                    break;
                }
#if SQ_CAP
                if (OP_STORE[op] && sq_n >= SQ_CAP) {
                    s_sq_full++;
                    break;
                }
#endif
#if F_VP
                if (cls >= 0 && pool_vp[cls].count == 0) {
                    ren_vp_stalls++;
                    s_no_reg++;
                    break;
                }
#else
                if (cls >= 0 && pool_phys[cls].count == 0) {
                    ren_decode_stalls++;
                    s_no_reg++;
                    break;
                }
#endif
                fb_h = (fb_h + 1) % (FB_SIZE + 1);
                fb_n--;
                src1 = r_src1[s];
                src2 = r_src2[s];
                if (src1 >= 0) {
                    int c = src1 >> CLASS_SHIFT;
#if F_VP
                    t1 = (c << TAG_SHIFT) | gvp[c][src1 & INDEX_MASK];
#else
                    t1 = (c << TAG_SHIFT) | map_tab[c][src1 & INDEX_MASK];
#endif
                    if (src2 >= 0) {
                        c = src2 >> CLASS_SHIFT;
#if F_VP
                        t2 = (c << TAG_SHIFT)
                            | gvp[c][src2 & INDEX_MASK];
#else
                        t2 = (c << TAG_SHIFT)
                            | map_tab[c][src2 & INDEX_MASK];
#endif
                    }
                } else if (src2 >= 0) {
                    int c = src2 >> CLASS_SHIFT;
#if F_VP
                    t1 = (c << TAG_SHIFT) | gvp[c][src2 & INDEX_MASK];
#else
                    t1 = (c << TAG_SHIFT) | map_tab[c][src2 & INDEX_MASK];
#endif
                }
                if (cls < 0) {
                    d_dtag[s] = -1;
                } else {
                    int64_t idx = r_dest[s] & INDEX_MASK;
#if F_VP
                    int32_t new_vp = pool_alloc(&pool_vp[cls]);
                    if (g_rc)
                        goto bail;
                    d_vpr[s] = new_vp;
                    d_prev[s] = gvp[cls][idx];
                    gvp[cls][idx] = new_vp;
                    gv[cls][idx] = 0;
                    d_dtag[s] = (cls << TAG_SHIFT) | new_vp;
#else
                    int32_t new_phys = pool_alloc(&pool_phys[cls]);
                    if (g_rc)
                        goto bail;
                    d_prev[s] = map_tab[cls][idx];
                    d_dphys[s] = new_phys;
                    map_tab[cls][idx] = new_phys;
                    d_dtag[s] = (cls << TAG_SHIFT) | new_phys;
#endif
                    ready_at[TIDX(d_dtag[s])] = FAR_FUTURE;
                }
#if F_VP
                if (cls >= 0) {
                    if (res_reg[cls] < res_nrr[cls]) {
                        d_fl[s] |= FL_RES;
                        res_reg[cls]++;
                    } else {
                        if (pend_t[cls] > g_n) {
                            g_rc = 2;
                            goto bail;
                        }
                        pend_q[cls][pend_t[cls]++] = s;
                    }
                }
#endif
                rob_q[(rob_h + rob_n) % (ROB_SIZE + 1)] = s;
                rob_n++;
                if (rob_n > s_peak_rob)
                    s_peak_rob = rob_n;
                d_fl[s] |= FL_INIQ;
                iq_count++;
                d_nb[s] = now + 1;
                budget--;
                if (OP_STORE[op]) {
                    /* wait_tags = src_tags[:1]; value tag = src_tags[1]
                     * (the marshalling layer guarantees both sources) */
                    sq_insert(s);
                    if (g_rc)
                        goto bail;
                    if (ready_at[TIDX(t2)] <= now) {
                        d_dra[s] = now;
                        sq_set_data_ready(s, now);
                    } else {
                        wl_append(dw_head, dw_tail, TIDX(t2), s);
                    }
                    t2 = -1; /* only the base address is read at issue */
                }
                if (t1 >= 0) {
                    if (t1 >> TAG_SHIFT)
                        need_fp++;
                    else
                        need_int++;
                    if (ready_at[TIDX(t1)] > now) {
                        wl_append(w_head, w_tail, TIDX(t1), s);
                        waiting++;
                    }
                }
                if (t2 >= 0) {
                    if (t2 >> TAG_SHIFT)
                        need_fp++;
                    else
                        need_int++;
                    if (ready_at[TIDX(t2)] > now) {
                        wl_append(w_head, w_tail, TIDX(t2), s);
                        waiting++;
                    }
                }
                d_rt1[s] = t1;
                d_rt2[s] = t2;
                d_ni[s] = (uint8_t)need_int;
                d_nf[s] = (uint8_t)need_fp;
                d_wc[s] = (uint8_t)waiting;
                if (waiting == 0)
                    h32_push(rh_q, &rh_n, SH_CAP, s);
                if (g_rc)
                    goto bail;
            }
        }

        /* ---- fetch -------------------------------------------------- */
        if (!exhausted) {
            if (now < fetch_resume_at) {
                s_fetch_stall++;
            } else {
                int64_t budget = FETCH_W, room = FB_SIZE - fb_n;
                int64_t seq = next_seq, first_seq = seq;
                if (room < budget)
                    budget = room;
                while (budget) {
                    int32_t s;
                    if (seq >= n) {
                        exhausted = 1;
                        break;
                    }
                    s = (int32_t)seq;
                    seq++;
                    d_nb[s] = 0;
                    d_mra[s] = -1;
                    d_dra[s] = -1;
                    d_cat[s] = -1;
                    d_dtag[s] = -1;
                    d_dphys[s] = -1;
                    d_prev[s] = -1;
                    d_vpr[s] = -1;
                    d_rt1[s] = -1;
                    d_rt2[s] = -1;
                    d_xcnt[s] = 0;
                    d_fl[s] = 0;
                    d_ni[s] = d_nf[s] = d_wc[s] = 0;
                    fb_q[(fb_h + fb_n) % (FB_SIZE + 1)] = s;
                    fb_n++;
                    budget--;
                    if (OP_BR[r_op[s]]) {
#if F_PERFECT
                        int predicted = r_taken[s] != 0;
#else
                        int predicted =
                            bht[(r_pc[s] >> 2) & BHT_MASK] >= 2;
#endif
                        if (predicted != (r_taken[s] != 0)) {
                            d_fl[s] |= FL_MISP;
                            fetch_resume_at = FAR_FUTURE;
                            break;
                        }
                        if (predicted)
                            break;
                    }
                }
                next_seq = seq;
                s_fetched += seq - first_seq;
            }
        }

        /* ---- occupancy integrals + cycle advance -------------------- */
        s_int_occ += NPR_INT - pool_phys[0].count;
        s_fp_occ += NPR_FP - pool_phys[1].count;
#if F_IDLE
        if (rh_n) {
            now += 1;
        } else {
            int64_t target = now + 1;
            do {
                int64_t next_mem = -1, commit_bound = -1,
                    fetch_bound = -1, best, horizon_bound, skipped, j;
                int due_mem = 0, fetch_dead, stall_kind = 0;
                if (exhausted && !fb_n && !rob_n)
                    break;
                for (j = 0; j < pm_n; j++) {
                    int64_t t = d_mra[pm_q[j]];
                    if (t <= now) {
                        due_mem = 1;
                        break;
                    }
                    if (next_mem < 0 || t < next_mem)
                        next_mem = t;
                }
                if (due_mem)
                    break;
                if (rob_n) {
                    int32_t h = rob_q[rob_h];
                    if (d_fl[h] & FL_DONE) {
                        commit_bound = d_cat[h] + COMMIT_DELAY;
                        if (commit_bound <= now)
                            break;
                    }
                }
                fetch_dead = exhausted;
                if (!fetch_dead && fb_n < FB_SIZE) {
                    if (fetch_resume_at <= target)
                        break;
                    fetch_bound = fetch_resume_at;
                }
                if (fb_n) {
                    int32_t h = fb_q[fb_h];
                    int hcls = OP_DEST[r_op[h]];
                    if (rob_n >= ROB_SIZE) {
                        stall_kind = 1;
                    } else if (iq_count >= IQ_SIZE) {
                        stall_kind = 2;
                    }
#if SQ_CAP
                    else if (OP_STORE[r_op[h]] && sq_n >= SQ_CAP) {
                        stall_kind = 3;
                    }
#endif
                    else if (hcls < 0) {
                        break;
                    }
#if F_VP
                    else if (pool_vp[hcls].count) {
                        break;
                    }
#else
                    else if (pool_phys[hcls].count) {
                        break;
                    }
#endif
                    else {
                        stall_kind = 4;
                    }
                }
                best = ev_n ? evt_t[0] : -1;
                if (next_mem >= 0 && (best < 0 || next_mem < best))
                    best = next_mem;
                if (commit_bound >= 0 && (best < 0 || commit_bound < best))
                    best = commit_bound;
                if (fetch_bound >= 0 && (best < 0 || fetch_bound < best))
                    best = fetch_bound;
                horizon_bound = last_commit + HORIZON + 1;
                if (best < 0 || best > horizon_bound)
                    best = horizon_bound;
                if (best <= target)
                    break;
                skipped = best - target;
                s_int_occ += skipped * (NPR_INT - pool_phys[0].count);
                s_fp_occ += skipped * (NPR_FP - pool_phys[1].count);
                if (!fetch_dead) {
                    int64_t stalled =
                        (best < fetch_resume_at
                         ? best - 1 : fetch_resume_at - 1) - now;
                    if (stalled > 0)
                        s_fetch_stall += stalled;
                }
                if (stall_kind == 1)
                    s_rob_full += skipped;
                else if (stall_kind == 2)
                    s_iq_full += skipped;
                else if (stall_kind == 3)
                    s_sq_full += skipped;
                else if (stall_kind == 4)
                    s_no_reg += skipped;
                idle_skips++;
                idle_cycles_skipped += skipped;
                target = best;
            } while (0);
            now = target;
        }
#else
        now += 1;
#endif
        if (now - last_commit > HORIZON) {
            deadlock_head = rob_n ? (int64_t)rob_q[rob_h] : -1;
            g_rc = 1;
            break;
        }
    }

bail:
    rc = g_rc;
    if (rc <= 1) {
        counters[K_NOW] = now;
        counters[K_EXHAUSTED] = exhausted;
        counters[K_COMMITTED] = committed;
        counters[K_FETCHED] = s_fetched;
        counters[K_EXECUTIONS] = s_executions;
        counters[K_SQUASHES] = s_squashes;
        counters[K_ISSUE_ALLOC_BLOCKS] = s_issue_alloc;
        counters[K_BRANCHES] = s_branches;
        counters[K_MISPREDICTS] = s_mispredicts;
        counters[K_STALL_ROB_FULL] = s_rob_full;
        counters[K_STALL_IQ_FULL] = s_iq_full;
        counters[K_STALL_NO_REG] = s_no_reg;
        counters[K_STALL_SQ_FULL] = s_sq_full;
        counters[K_FETCH_STALL_CYCLES] = s_fetch_stall;
        counters[K_WB_PORT_DEFERS] = s_wb_defers;
        counters[K_INT_REG_OCCUPANCY_SUM] = s_int_occ;
        counters[K_FP_REG_OCCUPANCY_SUM] = s_fp_occ;
        counters[K_PEAK_ROB] = s_peak_rob;
        counters[K_IQ_COUNT] = iq_count;
        counters[K_FETCH_RESUME_AT] = fetch_resume_at;
        counters[K_NEXT_SEQ] = next_seq;
        counters[K_LAST_COMMIT] = last_commit;
        counters[K_IDLE_SKIPS] = idle_skips;
        counters[K_IDLE_CYCLES_SKIPPED] = idle_cycles_skipped;
        counters[K_CACHE_LOADS] = c_loads;
        counters[K_CACHE_LOAD_MISSES] = c_load_misses;
        counters[K_CACHE_STORES] = c_stores;
        counters[K_CACHE_STORE_MISSES] = c_store_misses;
        counters[K_CACHE_MSHR_STALLS] = c_mshr_stalls;
        counters[K_SQ_FORWARDS] = sq_forwards;
        counters[K_SQ_WAITS] = sq_waits;
        counters[K_PORT_CONFLICTS] = port_conflicts;
        counters[K_MSHR_ALLOCATIONS] = m_allocs;
        counters[K_MSHR_MERGES] = m_merges;
        counters[K_MSHR_REJECTIONS] = m_rejects;
        counters[K_BUS_TRANSFERS] = bus_transfers;
        counters[K_BUS_BUSY_CYCLES] = bus_busy;
        counters[K_BUS_FREE_AT] = bus_free;
#if F_RF
        counters[K_RF_READ_STALLS] = rf_read_stalls;
        counters[K_RF_BANK_CONFLICTS] = rf_bank_conflicts;
#else
        counters[K_RF_READ_STALLS] = 0;
        counters[K_RF_BANK_CONFLICTS] = 0;
#endif
        counters[K_REN_DECODE_STALLS] = ren_decode_stalls;
        counters[K_REN_VP_STALLS] = ren_vp_stalls;
        counters[K_REN_SQUASHES] = ren_squashes;
        counters[K_REN_ISSUE_BLOCKS] = ren_issue_blocks;
        counters[K_FL_INT_ALLOCS] = pool_phys[0].allocations;
        counters[K_FL_INT_MIN_FREE] = pool_phys[0].min_free;
        counters[K_FL_FP_ALLOCS] = pool_phys[1].allocations;
        counters[K_FL_FP_MIN_FREE] = pool_phys[1].min_free;
#if F_VP
        counters[K_VP_INT_ALLOCS] = pool_vp[0].allocations;
        counters[K_VP_INT_MIN_FREE] = pool_vp[0].min_free;
        counters[K_VP_FP_ALLOCS] = pool_vp[1].allocations;
        counters[K_VP_FP_MIN_FREE] = pool_vp[1].min_free;
#else
        counters[K_VP_INT_ALLOCS] = 0;
        counters[K_VP_INT_MIN_FREE] = 0;
        counters[K_VP_FP_ALLOCS] = 0;
        counters[K_VP_FP_MIN_FREE] = 0;
#endif
        {
            int k;
            for (k = 0; k < 6; k++) {
                counters[K_FU_ISSUES_0 + k] = fu_issues[k];
                counters[K_FU_STALLS_0 + k] = fu_stalls[k];
            }
        }
        counters[K_DEADLOCK_HEAD] = deadlock_head;
    }
    free_all();
    return rc;
}
