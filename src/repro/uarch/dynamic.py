"""Dynamic (in-flight) instruction state.

One :class:`DynInstr` wraps each trace record while it is in the window;
it carries the renaming fields (tags, allocated registers, undo state),
the scheduling fields the pipeline uses, and a per-instruction timeline
for statistics and golden tests.

The static properties of an operation (destination class, functional
unit, latency, memory/branch classification) are copied from the
pre-decoded :data:`~repro.isa.opcodes.OP_DECODE` table rather than
re-derived per record — construction is on the simulator's per-fetch
hot path.
"""

from __future__ import annotations

from repro.isa.opcodes import OP_DECODE


class DynInstr:
    """A trace record in flight through the pipeline."""

    __slots__ = (
        "rec", "seq", "dest_cls", "heap_item",
        # renaming state
        "src_tags", "dest_tag", "dest_phys", "prev_phys", "prev_vp",
        "vp_reg", "src_phys", "reserved", "squashed",
        # scheduling state
        "wait_count", "not_before", "in_iq", "issued",
        "mem_ready_at", "data_ready_at", "completed", "completed_at",
        "mispredicted", "need_int", "need_fp", "mshr_gated",
        # classification cache
        "is_load", "is_store", "is_br", "fu_kind", "latency", "pipelined",
        # timeline (for stats and golden tests)
        "fetch_at", "rename_at", "first_issue_at", "last_issue_at",
        "commit_at", "exec_count",
    )

    def __init__(self, rec, seq):
        self.rec = rec
        self.seq = seq
        # The (seq, instr) pair the scheduler's heaps order by; built
        # once so re-queueing (issue retries, squash re-execution, cache
        # retries) never allocates.
        self.heap_item = (seq, self)
        (self.dest_cls, self.is_load, self.is_store, self.is_br,
         self.fu_kind, self.latency, self.pipelined) = OP_DECODE[rec.op]
        self.src_tags = ()
        self.dest_tag = -1
        self.dest_phys = -1
        self.prev_phys = -1
        self.prev_vp = -1
        self.vp_reg = -1
        self.src_phys = ()
        self.reserved = False
        self.squashed = False
        self.wait_count = 0
        self.not_before = 0
        self.in_iq = False
        self.issued = False
        self.mem_ready_at = -1
        self.data_ready_at = -1
        self.completed = False
        self.completed_at = -1
        self.mispredicted = False
        self.need_int = 0
        self.need_fp = 0
        self.mshr_gated = False
        self.fetch_at = -1
        self.rename_at = -1
        self.first_issue_at = -1
        self.last_issue_at = -1
        self.commit_at = -1
        self.exec_count = 0

    def __repr__(self):
        return f"<DynInstr #{self.seq} {self.rec!r}>"
