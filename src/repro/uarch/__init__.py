"""Microarchitecture substrate: the out-of-order cycle engine."""

from repro.uarch.config import (
    ProcessorConfig,
    RenamingScheme,
    conventional_config,
    policy_config,
    virtual_physical_config,
)
from repro.uarch.compiled import engine_key, resolve_engine
from repro.uarch.dynamic import DynInstr
from repro.uarch.functional_units import FunctionalUnitPool
from repro.uarch.processor import Processor, SimulationDeadlock, simulate
from repro.uarch.regfile import RegisterFilePorts
from repro.uarch.stats import SimResult, SimStats
from repro.uarch.tracer import TimelineTracer

__all__ = [
    "ProcessorConfig",
    "RenamingScheme",
    "conventional_config",
    "policy_config",
    "virtual_physical_config",
    "RegisterFilePorts",
    "engine_key",
    "resolve_engine",
    "DynInstr",
    "FunctionalUnitPool",
    "Processor",
    "SimulationDeadlock",
    "simulate",
    "SimResult",
    "SimStats",
    "TimelineTracer",
]
