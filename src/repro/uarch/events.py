"""Event wheel: the cycle engine's timing queue.

An :class:`EventWheel` maps future cycles to lists of scheduled items
(execution completions; any future per-cycle event fits).  It replaces
a ``defaultdict(list)`` keyed by cycle with a calendar-queue layout:

* a fixed-size ring of per-cycle buckets covers the near future (all
  pipeline latencies and ordinary memory fills land here),
* an overflow map catches the rare event scheduled beyond the ring
  horizon (e.g. a line fill pushed far out by bus contention),
* a lazily-cleaned min-heap of scheduled cycles answers "when is the
  next event?" in O(1) amortized — which is what lets the pipeline's
  idle-cycle skip jump straight to the next scheduled event instead of
  spinning through empty cycles during a long miss stall.

The wheel assumes cycles are consumed in non-decreasing order (``pop``
is called with the simulator's monotonically advancing ``now``), which
the pipeline guarantees.  Two distinct live cycles can never collide in
one ring slot: ring entries are only created within ``horizon`` cycles
of the current base, so live ring cycles always span less than one full
revolution.
"""

from __future__ import annotations

from heapq import heappop, heappush


class EventWheel:
    """Calendar queue over simulation cycles."""

    __slots__ = ("_horizon", "_ring", "_overflow", "_times", "_base",
                 "pending")

    def __init__(self, horizon=128):
        if horizon < 2:
            raise ValueError("the wheel needs at least two slots")
        self._horizon = horizon
        self._ring = [None] * horizon  # slot -> [cycle, items] or None
        self._overflow = {}  # cycle -> items, for cycles >= base + horizon
        self._times = []  # min-heap of cycles holding scheduled events
        self._base = 0  # last cycle handed to pop()
        self.pending = 0  # scheduled-but-unpopped items (cheap emptiness test)

    def push(self, cycle, item):
        """Schedule ``item`` for ``cycle`` (must not precede the base)."""
        self.pending += 1
        if cycle - self._base < self._horizon:
            slot = cycle % self._horizon
            entry = self._ring[slot]
            if entry is not None:
                # Live ring cycles span < horizon, so a populated slot
                # can only belong to the same cycle.
                entry[1].append(item)
                return
            self._ring[slot] = [cycle, [item]]
        else:
            items = self._overflow.get(cycle)
            if items is not None:
                items.append(item)
                return
            self._overflow[cycle] = [item]
        heappush(self._times, cycle)

    def pop(self, now):
        """All items scheduled for cycle ``now`` (empty tuple when none)."""
        self._base = now
        times = self._times
        while times and times[0] <= now:
            heappop(times)
        items = ()
        entry = self._ring[now % self._horizon]
        if entry is not None and entry[0] == now:
            self._ring[now % self._horizon] = None
            items = entry[1]
        if self._overflow:
            extra = self._overflow.pop(now, None)
            if extra is not None:
                items = items + extra if items else extra
        if items:
            self.pending -= len(items)
        return items

    def due(self, now):
        """Cheap test: are there events scheduled at or before ``now``?

        Every bucket's cycle sits in the times-heap until popped, so
        peeking the heap head answers without touching ring or overflow.
        """
        times = self._times
        return bool(times) and times[0] <= now

    def next_time(self):
        """The earliest cycle holding events after the base, or ``None``."""
        times = self._times
        while times and times[0] <= self._base:
            heappop(times)
        return times[0] if times else None

    def __bool__(self):
        return self.next_time() is not None
