"""Cross-engine differential harness: compiled/native vs interpreted.

The compiled engine (:mod:`repro.uarch.compiled`) and the native engine
(:mod:`repro.uarch.native`) promise **bit-identical** ``SimStats`` with
the interpreter for every configuration.  This module is the machinery
that checks the promise over the configuration space rather than at
hand-picked points:

* a deterministic **config-space sampler** over the axes that select
  different specializations — renaming policy, register-file port
  model, idle skip, functional-unit mix, window geometry, physical
  register / NRR sizing;
* a **point comparator** running one (config, workload) point under
  the interpreter and a candidate engine and diffing the *complete*
  stats dumps;
* a **shrinker** that reduces a failing sampled point to a minimal
  failing configuration by resetting axes back to their defaults one
  at a time — so a property-suite failure reports the axis combination
  that matters, not forty irrelevant knobs.

Used by ``tests/uarch/test_engine_differential.py`` (the correctness
backbone of the compiled tier) and ``tools/engine_diff.py`` (the CI
differential-sample step).
"""

from __future__ import annotations

from random import Random

from repro.core.policy import resolve_policy
from repro.isa.opcodes import DEFAULT_FU_COUNTS, FUKind
from repro.trace.workloads import load_workload
from repro.uarch.config import policy_config
from repro.uarch.processor import Processor, SimulationDeadlock

#: Workloads the sampler draws from: one per behaviour family (integer,
#: FP-heavy, memory-heavy, branchy) keeps runs short but representative.
DIFF_WORKLOADS = ("li", "swim", "compress", "go")

#: Scarce functional-unit mix: one unit per kind exercises structural
#: stalls and the issue-stage FU memoization.
SCARCE_FUS = {kind: 1 for kind in FUKind}

#: The sampled axes.  The *first* value of every axis is its default;
#: the shrinker walks failing points back toward it.  Axis values must
#: be hashable and JSON-representable (tuples of scalars).
AXES = {
    "policy": ("conventional", "vp-writeback", "vp-issue", "early-release"),
    # (rf_model, banks, bank_read_ports, bank_write_ports)
    "rf": ((False, 1, 1, 1), (True, 1, 16, 8), (True, 4, 2, 1),
           (True, 2, 4, 2)),
    "idle_skip": (True, False),
    "fus": ("default", "scarce"),
    # (widths, rob, iq, fetch_buffer)
    "window": ((8, 128, 128, 16), (2, 32, 16, 4), (4, 64, 32, 8)),
    # (int_phys/fp_phys, nrr) — nrr only consumed by NRR policies;
    # every pair keeps 1 <= nrr <= phys - 32 valid.
    "regs": ((64, 8), (64, 32), (48, 4), (48, 16), (64, 1)),
    "retry_gating": (False, True),
    "perfect_bp": (False, True),
}

#: Per-point run length: small enough for a sampled CI sweep, long
#: enough to reach steady state past the warm-up skip.
DIFF_INSTRUCTIONS = 6_000
DIFF_SKIP = 500


def default_choice():
    """The all-defaults axis choice (first value of every axis)."""
    return {axis: values[0] for axis, values in AXES.items()}


def sample_space(count, seed=0):
    """``count`` deterministic axis choices drawn uniformly per axis.

    The first :data:`len(AXES)` samples are *single-axis* probes (one
    axis moved off its default at a time) so small sample budgets still
    touch every axis; the rest are uniform random combinations.
    """
    rng = Random(seed)
    choices = []
    axes = list(AXES)
    for i in range(count):
        choice = default_choice()
        if i < len(axes):
            axis = axes[i]
            values = AXES[axis]
            choice[axis] = values[1 + (i % (len(values) - 1))]
        else:
            for axis, values in AXES.items():
                choice[axis] = values[rng.randrange(len(values))]
        choices.append(choice)
    return choices


def build_config(choice):
    """The ``ProcessorConfig`` an axis choice describes."""
    rf_model, banks, brp, bwp = choice["rf"]
    width, rob, iq, fb = choice["window"]
    phys, nrr = choice["regs"]
    overrides = dict(
        fetch_width=width, rename_width=width, issue_width=width,
        commit_width=width, rob_size=rob, iq_size=iq,
        fetch_buffer_size=fb, int_phys=phys, fp_phys=phys,
        rf_model=rf_model, rf_banks=banks, rf_bank_read_ports=brp,
        rf_bank_write_ports=bwp,
        perfect_branch_prediction=choice["perfect_bp"],
        retry_gating=choice["retry_gating"],
    )
    if choice["fus"] == "scarce":
        overrides["fu_counts"] = dict(SCARCE_FUS)
    policy = choice["policy"]
    nrr_arg = nrr if resolve_policy(policy).uses_nrr else None
    return policy_config(policy, nrr=nrr_arg, **overrides)


def run_point(choice, workload, engine, instructions=DIFF_INSTRUCTIONS,
              skip=DIFF_SKIP, seed=1234):
    """One (choice, workload) point under one engine.

    Returns ``(stats_dict, engine_used)``.  A
    :class:`SimulationDeadlock` is folded into the result (both engines
    must deadlock identically), any other exception propagates.
    """
    from repro.trace.generator import materialized_trace

    records = materialized_trace(load_workload(workload), seed,
                                 skip + instructions)
    processor = Processor(build_config(choice),
                          idle_skip=choice["idle_skip"], engine=engine)
    try:
        result = processor.run(iter(records), max_instructions=instructions,
                               skip=skip)
        stats = result.stats.to_dict()
    except SimulationDeadlock as exc:
        stats = {"deadlock": str(exc).split(";")[0]}
    return stats, processor.engine_used


def expected_tier(choice, engine):
    """The tier a point is *expected* to run on when ``engine`` is
    requested.

    The native tier only lowers fully-inlined specializations; the
    early-release policy keeps its rename hooks out-of-line, so a
    native request lands on the compiled tier by the documented
    fallback ladder — expected, not a failure.
    """
    if engine == "native" and choice["policy"] == "early-release":
        return "compiled"
    return engine


def compare_point(choice, workload, engine="compiled", **kwargs):
    """Diff one point between the interpreter and ``engine``.

    Returns a dict: ``ok`` (bit-identical and the point ran on
    :func:`expected_tier` — no silent fallback), ``engine_used``, and
    ``mismatches`` — the per-field ``{field: (interp, candidate)}``
    map, empty when identical.
    """
    interp, _ = run_point(choice, workload, "interp", **kwargs)
    candidate, used = run_point(choice, workload, engine, **kwargs)
    expected = expected_tier(choice, engine)
    if expected != engine:
        # The fallback itself is counted in engine_fallbacks; on an
        # *expected* fallback that counter legitimately differs from
        # the interpreter's zero, so exclude it from the bit-diff.
        interp = {k: v for k, v in interp.items()
                  if k != "engine_fallbacks"}
        candidate = {k: v for k, v in candidate.items()
                     if k != "engine_fallbacks"}
    mismatches = {
        field: (interp.get(field), candidate.get(field))
        for field in sorted(set(interp) | set(candidate))
        if interp.get(field) != candidate.get(field)
    }
    return {
        "ok": not mismatches and used == expected,
        "engine_used": used,
        "mismatches": mismatches,
    }


def shrink(choice, workload, **kwargs):
    """Minimal failing configuration for a failing sampled point.

    Resets each non-default axis back to its default while the point
    still fails, iterating to a fixpoint; then tries to move the
    failure onto the first diff workload.  Returns ``(choice,
    workload)`` — every remaining non-default axis is necessary for
    the failure (1-minimal, the classic ddmin guarantee).
    """
    defaults = default_choice()
    changed = True
    while changed:
        changed = False
        for axis in AXES:
            if choice[axis] == defaults[axis]:
                continue
            trial = dict(choice)
            trial[axis] = defaults[axis]
            if not compare_point(trial, workload, **kwargs)["ok"]:
                choice = trial
                changed = True
    if workload != DIFF_WORKLOADS[0]:
        if not compare_point(choice, DIFF_WORKLOADS[0], **kwargs)["ok"]:
            workload = DIFF_WORKLOADS[0]
    return choice, workload


def describe(choice, workload):
    """One-line human-readable description of a sampled point."""
    defaults = default_choice()
    moved = [f"{axis}={choice[axis]!r}" for axis in AXES
             if choice[axis] != defaults[axis]]
    return f"{workload}: " + (", ".join(moved) if moved else "all-defaults")


def run_sample(count, seed=0, workloads=DIFF_WORKLOADS, shrink_failures=True,
               progress=None, **kwargs):
    """Run a sampled differential sweep; the CI entry point's core.

    Every sampled config is checked on every workload (``count`` ×
    ``len(workloads)`` points).  Returns a report dict with ``points``,
    ``failures`` (shrunk when requested), and ``ok``.
    """
    choices = sample_space(count, seed)
    failures = []
    points = 0
    for i, choice in enumerate(choices):
        for workload in workloads:
            outcome = compare_point(choice, workload, **kwargs)
            points += 1
            if not outcome["ok"]:
                failing_choice, failing_workload = choice, workload
                if shrink_failures:
                    failing_choice, failing_workload = shrink(
                        dict(choice), workload, **kwargs)
                    outcome = compare_point(failing_choice,
                                            failing_workload, **kwargs)
                failures.append({
                    "point": describe(failing_choice, failing_workload),
                    "choice": {k: list(v) if isinstance(v, tuple) else v
                               for k, v in failing_choice.items()},
                    "workload": failing_workload,
                    "engine_used": outcome["engine_used"],
                    "mismatches": {k: list(v) for k, v
                                   in outcome["mismatches"].items()},
                })
            if progress:
                progress(points, len(choices) * len(workloads))
    return {
        "configs": len(choices),
        "workloads": list(workloads),
        "points": points,
        "failures": failures,
        "ok": not failures,
    }
