"""Pipeline timeline tracing.

Attach a :class:`TimelineTracer` to a processor to capture the per-stage
timeline of every committed instruction and render it as a text chart
(in the spirit of gem5's O3 pipeline viewer)::

    tracer = TimelineTracer.attach(processor)
    processor.run(trace)
    print(tracer.render())

Columns: F = fetched, R = renamed, I = (last) issue, C = execution
complete, T = committed; dots fill the spans between stages.  The
``exec_count`` column makes the virtual-physical scheme's re-executions
visible directly.
"""

from __future__ import annotations


class TimelineEntry:
    """The committed timeline of one instruction."""

    __slots__ = ("seq", "text", "fetch", "rename", "issue", "complete",
                 "commit", "exec_count")

    def __init__(self, instr):
        self.seq = instr.seq
        self.text = repr(instr.rec)
        self.fetch = instr.fetch_at
        self.rename = instr.rename_at
        self.issue = instr.last_issue_at
        self.complete = instr.completed_at
        self.commit = instr.commit_at
        self.exec_count = instr.exec_count


class TimelineTracer:
    """Collects committed-instruction timelines from a processor."""

    def __init__(self, max_entries=10_000):
        self.max_entries = max_entries
        self.entries = []
        self.dropped = 0

    @classmethod
    def attach(cls, processor, max_entries=10_000):
        """Wrap the processor's commit hook; returns the tracer."""
        tracer = cls(max_entries=max_entries)
        renamer = processor.renamer
        original = renamer.on_commit

        def spying_commit(instr, _original=original, _tracer=tracer):
            _tracer._record(instr)
            _original(instr)

        renamer.on_commit = spying_commit
        return tracer

    def _record(self, instr):
        if len(self.entries) >= self.max_entries:
            self.dropped += 1
            return
        entry = TimelineEntry(instr)
        # commit_at is stamped by the pipeline *after* on_commit returns,
        # so read it lazily at render time instead.
        entry.commit = -1
        self.entries.append((entry, instr))

    def _materialized(self):
        out = []
        for entry, instr in self.entries:
            entry.commit = instr.commit_at
            out.append(entry)
        return out

    def render(self, first=0, count=40, width=70):
        """Text chart of ``count`` committed instructions from ``first``."""
        entries = self._materialized()[first:first + count]
        if not entries:
            return "(no committed instructions traced)"
        t0 = min(e.fetch for e in entries)
        t1 = max(e.commit for e in entries)
        span = max(1, t1 - t0)
        scale = min(1.0, (width - 1) / span)

        def col(cycle):
            return int((cycle - t0) * scale)

        lines = [f"cycles {t0}..{t1}  (one column ~ {1 / scale:.1f} cycles)"]
        for e in entries:
            chart = [" "] * width
            for lo, hi in ((e.fetch, e.rename), (e.rename, e.issue),
                           (e.issue, e.complete), (e.complete, e.commit)):
                if lo < 0 or hi < 0:
                    continue
                for c in range(col(lo) + 1, col(hi)):
                    chart[c] = "."
            for cycle, mark in ((e.fetch, "F"), (e.rename, "R"),
                                (e.issue, "I"), (e.complete, "C"),
                                (e.commit, "T")):
                if cycle >= 0:
                    chart[col(cycle)] = mark
            rerun = f" x{e.exec_count}" if e.exec_count > 1 else ""
            lines.append(f"{e.seq:5d} |{''.join(chart)}| {e.text}{rerun}")
        return "\n".join(lines)

    def stage_latencies(self):
        """Mean cycles spent per stage across traced instructions."""
        entries = self._materialized()
        issued = [e for e in entries if e.issue >= 0]
        if not entries:
            return {}
        mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
        return {
            "fetch_to_rename": mean([e.rename - e.fetch for e in entries]),
            "rename_to_issue": mean([e.issue - e.rename for e in issued]),
            "issue_to_complete": mean([e.complete - e.issue for e in issued]),
            "complete_to_commit": mean([e.commit - e.complete
                                        for e in entries]),
            "mean_executions": mean([e.exec_count for e in entries]),
        }
