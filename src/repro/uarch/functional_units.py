"""Functional-unit pool.

Table 1 units.  Every unit accepts at most one new operation per cycle;
pipelined operations then free the unit immediately, while divisions
(integer and FP) occupy their unit for the whole latency.
"""

from __future__ import annotations

from repro.isa.opcodes import FUKind


class FunctionalUnitPool:
    """Per-kind unit tracking with non-pipelined reservations."""

    def __init__(self, counts):
        self._busy_until = {}
        self._issued_cycle = {}
        for kind in FUKind:
            count = counts.get(kind, 0)
            if count < 1:
                raise ValueError(f"no {kind.name} units configured")
            self._busy_until[kind] = [0] * count
            self._issued_cycle[kind] = [-1] * count
        self.issues = {kind: 0 for kind in FUKind}
        self.structural_stalls = {kind: 0 for kind in FUKind}

    def can_issue(self, kind, now):
        """Is a unit of ``kind`` available at cycle ``now``? (No claim.)"""
        return self.find_free(kind, now) >= 0

    def find_free(self, kind, now):
        """Index of a free unit of ``kind`` at ``now``, or -1.

        The pipeline pairs this with :meth:`claim_unit` so availability
        check and claim cost one pool scan, not two.
        """
        busy = self._busy_until[kind]
        issued = self._issued_cycle[kind]
        for i in range(len(busy)):
            if busy[i] <= now and issued[i] != now:
                return i
        self.structural_stalls[kind] += 1
        return -1

    def claim_unit(self, kind, index, now, latency, pipelined):
        """Claim the unit ``index`` returned by :meth:`find_free`."""
        self._issued_cycle[kind][index] = now
        if not pipelined:
            self._busy_until[kind][index] = now + latency
        self.issues[kind] += 1

    def claim(self, kind, now, latency, pipelined):
        """Claim a unit of ``kind``; callers check :meth:`can_issue` first."""
        busy = self._busy_until[kind]
        issued = self._issued_cycle[kind]
        for i in range(len(busy)):
            if busy[i] <= now and issued[i] != now:
                issued[i] = now
                if not pipelined:
                    busy[i] = now + latency
                self.issues[kind] += 1
                return
        raise RuntimeError(f"claim on a busy {kind.name} unit")

    def try_issue(self, kind, now, latency, pipelined):
        """Claim a unit of ``kind`` at cycle ``now``.  Returns success."""
        if not self.can_issue(kind, now):
            return False
        self.claim(kind, now, latency, pipelined)
        return True

    def busy_units(self, kind, now):
        """How many units of ``kind`` hold a non-pipelined reservation."""
        return sum(1 for t in self._busy_until[kind] if t > now)
