"""Register-file port & bank contention model.

The paper's machine charges register-file *capacity* (the number of
physical registers) but reads and writes an idealized file: the engine's
legacy port checks are fixed per-class budgets (``read_ports`` /
``write_ports``) with no structure below them.  The read-port-reduction
literature (Los, "Efficient Read-Port-Count Reduction Schemes for the
Centralized Physical Register File") shows the other half of the
register-file cost story: ports dominate area/energy, and reducing them
costs IPC through contention.  This module models that dimension.

:class:`RegisterFilePorts` arbitrates, per simulated cycle:

* a per-class **read-port budget** — an instruction issues only if its
  pre-counted read-port needs (``DynInstr.need_int`` / ``need_fp``,
  counted once at dispatch from the tags it will read at issue) fit in
  the ports remaining this cycle;
* a per-class **write-port budget** — completion defers to the next
  cycle when the class's write ports are exhausted (same contract as
  the legacy check);
* optional **banking** — each class's file is split into
  ``rf_banks`` banks (a register lives in bank ``ident % banks``); a
  bank serves at most ``rf_bank_read_ports`` reads and
  ``rf_bank_write_ports`` writes per cycle, so two sources hitting the
  same bank can conflict even when class-level ports are free.  Banks
  are addressed by *dependence tag*, which is exactly the name the
  issuing hardware has in hand — physical registers under conventional
  renaming, VP tags under the virtual-physical scheme — so port
  pressure is accounted per renaming policy.

The model is **off by default** (``ProcessorConfig.rf_model = False``):
with it off the engine runs the legacy inline checks and every golden
``SimStats`` dump stays bit-identical.  With it on and the neutral
configuration (ports equal to the legacy budgets, one bank), timing is
also identical — only the new ``rf_*`` diagnostic counters appear —
which ``tests/uarch/test_regfile.py`` pins.
"""

from __future__ import annotations

from repro.core.tags import TAG_CLASS_SHIFT

_IDENT_MASK = (1 << TAG_CLASS_SHIFT) - 1


class RegisterFilePorts:
    """Per-cycle read/write port and bank arbitration for one run."""

    __slots__ = (
        "read_ports", "write_ports", "banks",
        "bank_read_ports", "bank_write_ports",
        "_reads_left", "_writes_left", "_bank_reads", "_bank_writes",
        "_granted_slots", "read_stalls", "bank_conflicts",
    )

    def __init__(self, config):
        self.read_ports = (config.rf_read_ports
                           if config.rf_read_ports is not None
                           else config.read_ports)
        self.write_ports = (config.rf_write_ports
                            if config.rf_write_ports is not None
                            else config.write_ports)
        self.banks = config.rf_banks
        self.bank_read_ports = config.rf_bank_read_ports
        self.bank_write_ports = config.rf_bank_write_ports
        self._reads_left = [0, 0]  # (INT, FP) budgets, reset per cycle
        self._writes_left = [0, 0]
        # One slot per (class, bank); index = cls * banks + ident % banks.
        self._bank_reads = [0] * (2 * self.banks)
        self._bank_writes = [0] * (2 * self.banks)
        self._granted_slots = ()  # the slots the last granting can_read saw
        self.read_stalls = 0  # issues blocked by ports or banks
        self.bank_conflicts = 0  # blocks caused specifically by a bank

    # -- per-cycle resets --------------------------------------------------

    def start_read_cycle(self):
        """Reset the read-side budgets (the engine's issue stage)."""
        reads = self._reads_left
        reads[0] = reads[1] = self.read_ports
        if self.banks > 1:
            ports = self.bank_read_ports
            bank_reads = self._bank_reads
            for i in range(len(bank_reads)):
                bank_reads[i] = ports

    def start_write_cycle(self):
        """Reset the write-side budgets (the engine's write-back stage)."""
        writes = self._writes_left
        writes[0] = writes[1] = self.write_ports
        if self.banks > 1:
            ports = self.bank_write_ports
            bank_writes = self._bank_writes
            for i in range(len(bank_writes)):
                bank_writes[i] = ports

    # -- arbitration -------------------------------------------------------

    def _read_slots(self, instr):
        """The (class, bank) slot of every tag ``instr`` reads at issue.

        A store reads only its base address at issue (the value moves
        at completion) — the same rule the dispatch-time need counting
        applies.
        """
        tags = instr.src_tags
        if instr.is_store:
            tags = tags[:1]
        banks = self.banks
        return [((tag >> TAG_CLASS_SHIFT) * banks
                 + (tag & _IDENT_MASK) % banks) for tag in tags]

    def can_read(self, instr):
        """Whether this cycle's read ports can serve ``instr``'s issue.

        Check only — the engine probes ports before the functional-unit
        and issue-hook checks and charges the grant with
        :meth:`claim_read` once the issue actually launches, so a
        refused issue never consumes ports.  A refusal bumps the stall
        counters (``read_stalls``; ``bank_conflicts`` when a bank, not
        the class budget, was the blocker).  A grant caches the
        computed bank slots, which the immediately following
        :meth:`claim_read` for the same instruction reuses.
        """
        need_int = instr.need_int
        need_fp = instr.need_fp
        reads_left = self._reads_left
        if need_int > reads_left[0] or need_fp > reads_left[1]:
            self.read_stalls += 1
            return False
        if self.banks > 1 and (need_int or need_fp):
            slots = self._read_slots(instr)
            bank_reads = self._bank_reads
            if len(slots) == 2 and slots[0] == slots[1]:
                if bank_reads[slots[0]] < 2:
                    self.read_stalls += 1
                    self.bank_conflicts += 1
                    return False
            elif any(bank_reads[slot] < 1 for slot in slots):
                self.read_stalls += 1
                self.bank_conflicts += 1
                return False
            self._granted_slots = slots
        return True

    def claim_read(self, instr):
        """Charge the read ports the granting :meth:`can_read` for the
        same instruction just saw (its cached bank slots included)."""
        reads_left = self._reads_left
        reads_left[0] -= instr.need_int
        reads_left[1] -= instr.need_fp
        if self.banks > 1 and (instr.need_int or instr.need_fp):
            bank_reads = self._bank_reads
            for slot in self._granted_slots:
                bank_reads[slot] -= 1

    def can_write(self, instr):
        """Whether a write port is free for ``instr``'s destination.

        The caller guarantees the instruction writes a register
        (``dest_cls is not None``).  Check only — the engine probes
        availability *before* running the policy's completion hook (a
        port-blocked completion defers without attempting allocation,
        the legacy contract) and charges the grant with
        :meth:`claim_write` once the hook succeeds.  A bank refusal
        counts one bank conflict.
        """
        if self._writes_left[instr.dest_cls] == 0:
            return False
        if self.banks > 1:
            tag = instr.dest_tag
            slot = ((tag >> TAG_CLASS_SHIFT) * self.banks
                    + (tag & _IDENT_MASK) % self.banks)
            if self._bank_writes[slot] == 0:
                self.bank_conflicts += 1
                return False
        return True

    def claim_write(self, instr):
        """Charge the write port(s) :meth:`can_write` just granted."""
        self._writes_left[instr.dest_cls] -= 1
        if self.banks > 1:
            tag = instr.dest_tag
            self._bank_writes[(tag >> TAG_CLASS_SHIFT) * self.banks
                              + (tag & _IDENT_MASK) % self.banks] -= 1
