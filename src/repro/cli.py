"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    Simulate one workload under one renaming scheme and print a summary.
``compare``
    Run conventional and virtual-physical side by side.
``table2`` / ``figure4`` / ``figure5`` / ``figure6`` / ``figure7``
    Regenerate a paper artifact and print it.
``ablation`` / ``window-scaling`` / ``branch-sensitivity``
    Run the extra experiments that go beyond the paper's figures.
``workloads``
    List the available benchmark models.
``dump-trace``
    Write the first N records of a workload's dynamic trace to a file.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.virtual_physical import AllocationStage
from repro.trace.generator import SyntheticTrace
from repro.trace.io import save_trace
from repro.trace.workloads import WORKLOADS, load_workload
from repro.uarch.config import (
    ProcessorConfig,
    RenamingScheme,
    conventional_config,
    virtual_physical_config,
)
from repro.uarch.processor import simulate

_SCHEMES = ("conventional", "vp-writeback", "vp-issue", "early-release")


def _config_for(args):
    changes = {}
    if args.phys is not None:
        changes["int_phys"] = args.phys
        changes["fp_phys"] = args.phys
    if args.scheme == "conventional":
        return conventional_config(**changes)
    if args.scheme == "early-release":
        return ProcessorConfig(scheme=RenamingScheme.EARLY_RELEASE).with_(**changes)
    allocation = (AllocationStage.ISSUE if args.scheme == "vp-issue"
                  else AllocationStage.WRITEBACK)
    nrr = args.nrr
    if nrr is None:
        phys = changes.get("int_phys", 64)
        nrr = phys - 32
    return virtual_physical_config(nrr=nrr, allocation=allocation, **changes)


def _add_run_args(parser):
    parser.add_argument("workload", choices=sorted(WORKLOADS))
    parser.add_argument("-n", "--instructions", type=int, default=30_000)
    parser.add_argument("--skip", type=int, default=3_000)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--phys", type=int, default=None,
                        help="physical registers per file (default 64)")


def cmd_run(args):
    result = simulate(_config_for(args), workload=args.workload,
                      max_instructions=args.instructions, skip=args.skip,
                      seed=args.seed)
    print(result.summary())
    stats = result.stats
    print(f"  squashes={stats.squashes} "
          f"issue-blocks={stats.issue_alloc_blocks} "
          f"rename-stalls(reg)={stats.stall_no_reg} "
          f"rob-full={stats.stall_rob_full} "
          f"avg-regs int/fp={stats.avg_reg_occupancy('int'):.1f}/"
          f"{stats.avg_reg_occupancy('fp'):.1f}")
    return 0


def cmd_compare(args):
    ipcs = {}
    for scheme in ("conventional", "vp-writeback"):
        args.scheme = scheme
        result = simulate(_config_for(args), workload=args.workload,
                          max_instructions=args.instructions, skip=args.skip,
                          seed=args.seed)
        ipcs[scheme] = result.ipc
        print(f"{scheme:15s}: {result.summary()}")
    speedup = ipcs["vp-writeback"] / ipcs["conventional"]
    print(f"speedup        : {speedup:.2f}x")
    return 0


def cmd_workloads(args):
    for name in sorted(WORKLOADS):
        wl = load_workload(name)
        kernels = ", ".join(k.name for k in wl.kernels)
        print(f"{name:10s} [{wl.category}]  kernels: {kernels}")
    return 0


def cmd_dump_trace(args):
    trace = SyntheticTrace(load_workload(args.workload), args.seed)
    count = save_trace(trace.take(args.instructions), args.output)
    print(f"wrote {count} records to {args.output}")
    return 0


def _experiment_command(runner_name):
    def cmd(args):
        from repro import experiments

        runner = getattr(experiments, runner_name)
        result = runner()
        print(result.format())
        return 0

    return cmd


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Virtual-Physical Registers' (HPCA 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload")
    _add_run_args(run)
    run.add_argument("--scheme", choices=_SCHEMES, default="conventional")
    run.add_argument("--nrr", type=int, default=None)
    run.set_defaults(fn=cmd_run)

    compare = sub.add_parser("compare", help="conventional vs virtual-physical")
    _add_run_args(compare)
    compare.add_argument("--nrr", type=int, default=None)
    compare.set_defaults(fn=cmd_compare)

    for name, runner in (
        ("table2", "run_table2"),
        ("figure4", "run_figure4"),
        ("figure5", "run_figure5"),
        ("figure6", "run_figure6"),
        ("figure7", "run_figure7"),
        ("ablation", "run_ablation"),
        ("window-scaling", "run_window_scaling"),
        ("branch-sensitivity", "run_branch_sensitivity"),
    ):
        p = sub.add_parser(name, help=f"regenerate {name} from the paper")
        p.set_defaults(fn=_experiment_command(runner))

    wl = sub.add_parser("workloads", help="list workload models")
    wl.set_defaults(fn=cmd_workloads)

    dump = sub.add_parser("dump-trace", help="serialize a synthetic trace")
    dump.add_argument("workload", choices=sorted(WORKLOADS))
    dump.add_argument("output")
    dump.add_argument("-n", "--instructions", type=int, default=10_000)
    dump.add_argument("--seed", type=int, default=1234)
    dump.set_defaults(fn=cmd_dump_trace)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
