"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    Simulate one workload under one renaming scheme and print a summary.
``compare``
    Run conventional and virtual-physical side by side.
``sweep``
    Run an arbitrary NRR × allocation-stage × workload grid through the
    batch engine and report IPC speedups plus wall-clock accounting.
``port-sweep``
    Sweep the register-file read-port count per renaming policy with
    the port/bank contention model enabled (IPC vs. ports × policy;
    ``--check-monotone`` gates on IPC never rising as ports shrink).
``table2`` / ``figure4`` / ``figure5`` / ``figure6`` / ``figure7``
    Regenerate a paper artifact and print it.
``ablation`` / ``window-scaling`` / ``branch-sensitivity``
    Run the extra experiments that go beyond the paper's figures.
``bench``
    Measure engine throughput (KIPS) per workload × renamer and write
    ``BENCH_engine.json``; optionally gate against a committed baseline.
    ``--engine both`` A/Bs interp vs compiled; ``--engine all`` measures
    all three tiers including the C-compiled native engine.
``engines``
    Report cycle-engine tier availability on this host: the C toolchain
    probe, the native artifact cache, and what ``auto`` resolves to.
``cache compact``
    Merge the persistent store's writer segments and rewrite it keeping
    the newest record per key (``--prune-stale`` also drops records
    from older code versions).
``cache stats``
    Operator summary of the store: record/segment counts, bytes, and a
    per-workload breakdown (including CRC failures and quarantined
    lines).
``cache verify``
    Integrity-scan every record (CRC32 checksums); ``--repair``
    quarantines corrupt lines to ``corrupt-<ts>.jsonl`` and rewrites
    the affected files.  Exits 1 when corruption is found and left in
    place.
``serve``
    Run the simulation-as-a-service HTTP gateway
    (:mod:`repro.service`): clients POST RunSpec grids and stream
    results back as NDJSON; set ``REPRO_TOKEN`` to require auth.
    Jobs are journaled to a WAL under ``REPRO_CACHE_DIR/gateway``
    (``--no-journal`` disables) and ``--resume`` reloads unfinished
    jobs after a crash.
``submit`` / ``status`` / ``fetch``
    The gateway's client side: submit a sweep grid over HTTP (streams
    points as they finish), poll a job, or collect its results.
``worker``
    Serve simulations to remote coordinators: ``repro worker --serve``
    runs the daemon behind ``--executor remote`` and records a
    ``worker-<host>-<pid>.json`` descriptor under ``REPRO_CACHE_DIR``.
``cluster``
    Inspect or stop a set of workers: ``repro cluster status --workers
    host1,host2`` pings each; ``repro cluster stop`` shuts them down.
    With no ``--workers``, addresses come from the worker descriptors
    in the cache directory.
``workloads``
    List the available benchmark models.
``dump-trace``
    Write the first N records of a workload's dynamic trace to a file.
``trace``
    Render the telemetry spans recorded for one trace id (see
    :mod:`repro.obs.tracing`): a wall-clock-ordered timeline across the
    gateway, coordinator, and workers that handled the request.
``top``
    Aggregate the recorded telemetry spans: span counts, total and p95
    duration, and error counts per phase/name, plus per-host/pid
    activity — a quick "what is the cluster spending time on" view.

Every simulating command accepts ``--jobs N`` (worker processes;
default ``REPRO_JOBS`` or the CPU count), ``--executor
{serial,pool,persistent,remote}`` (``persistent`` keeps a warm worker
pool across batches; ``remote`` fans out across ``repro worker``
daemons), ``--workers host1[:port],host2`` (implies ``remote``),
``--no-cache`` (skip the persistent result store under
``REPRO_CACHE_DIR``), and the fault-handling knobs
``--heartbeat`` / ``--retries`` / ``--connect-timeout`` /
``--run-timeout`` / ``--on-cluster-loss``
(``REPRO_HEARTBEAT`` / ``REPRO_RETRIES`` / ``REPRO_CONNECT_TIMEOUT`` /
``REPRO_RUN_TIMEOUT`` / ``REPRO_ON_CLUSTER_LOSS``).  ``--faults``
activates a deterministic fault-injection plan
(:mod:`repro.engine.faults`) for chaos testing; see
``docs/resilience.md``.  ``--profile`` turns on the engine profiler
(``REPRO_PROFILE``): each result carries throughput and stall
composition in ``extra["profile"]`` — observability only, never
persisted, golden stats stay bit-identical.  ``repro sweep --trace``
mints a trace id and threads it through every span the grid produces;
``repro trace <id>`` renders the timeline afterwards.  See
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.policy import AllocationStage, policy_names, resolve_policy
from repro.engine import RunSpec
from repro.experiments.runner import ResultCache
from repro.trace.generator import SyntheticTrace
from repro.trace.io import save_trace
from repro.trace.workloads import WORKLOADS, load_workload
from repro.uarch.config import (
    conventional_config,
    policy_config,
    virtual_physical_config,
)

# --scheme choices come from the policy registry, read inside
# build_parser() so policies registered before parsing (e.g. by a
# plugin that imported this module first) are accepted with no edits
# here.
_ALLOCATIONS = {
    "writeback": (AllocationStage.WRITEBACK,),
    "issue": (AllocationStage.ISSUE,),
    "both": (AllocationStage.WRITEBACK, AllocationStage.ISSUE),
}


def _progress_line(done, total, spec):
    sys.stderr.write(f"\r  {done}/{total} runs")
    if done == total:
        sys.stderr.write("\n")
    sys.stderr.flush()


def _cache_for_args(args, progress=None):
    """The result cache an invocation's --jobs/--no-cache imply.

    ``persistent=None`` (the no-flag case) defers to the
    ``REPRO_NO_CACHE`` environment check inside :class:`ResultCache`.
    """
    return ResultCache(jobs=getattr(args, "jobs", None),
                       persistent=(False if getattr(args, "no_cache", False)
                                   else None),
                       progress=progress,
                       executor=getattr(args, "executor", None),
                       workers=getattr(args, "workers", None),
                       heartbeat=getattr(args, "heartbeat", None),
                       retries=getattr(args, "retries", None),
                       connect_timeout=getattr(args, "connect_timeout",
                                               None),
                       run_timeout=getattr(args, "run_timeout", None),
                       on_cluster_loss=getattr(args, "on_cluster_loss",
                                               None))


def _config_for(args):
    """The ProcessorConfig an invocation's --scheme/--phys/--nrr imply,
    resolved through the policy registry."""
    changes = {}
    if args.phys is not None:
        changes["int_phys"] = args.phys
        changes["fp_phys"] = args.phys
    if getattr(args, "engine", None):
        changes["engine"] = args.engine
    nrr = None
    if resolve_policy(args.scheme).uses_nrr:
        nrr = getattr(args, "nrr", None)
        if nrr is None:
            nrr = changes.get("int_phys", 64) - 32
    return policy_config(args.scheme, nrr=nrr, **changes)


def _add_engine_tier_arg(parser, both=False):
    """--engine: the cycle-engine tier (distinct from the *batch*
    engine's --jobs/--executor arguments)."""
    choices = (["auto", "interp", "compiled", "native"]
               + (["both", "all"] if both else []))
    parser.add_argument(
        "--engine", choices=choices, default=None,
        help="cycle-engine tier: 'interp' is the reference interpreter, "
             "'compiled' renders per-config specialized loops, 'native' "
             "C-compiles them (both bit-identical to interp, faster; "
             "native needs a C toolchain — see `repro engines`), 'auto' "
             "(default) defers to REPRO_ENGINE"
             + ("; 'both' measures an interp/compiled A/B, 'all' all "
                "three tiers" if both else ""))


def _add_engine_args(parser):
    from repro.engine import EXECUTOR_KINDS

    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: REPRO_JOBS or "
                             "the CPU count)")
    parser.add_argument("--executor", choices=EXECUTOR_KINDS, default=None,
                        help="execution strategy (default: serial for one "
                             "job, a per-batch pool otherwise; 'persistent' "
                             "reuses warm workers across batches; 'remote' "
                             "fans out across `repro worker` daemons)")
    parser.add_argument("--workers", default=None,
                        help="comma-separated worker addresses "
                             "host[:port] for the remote executor "
                             "(implies --executor remote; default port "
                             "8642 or REPRO_WORKER_PORT)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the persistent result store")
    parser.add_argument("--heartbeat", type=float, default=None,
                        help="remote executor: idle heartbeat interval "
                             "in seconds (default: REPRO_HEARTBEAT or 5)")
    parser.add_argument("--retries", type=int, default=None,
                        help="remote executor: attempts per chunk before "
                             "the run fails (default: REPRO_RETRIES or 3)")
    parser.add_argument("--connect-timeout", type=float, default=None,
                        help="remote executor: per-worker connect timeout "
                             "in seconds (default: REPRO_CONNECT_TIMEOUT "
                             "or 5)")
    parser.add_argument("--run-timeout", type=float, default=None,
                        help="seconds one batch may go without any "
                             "simulation finishing before the executor "
                             "gives up on it (pool/persistent/remote; "
                             "default: REPRO_RUN_TIMEOUT, or no limit "
                             "for local pools and 900 for remote)")
    parser.add_argument("--on-cluster-loss", choices=("fallback", "fail"),
                        default=None,
                        help="remote executor: when every worker is lost, "
                             "'fallback' finishes the batch locally "
                             "(default; loudly reported), 'fail' raises "
                             "(REPRO_ON_CLUSTER_LOSS)")
    parser.add_argument("--faults", default=None, metavar="PLAN",
                        help="deterministic fault injection plan, e.g. "
                             "'worker.crash_before_reply:p=0.2;seed=7' "
                             "(test/chaos tooling; also exported as "
                             "REPRO_FAULTS so child processes inherit it)")
    parser.add_argument("--profile", action="store_true",
                        help="attach engine profiles (KIPS + stall "
                             "composition) to results; exported as "
                             "REPRO_PROFILE so worker processes inherit "
                             "it (observability only: profiles are never "
                             "persisted, stats stay bit-identical)")


def _add_run_args(parser):
    parser.add_argument("workload", choices=sorted(WORKLOADS))
    parser.add_argument("-n", "--instructions", type=int, default=30_000)
    parser.add_argument("--skip", type=int, default=3_000)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--phys", type=int, default=None,
                        help="physical registers per file (default 64)")
    _add_engine_tier_arg(parser)
    _add_engine_args(parser)


def _spec_for(args, config):
    return RunSpec(args.workload, config, instructions=args.instructions,
                   skip=args.skip, seed=args.seed)


def cmd_run(args):
    cache = _cache_for_args(args)
    result = cache.run(_spec_for(args, _config_for(args)))
    if getattr(args, "json", False):
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    print(result.summary())
    stats = result.stats
    print(f"  squashes={stats.squashes} "
          f"issue-blocks={stats.issue_alloc_blocks} "
          f"rename-stalls(reg)={stats.stall_no_reg} "
          f"rob-full={stats.stall_rob_full} "
          f"avg-regs int/fp={stats.avg_reg_occupancy('int'):.1f}/"
          f"{stats.avg_reg_occupancy('fp'):.1f}")
    profile = result.extra.get("profile") if result.extra else None
    if profile:
        print(f"  profile: {profile['kips']:.1f} KIPS "
              f"({profile['elapsed']:.3f}s, "
              f"{profile['engine_fallbacks']} engine fallback(s))")
        stalls = sorted(profile["stalls"].items(),
                        key=lambda item: item[1]["count"], reverse=True)
        shown = [f"{name}={entry['frac']:.1%}"
                 for name, entry in stalls if entry["count"]]
        print("  stall mix: " + (" ".join(shown) if shown else "none"))
    elif getattr(args, "profile", False):
        print("  profile: (served from cache — profiles only attach to "
              "freshly executed runs; add --no-cache to force one)")
    return 0


def cmd_compare(args):
    cache = _cache_for_args(args)
    specs = []
    for scheme in ("conventional", "vp-writeback"):
        args.scheme = scheme
        specs.append(_spec_for(args, _config_for(args)))
    conv, virt = cache.run_specs(specs)
    print(f"{'conventional':15s}: {conv.summary()}")
    print(f"{'vp-writeback':15s}: {virt.summary()}")
    print(f"speedup        : {virt.ipc / conv.ipc:.2f}x")
    return 0


def cmd_workloads(args):
    for name in sorted(WORKLOADS):
        wl = load_workload(name)
        kernels = ", ".join(k.name for k in wl.kernels)
        print(f"{name:10s} [{wl.category}]  kernels: {kernels}")
    return 0


def cmd_dump_trace(args):
    trace = SyntheticTrace(load_workload(args.workload), args.seed)
    count = save_trace(trace.take(args.instructions), args.output)
    print(f"wrote {count} records to {args.output}")
    return 0


def _experiment_command(runner_name):
    def cmd(args):
        from repro import experiments

        runner = getattr(experiments, runner_name)
        result = runner(cache=_cache_for_args(args, progress=_progress_line))
        print(result.format())
        return 0

    return cmd


def _sweep_grid(args):
    """The RunSpecs a sweep invocation describes, conventional first."""
    benches = (args.workloads.split(",") if args.workloads
               else sorted(WORKLOADS))
    for bench in benches:
        if bench not in WORKLOADS:
            raise SystemExit(f"unknown workload {bench!r}; choose from "
                             f"{', '.join(sorted(WORKLOADS))}")
    try:
        nrrs = [int(x) for x in args.nrr.split(",")]
    except ValueError:
        raise SystemExit(f"invalid --nrr list {args.nrr!r}; expected "
                         "comma-separated integers like 1,8,32")
    columns = [("conventional", conventional_config())]
    for allocation in _ALLOCATIONS[args.allocation]:
        for nrr in nrrs:
            try:
                config = virtual_physical_config(nrr=nrr,
                                                 allocation=allocation)
            except ValueError as exc:
                raise SystemExit(f"invalid sweep point: {exc}")
            columns.append((f"{allocation.value}/nrr={nrr}", config))
    if getattr(args, "engine", None):
        columns = [(label, config.with_(engine=args.engine))
                   for label, config in columns]
    specs = [
        RunSpec(bench, config, label=label, instructions=args.instructions,
                skip=args.skip, seed=args.seed)
        for label, config in columns for bench in benches
    ]
    return benches, columns, specs


def cmd_sweep(args):
    """Run an NRR × allocation × workload grid through the batch engine."""
    from repro.analysis.reports import format_table, harmonic_mean

    benches, columns, specs = _sweep_grid(args)
    serial_elapsed = None
    if args.compare_serial:
        serial_cache = ResultCache(jobs=1, persistent=False)
        start = time.perf_counter()
        serial_results = serial_cache.run_specs(specs)
        serial_elapsed = time.perf_counter() - start
        print(f"serial reference : {len(specs)} runs "
              f"in {serial_elapsed:.2f}s (1 job, cache off)")
        # The compared run must also execute for real — a store-served
        # batch would time cache lookups, not the executor.
        cache = ResultCache(jobs=args.jobs, persistent=False,
                            progress=_progress_line,
                            executor=args.executor, workers=args.workers,
                            heartbeat=args.heartbeat, retries=args.retries,
                            connect_timeout=args.connect_timeout)
    else:
        cache = _cache_for_args(args, progress=_progress_line)
    trace = None
    if getattr(args, "trace", False):
        from repro.obs.tracing import new_trace_id

        trace = new_trace_id()
    start = time.perf_counter()
    results = cache.run_specs(specs, trace=trace)
    elapsed = time.perf_counter() - start
    if args.compare_serial:
        mismatches = sum(
            a.to_dict() != b.to_dict()
            for a, b in zip(serial_results, results)
        )
        print(f"determinism      : serial and parallel results "
              f"{'IDENTICAL' if not mismatches else f'DIFFER ({mismatches})'}")

    by_col = {}
    run_iter = iter(results)
    for label, _ in columns:
        by_col[label] = {b: next(run_iter).ipc for b in benches}
    base = by_col["conventional"]
    headers = ["workload", "conv IPC"] + [label for label, _ in columns[1:]]
    rows = []
    for bench in benches:
        rows.append([bench, f"{base[bench]:.2f}"] + [
            f"{by_col[label][bench] / base[bench]:.2f}x"
            for label, _ in columns[1:]
        ])
    if len(benches) > 1:
        base_hm = harmonic_mean(base[b] for b in benches)
        rows.append(["hmean", f"{base_hm:.2f}"] + [
            f"{harmonic_mean(by_col[label][b] for b in benches) / base_hm:.2f}x"
            for label, _ in columns[1:]
        ])
    print(format_table(
        headers, rows,
        title=(f"Sweep: {len(specs)} runs "
               f"({args.instructions} instrs each, seed {args.seed})"),
    ))

    batch = cache.last_batch
    jobs = cache.engine.executor.jobs
    print(f"wall clock       : {elapsed:.2f}s with {jobs} job(s) — "
          f"{batch.executed} simulated, {batch.store_hits} from disk cache, "
          f"{batch.memo_hits} in-memory")
    report = getattr(cache.engine.executor, "last_run_report", None)
    if report:
        print(f"remote           : {len(report['workers'])} worker(s), "
              f"{report['tasks']} chunk(s) of <= {report['chunk_size']} "
              f"spec(s), {report['retries']} retried, "
              f"{report['straggler_redispatches']} straggler "
              f"re-dispatch(es)")
        for worker, lat in sorted(report.get("worker_latency",
                                             {}).items()):
            p50 = ("-" if lat["p50"] is None else f"{lat['p50'] * 1e3:.0f}ms")
            p95 = ("-" if lat["p95"] is None else f"{lat['p95'] * 1e3:.0f}ms")
            print(f"  {worker}: chunk p50={p50} p95={p95} "
                  f"({lat['chunks']} chunk(s), {lat['retries']} "
                  f"retried, {lat['breaker_opens']} breaker open(s))")
        if report.get("quarantined"):
            print("quarantined      : "
                  + ", ".join(report["quarantined"])
                  + " (circuit breaker open; see --retries / "
                    "REPRO_QUARANTINE)")
    if batch.degraded:
        degraded = batch.degraded
        print(f"DEGRADED         : {degraded['points']} point(s) ran on "
              f"the local {degraded['fallback']} fallback — "
              f"{degraded['reason']}")
    if serial_elapsed is not None and elapsed > 0:
        print(f"speedup          : {serial_elapsed / elapsed:.2f}x "
              f"over serial execution")
    if trace is not None:
        print(f"trace            : {trace} (inspect with "
              f"`repro trace {trace}`)")
    return 0


def cmd_port_sweep(args):
    """Run the read-port sensitivity sweep (IPC vs. ports × policy)."""
    from repro.experiments.port_sensitivity import run_port_sensitivity

    policies = tuple(args.policies.split(","))
    for policy in policies:
        try:
            resolve_policy(policy)
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))
    try:
        ports = [int(x) for x in args.read_ports.split(",")]
    except ValueError:
        raise SystemExit(f"invalid --read-ports list {args.read_ports!r}; "
                         "expected comma-separated integers like 16,8,4")
    if any(p < 2 for p in ports):
        # The model's structural floor: an instruction may read two
        # registers of one class (ProcessorConfig validates the same).
        raise SystemExit("--read-ports values must be >= 2 (an "
                         "instruction may read two registers of one "
                         "class; fewer ports deadlock)")
    benches = (args.workloads.split(",") if args.workloads
               else sorted(WORKLOADS))
    for bench in benches:
        if bench not in WORKLOADS:
            raise SystemExit(f"unknown workload {bench!r}; choose from "
                             f"{', '.join(sorted(WORKLOADS))}")
    cache = _cache_for_args(args, progress=_progress_line)
    result = run_port_sensitivity(
        read_ports=ports, policies=policies, benchmarks=benches,
        cache=cache, instructions=args.instructions, skip=args.skip,
        seed=args.seed)
    print(result.format())
    if args.check_monotone:
        from repro.experiments.port_sensitivity import MONOTONE_POLICIES

        # vp-writeback is documented as legitimately non-monotone
        # (throttled re-executions can locally raise IPC), so the gate
        # covers only the policies where monotonicity is guaranteed.
        gated = [p for p in policies if p in MONOTONE_POLICIES]
        skipped = [p for p in policies if p not in MONOTONE_POLICIES]
        if skipped:
            print("monotonicity: not gated for "
                  + ", ".join(skipped)
                  + " (squash-and-re-execute policies may legitimately "
                    "gain IPC from throttled re-executions)")
        if not gated:
            print("monotonicity: nothing gated — no swept policy "
                  "guarantees monotone IPC")
            return 0
        violations = [p for p in gated if not result.is_monotone(p)]
        if violations:
            print("monotonicity: FAIL — IPC rose as read ports shrank for "
                  + ", ".join(violations))
            return 1
        print("monotonicity: OK (IPC non-increasing as read ports shrink"
              + (f" for {', '.join(gated)})" if skipped else ")"))
    return 0


def cmd_bench(args):
    """Measure engine throughput and write the tracked BENCH file."""
    from repro import perf

    def progress(done, total, label):
        sys.stderr.write(f"\r  bench {done}/{total} ({label})        ")
        if done == total:
            sys.stderr.write("\n")
        sys.stderr.flush()

    workloads = args.workloads.split(",") if args.workloads else None
    schemes = args.schemes.split(",") if args.schemes else None
    if args.engine in ("native", "all"):
        from repro.uarch import native

        if native.toolchain() is None:
            # Without a toolchain every native point would loudly fall
            # back and measure the compiled tier — not what was asked.
            raise SystemExit(
                "repro bench: --engine {} needs a C toolchain and none "
                "was found (set REPRO_CC or install cc/gcc/clang; see "
                "`repro engines`)".format(args.engine))
    if args.engine in ("both", "all"):
        engines = (("interp", "compiled", "native") if args.engine == "all"
                   else ("interp", "compiled"))
        report = perf.measure_engines(
            workloads=workloads, schemes=schemes,
            instructions=args.instructions, skip=args.skip, seed=args.seed,
            repeats=args.repeats, engines=engines,
            progress=progress if not args.quiet else None)
    else:
        report = perf.measure_kips(
            workloads=workloads, schemes=schemes,
            instructions=args.instructions, skip=args.skip, seed=args.seed,
            repeats=args.repeats,
            progress=progress if not args.quiet else None,
            engine=args.engine if args.engine != "auto" else None)
    print(perf.format_report(report))
    if args.out:
        perf.write_report(args.out, report)
        print(f"wrote {args.out}")
    # The committed baseline is an *interpreter-tier* report; an A/B
    # run gates (or updates) with its interp sub-report so the gate
    # never compares a faster tier against the pure-Python floor.
    gate_report = report.get("engines", {}).get("interp", report)
    if args.update_baseline:
        if not args.baseline:
            raise SystemExit("--update-baseline requires --baseline PATH")
        perf.write_report(args.baseline, gate_report)
        print(f"updated baseline {args.baseline}")
        return 0
    if args.baseline:
        try:
            baseline = perf.load_report(args.baseline)
        except OSError:
            print(f"no baseline at {args.baseline}; skipping the "
                  "regression gate")
            return 0
        ok, message = perf.compare_to_baseline(
            gate_report, baseline, max_regression=args.max_regression)
        print(("OK  " if ok else "FAIL ") + message)
        return 0 if ok else 1
    return 0


def cmd_engines(args):
    """Report cycle-engine tier availability on this host."""
    from repro.obs.health import engine_tier_report

    report = engine_tier_report()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print("interp:   available (pure-Python reference interpreter)")
    print("compiled: available (per-config generated Python loops)")
    nat = report["native"]
    if nat["available"]:
        art = nat["artifacts"]
        print(f"native:   available (toolchain {nat['toolchain']}, "
              f"template {nat['template_fingerprint']}, "
              f"{art['artifacts']} cached artifact(s) in {art['dir']})")
    else:
        why = ("no C toolchain — set REPRO_CC or install cc/gcc/clang"
               if nat["toolchain"] is None
               else f"artifact dir {nat['cache_dir']} not writable")
        print(f"native:   UNAVAILABLE ({why}); engine=native falls back "
              "to compiled, counted in SimStats.engine_fallbacks")
    print(f"auto resolves to: {report['resolved_auto']} "
          "(REPRO_ENGINE overrides)")
    return 0


def cmd_cache_compact(args):
    from repro.engine import ResultStore

    def total_bytes(store):
        size = 0
        for path in [store.path, *store.segment_paths()]:
            try:
                size += path.stat().st_size
            except OSError:
                pass
        return size

    store = ResultStore()
    before = total_bytes(store)
    segments = len(store.segment_paths())
    kept, dropped = store.compact(prune_stale=args.prune_stale)
    after = total_bytes(store)
    print(f"{store.path}: merged {segments} segment(s), kept {kept} "
          f"records, dropped {dropped} ({before} -> {after} bytes)")
    from repro.uarch import native

    removed, freed = native.prune_stale()
    if removed:
        print(f"{native.artifact_dir()}: pruned {removed} stale native "
              f"artifact(s), freed {freed} bytes")
    return 0


def cmd_cache_stats(args):
    from repro.engine import ResultStore
    from repro.obs.tracing import telemetry_stats
    from repro.uarch import native

    stats = ResultStore().stats()
    stats["native"] = native.artifact_stats()
    stats["telemetry"] = telemetry_stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"{stats['directory']}: {stats['records']} record(s), "
          f"{stats['segments']} segment(s), {stats['bytes']} bytes "
          f"({stats['files']} file(s))")
    print(f"  lines: {stats['lines']} stored, {stats['superseded']} "
          f"superseded, {stats['corrupt']} corrupt "
          f"({stats['crc_failures']} CRC failure(s), "
          f"{stats['quarantined']} quarantined)")
    if stats["workloads"]:
        width = max(len(name) for name in stats["workloads"])
        for workload, count in stats["workloads"].items():
            print(f"  {workload:<{width}}  {count} record(s)")
    if stats["versions"]:
        print("  versions: " + ", ".join(
            f"{version} ({count})"
            for version, count in stats["versions"].items()))
    art = stats["native"]
    line = (f"{art['dir']}: {art['artifacts']} native artifact(s), "
            f"{art['bytes']} bytes")
    if art["stale_artifacts"]:
        line += (f" ({art['stale_artifacts']} stale, "
                 f"{art['stale_bytes']} bytes — "
                 "`repro cache compact` prunes them)")
    print(line)
    tel = stats["telemetry"]
    tel_line = (f"{tel['directory']}: {tel['spans']} telemetry span(s) "
                f"across {tel['segments']} segment(s), {tel['bytes']} "
                f"bytes")
    if tel["corrupt"]:
        tel_line += f" ({tel['corrupt']} corrupt line(s) skipped)"
    print(tel_line)
    return 0


def cmd_cache_verify(args):
    """Integrity-scan the store; optionally repair it (exit 1 on rot)."""
    from repro.engine import ResultStore

    report = ResultStore().verify(repair=args.repair)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if (args.repair or not report["corrupt"]) else 1
    print(f"{report['directory']}: {report['records']} good record(s) "
          f"across {report['files']} file(s) — {report['checked']} "
          f"CRC-checked, {report['legacy']} legacy (no crc field)")
    if report["corrupt"]:
        print(f"  corrupt: {report['corrupt']} line(s), "
              f"{report['crc_failures']} of them CRC mismatches")
        for location in report["bad"][:20]:
            print(f"    {location}")
        if len(report["bad"]) > 20:
            print(f"    ... and {len(report['bad']) - 20} more")
        if args.repair:
            print(f"  repaired: {report['repaired']} line(s) removed, "
                  f"quarantined to {report['quarantine']}")
            return 0
        print("  run `repro cache verify --repair` to quarantine them")
        return 1
    print("  no corruption found")
    return 0


def cmd_serve(args):
    """Run the simulation-as-a-service HTTP gateway (blocks)."""
    import asyncio

    from repro.engine import BatchEngine, ResultStore, make_executor
    from repro.service import DEFAULT_GATEWAY_PORT, Gateway, JobJournal

    store = None if args.no_cache else ResultStore()
    executor = make_executor(args.jobs, kind=args.executor,
                             workers=args.workers,
                             heartbeat=args.heartbeat, retries=args.retries,
                             connect_timeout=args.connect_timeout,
                             run_timeout=args.run_timeout,
                             on_cluster_loss=args.on_cluster_loss)
    engine = BatchEngine(executor=executor, store=store)
    port = DEFAULT_GATEWAY_PORT if args.port is None else args.port
    journal = None if args.no_journal else JobJournal()
    gateway = Gateway(host=args.host, port=port, engine=engine,
                      max_inflight=args.max_inflight, journal=journal,
                      resume=args.resume and journal is not None)
    if args.resume and journal is None:
        raise SystemExit("repro serve: --resume needs the job journal "
                         "(drop --no-journal)")

    def on_ready(gw):
        host, bound_port = gw.address
        print(f"repro serve: listening on http://{host}:{bound_port} "
              f"(version {gw.version}, auth "
              f"{'on' if gw.token else 'off'}, executor "
              f"{type(executor).__name__}, max-inflight "
              f"{gw.max_inflight}, journal "
              f"{'off' if gw.journal is None else 'on'})", flush=True)
        print(f"repro serve: dashboard at "
              f"http://{host}:{bound_port}/v1/dashboard, metrics at "
              f"http://{host}:{bound_port}/v1/metrics", flush=True)
        if gw.resumed_jobs:
            print(f"repro serve: resumed {gw.resumed_jobs} unfinished "
                  f"job(s) from {gw.journal.directory}", flush=True)

    try:
        asyncio.run(gateway.serve_forever(on_ready))
    except KeyboardInterrupt:
        pass
    print(f"repro serve: stopped after {gateway.requests} request(s), "
          f"{gateway.points_executed} point(s) executed")
    return 0


def _gateway_client(args):
    from repro.service import GatewayClient

    return GatewayClient(args.url, client_id=getattr(args, "client", None))


def cmd_submit(args):
    """Submit a sweep grid to a gateway and stream results back."""
    from repro.service import GatewayError
    from repro.uarch.stats import SimResult

    benches, columns, specs = _sweep_grid(args)
    client = _gateway_client(args)
    try:
        job = client.submit(specs)
    except (ConnectionError, GatewayError) as exc:
        raise SystemExit(f"repro submit: {exc}")
    print(f"job {job['id']}: {job['points']} point(s) submitted "
          f"({len(benches)} workload(s) x {len(columns)} column(s))")
    if args.detach:
        url_flag = f" --url {args.url}" if args.url else ""
        print(f"  status : repro status {job['id']}{url_flag}")
        print(f"  fetch  : repro fetch {job['id']}{url_flag}")
        return 0
    state = "unknown"
    try:
        for event in client.stream(job["id"]):
            if event.get("event") == "point":
                result = SimResult.from_dict(event["result"])
                label = event.get("label") or "conventional"
                print(f"  {event['done']:3d}/{event['points']} "
                      f"{event['workload']:<10s} {label:<20s} "
                      f"IPC={result.ipc:.3f}")
            elif event.get("event") == "end":
                state = event.get("state")
                if event.get("error"):
                    print(f"  error: {event['error']}")
    except (ConnectionError, GatewayError) as exc:
        raise SystemExit(f"repro submit: stream failed: {exc}")
    print(f"job {job['id']}: {state}")
    return 0 if state == "done" else 1


def cmd_status(args):
    """Print one job's gateway-side snapshot."""
    from repro.service import GatewayError

    try:
        snapshot = _gateway_client(args).status(args.job)
    except (ConnectionError, GatewayError) as exc:
        raise SystemExit(f"repro status: {exc}")
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print(f"job {snapshot['id']}: {snapshot['state']} "
          f"({snapshot['done']}/{snapshot['points']} point(s), "
          f"client {snapshot['client']})")
    if snapshot.get("error"):
        print(f"  error: {snapshot['error']}")
    return 0


def cmd_fetch(args):
    """Collect a job's results from a gateway."""
    from repro.service import GatewayError
    from repro.uarch.stats import SimResult

    client = _gateway_client(args)
    try:
        payload = client.results(args.job)
    except (ConnectionError, GatewayError) as exc:
        raise SystemExit(f"repro fetch: {exc}")
    if args.json:
        print(json.dumps(payload["results"], indent=2, sort_keys=True))
        return 0
    missing = 0
    for record in payload["results"]:
        if record is None:
            missing += 1
            continue
        print(SimResult.from_dict(record).summary())
    if missing:
        print(f"({missing} point(s) not finished; job state: "
              f"{payload['state']})")
    return 0 if payload["state"] == "done" else 1


def cmd_worker(args):
    """Run the remote-execution worker daemon (blocks until shutdown)."""
    from repro.engine import (
        ResultStore,
        WorkerServer,
        make_executor,
        remove_worker_descriptor,
        write_worker_descriptor,
    )
    from repro.engine.remote import default_port

    if not args.serve:
        raise SystemExit("repro worker: pass --serve to start the daemon "
                         "(guards against accidental foreground starts)")
    if args.port is None:
        args.port = default_port()
    store = None if args.no_cache else ResultStore()
    # Default the batch executor explicitly so a stray
    # REPRO_EXECUTOR=remote in the daemon's environment cannot make the
    # worker try to coordinate itself.
    kind = args.executor or ("pool" if args.jobs and args.jobs > 1
                             else "serial")
    executor = make_executor(args.jobs, kind=kind)
    server = WorkerServer(host=args.host, port=args.port, store=store,
                          executor=executor)
    host, port = server.address
    # The machine-readable record of this daemon: `repro cluster
    # status` (no --workers) discovers local daemons through it.
    descriptor = write_worker_descriptor(
        server.address, auth=server.token is not None)
    print(f"repro worker: serving on {host}:{port} "
          f"(version {server.version}, pid {server.status()['pid']}, "
          f"auth {'on' if server.token else 'off'})", flush=True)
    if descriptor is not None:
        print(f"repro worker: descriptor {descriptor}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        remove_worker_descriptor(descriptor)
    print(f"repro worker: stopped after serving {server.served} spec(s)")
    return 0


def _cluster_workers(args):
    import os

    from repro.engine import parse_workers, read_worker_descriptors

    workers = parse_workers(args.workers
                            or os.environ.get("REPRO_WORKERS"))
    if not workers:
        # Fall back to the worker-<host>-<pid>.json descriptors that
        # `repro worker --serve` leaves under the cache directory.
        descriptors = read_worker_descriptors()
        workers = [(record["host"], record["port"])
                   for _, record in descriptors]
        if workers:
            print(f"(discovered {len(workers)} worker(s) from "
                  "descriptors in the cache directory)")
    if not workers:
        raise SystemExit("repro cluster: --workers host[:port],... "
                         "(or REPRO_WORKERS) is required, and no "
                         "worker-*.json descriptors were found under "
                         "the cache directory")
    return workers


def cmd_cluster_status(args):
    """Ping every worker and report reachability and code version."""
    from repro.engine import code_version, ping_worker

    local = code_version()
    failures = 0
    for host, port in _cluster_workers(args):
        try:
            status = ping_worker((host, port), timeout=args.timeout)
        except (OSError, ValueError, RuntimeError) as exc:
            print(f"{host}:{port}  UNREACHABLE  {exc}")
            failures += 1
            continue
        match = ("ok" if status.get("version") == local
                 else f"VERSION MISMATCH (local {local})")
        print(f"{host}:{port}  up  pid={status.get('pid')} "
              f"served={status.get('served')} "
              f"auth={'on' if status.get('auth') else 'off'} "
              f"version={status.get('version')} [{match}]")
        if status.get("version") != local:
            failures += 1
    return 1 if failures else 0


def cmd_cluster_stop(args):
    """Send a shutdown request to every worker."""
    from repro.engine import shutdown_worker

    failures = 0
    for host, port in _cluster_workers(args):
        try:
            status = shutdown_worker((host, port), timeout=args.timeout)
            print(f"{host}:{port}  stopped "
                  f"(served {status.get('served')} spec(s))")
        except (OSError, ValueError, RuntimeError) as exc:
            print(f"{host}:{port}  UNREACHABLE  {exc}")
            failures += 1
    return 1 if failures else 0


def cmd_trace(args):
    """Render one trace's span timeline from the telemetry directory."""
    from repro.obs.tracing import read_spans, telemetry_dir

    spans = read_spans(trace=args.trace_id)
    if not spans:
        print(f"repro trace: no spans for trace {args.trace_id!r} under "
              f"{telemetry_dir()} (is REPRO_CACHE_DIR pointing at the "
              "right machine, and was the run traced?)")
        return 1
    if args.json:
        print(json.dumps(spans, indent=2, sort_keys=True))
        return 0
    origin = min(span["start"] for span in spans)
    hosts = sorted({f"{span['host']}:{span['pid']}" for span in spans})
    print(f"trace {args.trace_id}: {len(spans)} span(s) across "
          f"{len(hosts)} process(es) ({', '.join(hosts)})")
    print(f"{'at':>9s}  {'dur':>9s}  {'phase':<8s} "
          f"{'name':<22s} {'where':<18s} outcome")
    for span in spans:
        at = span["start"] - origin
        where = f"{span['host']}:{span['pid']}"
        attrs = span.get("attrs") or {}
        detail = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
        outcome = span.get("outcome", "ok")
        line = (f"{at:8.3f}s  {span['dur'] * 1e3:7.1f}ms  "
                f"{span['phase']:<8s} {span['name']:<22s} "
                f"{where:<18s} {outcome}")
        if detail:
            line += f"  [{detail}]"
        print(line)
    phases = {span["phase"] for span in spans}
    missing = [p for p in ("queue", "dispatch", "run", "store")
               if p not in phases]
    if missing:
        print(f"(no {'/'.join(missing)} span(s) — cache-served points "
              "skip execution phases)")
    return 0


def cmd_top(args):
    """Aggregate recorded spans: where is the cluster spending time."""
    from repro.obs.tracing import read_spans, telemetry_dir

    spans = read_spans()
    if args.trace:
        spans = [s for s in spans if s.get("trace") == args.trace]
    if not spans:
        print(f"repro top: no telemetry spans under {telemetry_dir()} "
              "(traced runs write them; see docs/observability.md)")
        return 0
    groups = {}
    for span in spans:
        entry = groups.setdefault((span["phase"], span["name"]), [])
        entry.append(span)
    print(f"{len(spans)} span(s), "
          f"{len({s['trace'] for s in spans})} trace(s), "
          f"{len({(s['host'], s['pid']) for s in spans})} process(es)")
    print(f"{'phase':<8s} {'name':<22s} {'count':>6s} {'errors':>6s} "
          f"{'total':>9s} {'p95':>9s}")
    order = {phase: i for i, phase in enumerate(
        ("queue", "dispatch", "chunk", "run", "store"))}
    for (phase, name), entries in sorted(
            groups.items(),
            key=lambda item: (order.get(item[0][0], 99), item[0][1])):
        durs = sorted(span["dur"] for span in entries)
        p95 = durs[min(len(durs) - 1, int(0.95 * len(durs)))]
        errors = sum(1 for span in entries
                     if span.get("outcome") != "ok")
        print(f"{phase:<8s} {name:<22s} {len(entries):>6d} "
              f"{errors:>6d} {sum(durs):>8.3f}s {p95 * 1e3:>7.1f}ms")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Virtual-Physical Registers' (HPCA 1998)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload")
    _add_run_args(run)
    run.add_argument("--scheme", choices=policy_names(),
                     default="conventional")
    run.add_argument("--nrr", type=int, default=None)
    run.add_argument("--json", action="store_true",
                     help="emit the full result as JSON (the store format)")
    run.set_defaults(fn=cmd_run)

    compare = sub.add_parser("compare", help="conventional vs virtual-physical")
    _add_run_args(compare)
    compare.add_argument("--nrr", type=int, default=None)
    compare.set_defaults(fn=cmd_compare)

    sweep = sub.add_parser(
        "sweep",
        help="run an NRR x allocation x workload grid on the batch engine")
    sweep.add_argument("--nrr", default="1,4,8,16,24,32",
                       help="comma-separated NRR values (default: the "
                            "paper's Figure 4 sweep)")
    sweep.add_argument("--allocation", choices=sorted(_ALLOCATIONS),
                       default="writeback")
    sweep.add_argument("--workloads", default=None,
                       help="comma-separated benchmark names (default: all)")
    sweep.add_argument("-n", "--instructions", type=int, default=30_000)
    sweep.add_argument("--skip", type=int, default=3_000)
    sweep.add_argument("--seed", type=int, default=1234)
    sweep.add_argument("--compare-serial", action="store_true",
                       help="also run the grid serially (cache off) and "
                            "report the wall-clock speedup")
    sweep.add_argument("--trace", action="store_true",
                       help="mint a trace id and record telemetry spans "
                            "for the whole grid (inspect with `repro "
                            "trace <id>`)")
    _add_engine_tier_arg(sweep)
    _add_engine_args(sweep)
    sweep.set_defaults(fn=cmd_sweep)

    port_sweep = sub.add_parser(
        "port-sweep",
        help="sweep register-file read ports per renaming policy "
             "(contention model on)")
    port_sweep.add_argument("--read-ports", default="16,8,4,2",
                            help="comma-separated per-class read-port "
                                 "counts (default: 16,8,4,2)")
    port_sweep.add_argument("--policies",
                            default="conventional,vp-issue,vp-writeback",
                            help="comma-separated policy names from the "
                                 f"registry: {', '.join(policy_names())}")
    port_sweep.add_argument("--workloads", default=None,
                            help="comma-separated benchmark names "
                                 "(default: all)")
    port_sweep.add_argument("-n", "--instructions", type=int, default=30_000)
    port_sweep.add_argument("--skip", type=int, default=3_000)
    port_sweep.add_argument("--seed", type=int, default=1234)
    port_sweep.add_argument("--check-monotone", action="store_true",
                            help="exit non-zero unless IPC is "
                                 "monotonically non-increasing as read "
                                 "ports shrink, for every swept policy "
                                 "(the CI smoke gate; vp-writeback can "
                                 "legitimately violate this — throttled "
                                 "re-executions — so gate the others)")
    _add_engine_args(port_sweep)
    port_sweep.set_defaults(fn=cmd_port_sweep)

    for name, runner in (
        ("table2", "run_table2"),
        ("figure4", "run_figure4"),
        ("figure5", "run_figure5"),
        ("figure6", "run_figure6"),
        ("figure7", "run_figure7"),
        ("ablation", "run_ablation"),
        ("window-scaling", "run_window_scaling"),
        ("branch-sensitivity", "run_branch_sensitivity"),
    ):
        p = sub.add_parser(name, help=f"regenerate {name} from the paper")
        _add_engine_args(p)
        p.set_defaults(fn=_experiment_command(runner))

    bench = sub.add_parser(
        "bench",
        help="measure engine throughput (KIPS) per workload x renamer")
    bench.add_argument("--workloads", default=None,
                       help="comma-separated benchmark names (default: all)")
    bench.add_argument("--schemes", default=None,
                       help="comma-separated renamer labels "
                            "(default: conventional,vp-writeback)")
    bench.add_argument("-n", "--instructions", type=int, default=30_000)
    bench.add_argument("--skip", type=int, default=3_000)
    bench.add_argument("--seed", type=int, default=1234)
    bench.add_argument("--repeats", type=int, default=3,
                       help="runs per point; the median is kept (default 3)")
    _add_engine_tier_arg(bench, both=True)
    bench.add_argument("--out", default="BENCH_engine.json",
                       help="report path (default: BENCH_engine.json; "
                            "'' disables)")
    bench.add_argument("--baseline", default=None,
                       help="baseline report to gate against "
                            "(e.g. benchmarks/perf/baseline.json)")
    bench.add_argument("--max-regression", type=float, default=0.30,
                       help="fail when median KIPS drops more than this "
                            "fraction below the baseline (default 0.30)")
    bench.add_argument("--update-baseline", action="store_true",
                       help="write the measured report to --baseline "
                            "instead of gating")
    bench.add_argument("--quiet", action="store_true",
                       help="suppress the per-point progress line")
    bench.set_defaults(fn=cmd_bench)

    engines = sub.add_parser(
        "engines",
        help="report cycle-engine tier availability (toolchain probe, "
             "artifact cache) on this host")
    engines.add_argument("--json", action="store_true",
                         help="emit the raw availability report JSON")
    engines.set_defaults(fn=cmd_engines)

    serve = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP gateway "
             "(POST /v1/jobs, NDJSON streaming; REPRO_TOKEN for auth)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1; use "
                            "0.0.0.0 to serve other hosts)")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port (default 8750; 0 picks an "
                            "ephemeral port)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="points simulated concurrently per "
                            "scheduling round (default 8)")
    serve.add_argument("--resume", action="store_true",
                       help="reload unfinished journaled jobs from the "
                            "WAL under REPRO_CACHE_DIR/gateway before "
                            "serving (only points missing from the "
                            "result store re-run)")
    serve.add_argument("--no-journal", action="store_true",
                       help="disable the per-job write-ahead log "
                            "(jobs are lost on a crash)")
    _add_engine_args(serve)
    serve.set_defaults(fn=cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a sweep grid to a gateway over HTTP and stream "
             "results as they finish")
    submit.add_argument("--url", default=None,
                        help="gateway base URL (default: REPRO_GATEWAY "
                             "or http://127.0.0.1:8750)")
    submit.add_argument("--client", default=None,
                        help="fair-share client identity (default: the "
                             "gateway uses the peer address)")
    submit.add_argument("--detach", action="store_true",
                        help="print the job id and exit instead of "
                             "streaming")
    submit.add_argument("--nrr", default="1,4,8,16,24,32",
                        help="comma-separated NRR values (default: the "
                             "paper's Figure 4 sweep)")
    submit.add_argument("--allocation", choices=sorted(_ALLOCATIONS),
                        default="writeback")
    submit.add_argument("--workloads", default=None,
                        help="comma-separated benchmark names "
                             "(default: all)")
    submit.add_argument("-n", "--instructions", type=int, default=30_000)
    submit.add_argument("--skip", type=int, default=3_000)
    submit.add_argument("--seed", type=int, default=1234)
    submit.set_defaults(fn=cmd_submit)

    status = sub.add_parser(
        "status", help="show a gateway job's progress snapshot")
    status.add_argument("job", help="job id returned by `repro submit`")
    status.add_argument("--url", default=None,
                        help="gateway base URL (default: REPRO_GATEWAY "
                             "or http://127.0.0.1:8750)")
    status.add_argument("--json", action="store_true",
                        help="emit the raw snapshot JSON")
    status.set_defaults(fn=cmd_status)

    fetch = sub.add_parser(
        "fetch", help="collect a gateway job's results")
    fetch.add_argument("job", help="job id returned by `repro submit`")
    fetch.add_argument("--url", default=None,
                       help="gateway base URL (default: REPRO_GATEWAY "
                            "or http://127.0.0.1:8750)")
    fetch.add_argument("--json", action="store_true",
                       help="emit the result list as JSON (the store "
                            "format; unfinished points are null)")
    fetch.set_defaults(fn=cmd_fetch)

    worker = sub.add_parser(
        "worker",
        help="serve simulations to remote coordinators (--executor remote)")
    worker.add_argument("--serve", action="store_true",
                        help="start the daemon (required; blocks until "
                             "`repro cluster stop` or Ctrl-C)")
    worker.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1; use "
                             "0.0.0.0 to serve other hosts)")
    worker.add_argument("--port", type=int, default=None,
                        help="TCP port (default: REPRO_WORKER_PORT or "
                             "8642; 0 picks an ephemeral port)")
    worker.add_argument("--jobs", type=int, default=None,
                        help="local worker processes per batch (default "
                             "1: serial in-process execution)")
    worker.add_argument("--executor",
                        choices=("serial", "pool", "persistent"),
                        default=None,
                        help="local execution strategy for incoming "
                             "batches (default: serial, or pool when "
                             "--jobs > 1)")
    worker.add_argument("--no-cache", action="store_true",
                        help="skip the persistent result store")
    worker.set_defaults(fn=cmd_worker)

    cluster = sub.add_parser(
        "cluster", help="inspect or stop a set of remote workers")
    cluster_sub = cluster.add_subparsers(dest="cluster_command",
                                         required=True)
    for name, fn, help_text in (
        ("status", cmd_cluster_status,
         "ping every worker and report version/liveness"),
        ("stop", cmd_cluster_stop, "shut every worker down"),
    ):
        p = cluster_sub.add_parser(name, help=help_text)
        p.add_argument("--workers", default=None,
                       help="comma-separated worker addresses host[:port] "
                            "(default: REPRO_WORKERS)")
        p.add_argument("--timeout", type=float, default=5.0,
                       help="per-worker connection timeout in seconds")
        p.set_defaults(fn=fn)

    cache = sub.add_parser("cache", help="manage the persistent result store")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    compact = cache_sub.add_parser(
        "compact",
        help="rewrite the store keeping only the newest record per key")
    compact.add_argument("--prune-stale", action="store_true",
                         help="also drop records from older code versions")
    compact.set_defaults(fn=cmd_cache_compact)
    cache_stats = cache_sub.add_parser(
        "stats",
        help="summarize the store: records, segments, bytes, and a "
             "per-workload breakdown")
    cache_stats.add_argument("--json", action="store_true",
                             help="emit the raw stats JSON")
    cache_stats.set_defaults(fn=cmd_cache_stats)
    cache_verify = cache_sub.add_parser(
        "verify",
        help="integrity-scan every store record (CRC32); exits 1 if "
             "corruption is found and not repaired")
    cache_verify.add_argument("--repair", action="store_true",
                              help="quarantine corrupt lines to "
                                   "corrupt-<ts>.jsonl and rewrite the "
                                   "affected files (offline maintenance: "
                                   "stop writers first)")
    cache_verify.add_argument("--json", action="store_true",
                              help="emit the raw verify report JSON")
    cache_verify.set_defaults(fn=cmd_cache_verify)

    trace = sub.add_parser(
        "trace",
        help="render the telemetry span timeline for one trace id")
    trace.add_argument("trace_id",
                       help="trace id from `repro sweep --trace` or the "
                            "gateway submit response")
    trace.add_argument("--json", action="store_true",
                       help="emit the raw span records as JSON")
    trace.set_defaults(fn=cmd_trace)

    top = sub.add_parser(
        "top",
        help="aggregate recorded telemetry spans per phase/name "
             "(counts, errors, total and p95 duration)")
    top.add_argument("--trace", default=None,
                     help="restrict the aggregation to one trace id")
    top.set_defaults(fn=cmd_top)

    wl = sub.add_parser("workloads", help="list workload models")
    wl.set_defaults(fn=cmd_workloads)

    dump = sub.add_parser("dump-trace", help="serialize a synthetic trace")
    dump.add_argument("workload", choices=sorted(WORKLOADS))
    dump.add_argument("output")
    dump.add_argument("-n", "--instructions", type=int, default=10_000)
    dump.add_argument("--seed", type=int, default=1234)
    dump.set_defaults(fn=cmd_dump_trace)

    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    plan = getattr(args, "faults", None)
    if plan:
        import os

        from repro.engine.faults import FaultPlan, install

        try:
            install(FaultPlan.from_string(plan))
        except ValueError as exc:
            raise SystemExit(f"repro: bad --faults plan: {exc}")
        # Child processes (pool workers, spawned daemons) pick the plan
        # up from the environment; each process injects independently.
        os.environ["REPRO_FAULTS"] = plan
    if getattr(args, "profile", False):
        import os

        # Like --faults: exported so pool/remote worker processes
        # profile too; checked lazily per run by attach_profile().
        os.environ["REPRO_PROFILE"] = "1"
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
