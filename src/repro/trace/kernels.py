"""Reusable kernel builders for custom workloads.

The nine paper workloads in :mod:`repro.trace.workloads` are hand-tuned;
these builders cover the common loop shapes so users can assemble new
workloads quickly::

    from repro.trace.kernels import streaming_kernel, pointer_chase_kernel
    from repro.trace.program import Workload

    wl = Workload("mine", [
        streaming_kernel("axpy", n_streams=2, chain_depth=2,
                         footprint_kb=256),
        pointer_chase_kernel("walk", heap_kb=12),
    ], category="fp")

Each builder auto-staggers its array bases modulo the 16 KB
direct-mapped L1 so independent streams do not conflict-evict each
other (see the note in :mod:`repro.trace.workloads`).
"""

from __future__ import annotations

from itertools import count

from repro.isa.opcodes import OpClass
from repro.trace.patterns import ArrayWalk, ChaseRegion, RandomRegion
from repro.trace.program import (
    CondBranch,
    FpOp,
    IntOp,
    Load,
    LoopKernel,
    Store,
)

KB = 1024
_CACHE_BYTES = 16 * KB
_region_counter = count()


def _base(stagger_slot):
    """A fresh base address, staggered modulo the cache size."""
    region = next(_region_counter) + 16
    return region * 0x100_0000 + (stagger_slot * 0x1000) % _CACHE_BYTES


def streaming_kernel(name, n_streams=2, chain_depth=3, footprint_kb=512,
                     iterations=64, store=True, fp=True):
    """A stencil-style loop: ``n_streams`` sequential loads feeding a
    ``chain_depth``-deep arithmetic chain, optionally ending in a store.

    ``footprint_kb`` per stream; anything above 16 misses on every new
    line — the swim/mgrid pattern the paper's best cases rely on.
    """
    if n_streams < 1 or chain_depth < 1:
        raise ValueError("need at least one stream and one chain op")
    body = []
    arrays = {}
    loads = []
    for i in range(n_streams):
        reg = f"in{i}"
        arr = f"src{i}"
        body.append(Load(reg, arr, fp=fp))
        arrays[arr] = ArrayWalk(base=_base(i), length=footprint_kb * KB // 8,
                                elem_bytes=8)
        loads.append(reg)
    op_cls, kinds = (
        (FpOp, (OpClass.FP_ADD, OpClass.FP_MUL)) if fp
        else (IntOp, (OpClass.INT_ALU, OpClass.INT_ALU))
    )
    prev = loads[0]
    for d in range(chain_depth):
        dst = f"t{d}"
        other = loads[(d + 1) % len(loads)]
        body.append(op_cls(dst, (prev, other), kind=kinds[d % 2]))
        prev = dst
    if store:
        arrays["dst"] = ArrayWalk(base=_base(n_streams),
                                  length=footprint_kb * KB // 8,
                                  elem_bytes=8)
        body.append(Store(prev, "dst", fp=fp))
    body.append(IntOp("idx", ("idx",)))
    return LoopKernel(name=name, body=body, iterations=iterations,
                      arrays=arrays)


def pointer_chase_kernel(name, heap_kb=12, work_per_hop=2, p_taken=0.8,
                         iterations=24):
    """li-style serial chasing: each load's base is the previous load's
    destination, with ``work_per_hop`` dependent integer ops per hop."""
    if work_per_hop < 1:
        raise ValueError("need at least one op per hop")
    body = [Load("ptr", "heap", base="ptr")]
    prev = "ptr"
    for i in range(work_per_hop):
        dst = f"w{i}"
        body.append(IntOp(dst, (prev,)))
        prev = dst
    body.append(CondBranch(p_taken=p_taken, src=prev))
    body.append(IntOp("idx", ("idx",)))
    return LoopKernel(
        name=name, body=body, iterations=iterations,
        arrays={"heap": ChaseRegion(base=_base(0), size_bytes=heap_kb * KB)},
    )


def random_access_kernel(name, table_kb=24, ops_per_access=3, p_taken=0.9,
                         iterations=32, store=False):
    """vortex/compress-style table lookups with independent iterations."""
    body = [Load("val", "table", base="tbase")]
    prev = "val"
    for i in range(ops_per_access):
        dst = f"m{i}"
        body.append(IntOp(dst, (prev, "acc") if i == 0 else (prev,)))
        prev = dst
    body.append(CondBranch(p_taken=p_taken, src=prev))
    body.append(IntOp("acc", (prev,)))
    arrays = {"table": RandomRegion(base=_base(0), size_bytes=table_kb * KB)}
    if store:
        arrays["log"] = ArrayWalk(base=_base(4), length=512, elem_bytes=8)
        body.append(Store("acc", "log"))
    body.append(IntOp("idx", ("idx",)))
    return LoopKernel(name=name, body=body, iterations=iterations,
                      arrays=arrays)


def reduction_kernel(name, footprint_kb=8, latency_chain=True,
                     iterations=128, fp=True):
    """hydro2d-style loop-carried reduction over resident data."""
    body = [Load("a", "vec", fp=fp)]
    if fp:
        if latency_chain:
            body.append(FpOp("acc", ("acc", "a"), kind=OpClass.FP_ADD))
        body.append(FpOp("sq", ("a", "a"), kind=OpClass.FP_MUL))
    else:
        if latency_chain:
            body.append(IntOp("acc", ("acc", "a")))
        body.append(IntOp("sq", ("a", "a")))
    body.append(IntOp("idx", ("idx",)))
    return LoopKernel(
        name=name, body=body, iterations=iterations,
        arrays={"vec": ArrayWalk(base=_base(0),
                                 length=footprint_kb * KB // 8,
                                 elem_bytes=8)},
    )
