"""Dynamic trace generation from a :class:`~repro.trace.program.Workload`.

The generator walks the workload's kernels (weighted-random order),
running each kernel's loop for its trip count and emitting one
:class:`~repro.isa.instruction.TraceRecord` per dynamic instruction:

* each body statement in static program order (forward hammock branches
  skip statements when taken, keeping control flow consistent),
* an induction-variable update and a back-edge branch per iteration,
* a glue branch transferring control to the next kernel.

Everything is deterministic given ``(workload, seed)``; iterating the
same trace twice yields the identical instruction stream, which the
equivalence tests between renaming schemes rely on.
"""

from __future__ import annotations

import copy
import itertools
from random import Random

from repro.isa.instruction import TraceRecord
from repro.isa.opcodes import OpClass
from repro.isa.registers import NO_REG
from repro.trace.program import (
    INDUCTION,
    CondBranch,
    FpOp,
    IntOp,
    Load,
    RegisterBinding,
    Store,
)

#: PC spacing between kernels; each kernel may hold this many bytes of code.
KERNEL_PC_STRIDE = 0x1000
BASE_PC = 0x10000


class SyntheticTrace:
    """Iterable over the dynamic instruction stream of a workload.

    Each ``iter()`` produces an independent, identically-seeded stream.
    """

    def __init__(self, workload, seed=1234):
        self.workload = workload
        self.seed = seed
        self._bindings = [RegisterBinding(k) for k in workload.kernels]
        self._bases = [
            BASE_PC + i * KERNEL_PC_STRIDE for i in range(len(workload.kernels))
        ]
        for kernel, base in zip(workload.kernels, self._bases):
            static_len = len(kernel.body) + 3  # + induction, back-edge, glue
            if static_len * 4 > KERNEL_PC_STRIDE:
                raise ValueError(f"kernel {kernel.name!r} too large for PC region")

    def __iter__(self):
        return self._generate()

    def take(self, n):
        """Materialize the first ``n`` records as a list."""
        return list(itertools.islice(iter(self), n))

    # -- internals ---------------------------------------------------------

    def _generate(self):
        rng = Random(self.seed)
        kernels = self.workload.kernels
        # Private pattern state per generator so that concurrent iterations
        # of one workload cannot interfere.
        arrays = [copy.deepcopy(k.arrays) for k in kernels]
        weights = [k.weight for k in kernels]
        current = rng.choices(range(len(kernels)), weights)[0]
        while True:
            nxt = rng.choices(range(len(kernels)), weights)[0]
            yield from self._run_kernel(current, nxt, arrays[current], rng)
            current = nxt

    def _run_kernel(self, idx, next_idx, arrays, rng):
        kernel = self.workload.kernels[idx]
        binding = self._bindings[idx]
        base = self._bases[idx]
        body = kernel.body
        body_len = len(body)
        ind_pc = base + 4 * body_len
        backedge_pc = ind_pc + 4
        glue_pc = backedge_pc + 4
        ind_reg = binding[INDUCTION]

        for it in range(kernel.iterations):
            pos = 0
            while pos < body_len:
                stmt = body[pos]
                pc = base + 4 * pos
                if isinstance(stmt, Load):
                    addr = arrays[stmt.array].next_address(rng)
                    op = OpClass.LOAD_FP if stmt.fp else OpClass.LOAD_INT
                    yield TraceRecord(pc, op, dest=binding[stmt.dst],
                                      src1=binding[stmt.base], addr=addr)
                    pos += 1
                elif isinstance(stmt, Store):
                    addr = arrays[stmt.array].next_address(rng)
                    op = OpClass.STORE_FP if stmt.fp else OpClass.STORE_INT
                    yield TraceRecord(pc, op, src1=binding[stmt.base],
                                      src2=binding[stmt.value], addr=addr)
                    pos += 1
                elif isinstance(stmt, (IntOp, FpOp)):
                    srcs = stmt.srcs
                    src1 = binding[srcs[0]]
                    src2 = binding[srcs[1]] if len(srcs) > 1 else NO_REG
                    yield TraceRecord(pc, stmt.kind, dest=binding[stmt.dst],
                                      src1=src1, src2=src2)
                    pos += 1
                elif isinstance(stmt, CondBranch):
                    taken = rng.random() < stmt.p_taken
                    target = pc + 4 + 4 * stmt.skip
                    yield TraceRecord(pc, OpClass.BRANCH, src1=binding[stmt.src],
                                      taken=taken, target=target)
                    pos += 1 + (stmt.skip if taken else 0)
                else:  # pragma: no cover - LoopKernel validated the body
                    raise TypeError(f"unknown statement: {stmt!r}")

            # Induction update and loop back-edge.
            yield TraceRecord(ind_pc, OpClass.INT_ALU, dest=ind_reg, src1=ind_reg)
            last = it == kernel.iterations - 1
            yield TraceRecord(backedge_pc, OpClass.BRANCH, src1=ind_reg,
                              taken=not last, target=base)

        # Glue branch into the next kernel (always taken).
        yield TraceRecord(glue_pc, OpClass.BRANCH, src1=ind_reg, taken=True,
                          target=self._bases[next_idx])


def take(trace, n):
    """First ``n`` records of any trace iterable."""
    return list(itertools.islice(iter(trace), n))
