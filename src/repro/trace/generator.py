"""Dynamic trace generation from a :class:`~repro.trace.program.Workload`.

The generator walks the workload's kernels (weighted-random order),
running each kernel's loop for its trip count and emitting one
:class:`~repro.isa.instruction.TraceRecord` per dynamic instruction:

* each body statement in static program order (forward hammock branches
  skip statements when taken, keeping control flow consistent),
* an induction-variable update and a back-edge branch per iteration,
* a glue branch transferring control to the next kernel.

Everything is deterministic given ``(workload, seed)``; iterating the
same trace twice yields the identical instruction stream, which the
equivalence tests between renaming schemes rely on.

**Hot-path structure.**  Each kernel body is compiled *once* into a flat
emit program (a list of small tuples tagged by an integer opcode), so
emitting a dynamic instruction costs one tuple dispatch instead of an
``isinstance`` chain per record.  Statements whose record is fully
static (ALU/FP ops, branches — both outcomes, the induction update, the
back edge, the glue branch) pre-build immutable prototype
:class:`TraceRecord` objects at compile time and yield the *same* record
object for every dynamic instance; only loads and stores, whose
effective address varies, construct a fresh (validation-free) record
per instance.  The RNG consumption order is identical to the original
statement-by-statement interpretation, so streams are bit-identical.
"""

from __future__ import annotations

import copy
import itertools
from collections import OrderedDict
from random import Random

from repro.isa.instruction import TraceRecord
from repro.isa.opcodes import OpClass
from repro.isa.registers import NO_REG
from repro.trace.program import (
    INDUCTION,
    CondBranch,
    FpOp,
    IntOp,
    Load,
    RegisterBinding,
    Store,
)

#: PC spacing between kernels; each kernel may hold this many bytes of code.
KERNEL_PC_STRIDE = 0x1000
BASE_PC = 0x10000

# Emit-program opcodes (first element of each compiled tuple).
_EMIT_STATIC = 0  # (op, proto_record)
_EMIT_MEM = 1  # (op, array_name, pc, record_op, dest, src1, src2)
_EMIT_BRANCH = 2  # (op, p_taken, skip, proto_taken, proto_not_taken)


class _KernelProgram:
    """One kernel's compiled emit program plus its loop-closing records."""

    __slots__ = ("body", "induction", "backedge_taken", "backedge_last",
                 "glue", "iterations")

    def __init__(self, kernel, binding, base, kernel_bases):
        body_len = len(kernel.body)
        ind_pc = base + 4 * body_len
        backedge_pc = ind_pc + 4
        glue_pc = backedge_pc + 4
        ind_reg = binding[INDUCTION]
        self.iterations = kernel.iterations
        self.body = [
            self._compile_stmt(stmt, base + 4 * pos, binding)
            for pos, stmt in enumerate(kernel.body)
        ]
        self.induction = TraceRecord(ind_pc, OpClass.INT_ALU, dest=ind_reg,
                                     src1=ind_reg)
        self.backedge_taken = TraceRecord(backedge_pc, OpClass.BRANCH,
                                          src1=ind_reg, taken=True, target=base)
        self.backedge_last = TraceRecord(backedge_pc, OpClass.BRANCH,
                                         src1=ind_reg, taken=False, target=base)
        self.glue = [
            TraceRecord(glue_pc, OpClass.BRANCH, src1=ind_reg, taken=True,
                        target=target_base)
            for target_base in kernel_bases
        ]

    @staticmethod
    def _compile_stmt(stmt, pc, binding):
        if isinstance(stmt, Load):
            op = OpClass.LOAD_FP if stmt.fp else OpClass.LOAD_INT
            # Validate the static shape once, through the checked
            # constructor; dynamic instances go through the trusted one.
            TraceRecord(pc, op, dest=binding[stmt.dst],
                        src1=binding[stmt.base], addr=0)
            return (_EMIT_MEM, stmt.array, pc, op, binding[stmt.dst],
                    binding[stmt.base], NO_REG)
        if isinstance(stmt, Store):
            op = OpClass.STORE_FP if stmt.fp else OpClass.STORE_INT
            TraceRecord(pc, op, src1=binding[stmt.base],
                        src2=binding[stmt.value], addr=0)
            return (_EMIT_MEM, stmt.array, pc, op, NO_REG,
                    binding[stmt.base], binding[stmt.value])
        if isinstance(stmt, (IntOp, FpOp)):
            srcs = stmt.srcs
            src1 = binding[srcs[0]]
            src2 = binding[srcs[1]] if len(srcs) > 1 else NO_REG
            proto = TraceRecord(pc, stmt.kind, dest=binding[stmt.dst],
                                src1=src1, src2=src2)
            return (_EMIT_STATIC, proto)
        if isinstance(stmt, CondBranch):
            target = pc + 4 + 4 * stmt.skip
            src = binding[stmt.src]
            return (
                _EMIT_BRANCH, stmt.p_taken, stmt.skip,
                TraceRecord(pc, OpClass.BRANCH, src1=src, taken=True,
                            target=target),
                TraceRecord(pc, OpClass.BRANCH, src1=src, taken=False,
                            target=target),
            )
        raise TypeError(f"unknown statement: {stmt!r}")


# Materialized-trace cache: (workload name, seed) -> [records, stream].
# Trace streams are deterministic per (workload, seed), so repeated
# simulations of the same point — benchmark repeats, engine A/B
# comparisons, config sweeps over one workload — can share one
# materialization instead of re-running the generator.  Bounded LRU;
# entries grow on demand when a later caller needs a longer prefix.
_MATERIALIZED: OrderedDict = OrderedDict()
_MATERIALIZED_MAX = 4


def materialized_trace(workload, seed, count):
    """The first ``count`` records of ``SyntheticTrace(workload, seed)``.

    Served from a small process-level LRU keyed by ``(workload.name,
    seed)`` — callers must only use it for registry-loaded workloads,
    where the name uniquely identifies the kernel content.  Records are
    write-once (the pipeline never mutates a :class:`TraceRecord`), so
    sharing the materialized list across runs is safe.
    """
    key = (workload.name, seed)
    entry = _MATERIALIZED.get(key)
    if entry is None:
        entry = [[], iter(SyntheticTrace(workload, seed))]
        _MATERIALIZED[key] = entry
        while len(_MATERIALIZED) > _MATERIALIZED_MAX:
            _MATERIALIZED.popitem(last=False)
    else:
        _MATERIALIZED.move_to_end(key)
    records, stream = entry
    need = count - len(records)
    if need > 0:
        records.extend(itertools.islice(stream, need))
    return records[:count] if len(records) > count else records


def clear_materialized_traces():
    """Drop the materialized-trace cache (tests, memory pressure)."""
    _MATERIALIZED.clear()


class SyntheticTrace:
    """Iterable over the dynamic instruction stream of a workload.

    Each ``iter()`` produces an independent, identically-seeded stream.
    """

    def __init__(self, workload, seed=1234):
        self.workload = workload
        self.seed = seed
        self._bindings = [RegisterBinding(k) for k in workload.kernels]
        self._bases = [
            BASE_PC + i * KERNEL_PC_STRIDE for i in range(len(workload.kernels))
        ]
        for kernel, base in zip(workload.kernels, self._bases):
            static_len = len(kernel.body) + 3  # + induction, back-edge, glue
            if static_len * 4 > KERNEL_PC_STRIDE:
                raise ValueError(f"kernel {kernel.name!r} too large for PC region")
        self._programs = [
            _KernelProgram(kernel, binding, base, self._bases)
            for kernel, binding, base
            in zip(workload.kernels, self._bindings, self._bases)
        ]

    def __iter__(self):
        return self._generate()

    def take(self, n):
        """Materialize the first ``n`` records as a list."""
        return list(itertools.islice(iter(self), n))

    # -- internals ---------------------------------------------------------

    def _generate(self):
        rng = Random(self.seed)
        kernels = self.workload.kernels
        # Private pattern state per generator so that concurrent iterations
        # of one workload cannot interfere.
        arrays = [copy.deepcopy(k.arrays) for k in kernels]
        weights = [k.weight for k in kernels]
        current = rng.choices(range(len(kernels)), weights)[0]
        while True:
            nxt = rng.choices(range(len(kernels)), weights)[0]
            # One kernel visit is materialized eagerly and re-yielded at
            # C speed: the consumer crosses a single generator frame per
            # record instead of two.  The RNG draw order is unchanged
            # (nothing interleaves with a visit), so streams stay
            # bit-identical to lazy emission.
            yield from self._run_kernel(current, nxt, arrays[current], rng)
            current = nxt

    def _run_kernel(self, idx, next_idx, arrays, rng):
        """All records of one kernel visit, in emission order (a list)."""
        program = self._programs[idx]
        body = program.body
        body_len = len(body)
        trusted = TraceRecord.trusted
        random = rng.random
        induction = program.induction
        backedge_taken = program.backedge_taken
        last_iteration = program.iterations - 1
        out = []
        emit = out.append

        for it in range(program.iterations):
            pos = 0
            while pos < body_len:
                entry = body[pos]
                kind = entry[0]
                if kind == _EMIT_STATIC:
                    emit(entry[1])
                    pos += 1
                elif kind == _EMIT_MEM:
                    _, array, pc, op, dest, src1, src2 = entry
                    addr = arrays[array].next_address(rng)
                    emit(trusted(pc, op, dest, src1, src2, addr))
                    pos += 1
                else:  # _EMIT_BRANCH
                    taken = random() < entry[1]
                    if taken:
                        emit(entry[3])
                        pos += 1 + entry[2]
                    else:
                        emit(entry[4])
                        pos += 1

            # Induction update and loop back-edge.
            emit(induction)
            emit(backedge_taken if it != last_iteration
                 else program.backedge_last)

        # Glue branch into the next kernel (always taken).
        emit(program.glue[next_idx])
        return out


def take(trace, n):
    """First ``n`` records of any trace iterable."""
    return list(itertools.islice(iter(trace), n))
