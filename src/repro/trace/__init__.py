"""Synthetic trace substrate (the SPEC95/ATOM substitution).

See DESIGN.md §3 for the substitution rationale.  The public surface:

* the loop-kernel DSL (:mod:`repro.trace.program`),
* address patterns (:mod:`repro.trace.patterns`),
* the deterministic generator (:class:`SyntheticTrace`),
* the nine paper-named workload models (:data:`WORKLOADS`),
* plain-text trace I/O.
"""

from repro.trace.patterns import (
    AddressPattern,
    ArrayWalk,
    ChaseRegion,
    FixedAddress,
    RandomRegion,
)
from repro.trace.program import (
    INDUCTION,
    CondBranch,
    FpOp,
    IntOp,
    Load,
    LoopKernel,
    RegisterBinding,
    Store,
    Workload,
)
from repro.trace.generator import SyntheticTrace, take
from repro.trace.kernels import (
    pointer_chase_kernel,
    random_access_kernel,
    reduction_kernel,
    streaming_kernel,
)
from repro.trace.workloads import (
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    WORKLOADS,
    load_workload,
)
from repro.trace.io import load_trace, save_trace

__all__ = [
    "AddressPattern",
    "ArrayWalk",
    "ChaseRegion",
    "FixedAddress",
    "RandomRegion",
    "INDUCTION",
    "CondBranch",
    "FpOp",
    "IntOp",
    "Load",
    "LoopKernel",
    "RegisterBinding",
    "Store",
    "Workload",
    "SyntheticTrace",
    "take",
    "pointer_chase_kernel",
    "random_access_kernel",
    "reduction_kernel",
    "streaming_kernel",
    "FP_BENCHMARKS",
    "INT_BENCHMARKS",
    "WORKLOADS",
    "load_workload",
    "load_trace",
    "save_trace",
]
