"""Synthetic workload models named after the paper's nine benchmarks.

The paper evaluates five SPEC95 FP programs (swim, hydro2d, mgrid, apsi,
wave5) and four integer programs (go, compress, li, vortex), tracing 50M
instructions of Alpha code each.  We cannot re-run ATOM on SPEC95, so
each benchmark is modelled by a small loop-kernel program whose knobs —
instruction mix, dependence-chain depth, memory footprint and stride,
branch predictability, loop trip counts — are calibrated so that the
*conventional* machine lands near the paper's Table 2 IPC and the
workload exposes the same bottleneck the paper attributes to it:

* **swim / mgrid**: streaming FP stencils over multi-hundred-KB arrays;
  every new cache line misses, loop iterations are mutually independent,
  so performance is bounded by how many misses the window can overlap —
  precisely where late register allocation shines (paper: +84% / +58%).
* **apsi**: FP compute with moderate footprint and an occasional divide
  (+28%).
* **hydro2d / wave5**: FP codes with loop-carried recurrences and mostly
  L1-resident data; the conventional scheme is not register-bound, so
  gains are small (+4% each) despite high IPC.
* **go**: branch-dominated integer code with hard-to-predict branches;
  the window is drained by fetch stalls, not registers (+4%).
* **li**: pointer chasing (serially dependent loads) plus moderately
  predictable branches (+7%).
* **compress**: dictionary lookups with decent ILP and good prediction
  (+5%).
* **vortex**: random object lookups with predictable control flow (+9%).

Array base addresses are deliberately staggered modulo the 16 KB
direct-mapped cache so concurrent streams do not conflict-evict each
other (real compilers/allocators achieve the same by accident of
layout; perfect aliasing of all streams would be pathological).

Every factory returns a *fresh* :class:`~repro.trace.program.Workload`
(address patterns are stateful, so sharing instances across concurrent
simulations would be a bug).
"""

from __future__ import annotations

from repro.isa.opcodes import OpClass
from repro.trace.patterns import ArrayWalk, ChaseRegion, RandomRegion
from repro.trace.program import (
    CondBranch,
    FpOp,
    IntOp,
    Load,
    LoopKernel,
    Store,
    Workload,
)

KB = 1024


def swim():
    """Shallow-water stencil: independent iterations, miss-heavy streams.

    Two load streams and one store stream (0.75 new lines per iteration)
    with a 3-deep FP chain per element.  The conventional scheme can keep
    only a handful of iterations in flight before running out of FP
    registers; the VP scheme overlaps misses up to the MSHR limit.
    """
    body = [
        Load("u", "au", fp=True),
        Load("v", "av", fp=True),
        FpOp("t1", ("u", "v"), kind=OpClass.FP_ADD),
        FpOp("t2", ("t1", "u"), kind=OpClass.FP_MUL),
        FpOp("t3", ("t2", "v"), kind=OpClass.FP_ADD),
        Store("t3", "anew", fp=True),
        IntOp("idx", ("idx",)),
    ]
    kernel = LoopKernel(
        name="swim_stencil",
        body=body,
        iterations=64,
        arrays={
            "au": ArrayWalk(base=0x100_0000, length=64 * KB, elem_bytes=8),
            "av": ArrayWalk(base=0x200_1000, length=64 * KB, elem_bytes=8),
            "anew": ArrayWalk(base=0x400_3000, length=64 * KB, elem_bytes=8),
        },
    )
    return Workload("swim", [kernel], category="fp")


def mgrid():
    """Multigrid relaxation: streaming loads feeding a deep FP chain."""
    body = [
        Load("a", "grid", fp=True),
        Load("b", "grid2", fp=True),
        FpOp("s1", ("a", "b"), kind=OpClass.FP_MUL),
        FpOp("s2", ("s1", "a"), kind=OpClass.FP_ADD),
        Store("s2", "out", fp=True),
        IntOp("idx", ("idx",)),
    ]
    kernel = LoopKernel(
        name="mgrid_relax",
        body=body,
        iterations=64,
        arrays={
            "grid": ArrayWalk(base=0x100_0000, length=32 * KB, elem_bytes=8),
            "grid2": ArrayWalk(base=0x200_1400, length=2 * KB, elem_bytes=8),
            "out": ArrayWalk(base=0x300_2800, length=32 * KB, elem_bytes=8),
        },
    )
    return Workload("mgrid", [kernel], category="fp")


def apsi():
    """Mesoscale model: mixed FP with moderate footprint and rare divides."""
    compute = LoopKernel(
        name="apsi_compute",
        body=[
            Load("x", "field", fp=True),
            Load("y", "flux", fp=True),
            Load("pf", "nextfield", fp=True),
            FpOp("t1", ("x", "y"), kind=OpClass.FP_MUL),
            Store("t1", "field2", fp=True),
            IntOp("idx", ("idx",)),
        ],
        iterations=48,
        weight=4.0,
        arrays={
            "field": ArrayWalk(base=0x100_0000, length=24 * KB, elem_bytes=8),
            "flux": ArrayWalk(base=0x200_1000, length=24 * KB, elem_bytes=8),
            "nextfield": ArrayWalk(base=0x700_3800, length=24 * KB, elem_bytes=8),
            "field2": ArrayWalk(base=0x300_2000, length=512, elem_bytes=8),
        },
    )
    divides = LoopKernel(
        name="apsi_divide",
        body=[
            Load("n", "field", fp=True),
            Load("d", "flux", fp=True),
            FpOp("q", ("n", "d"), kind=OpClass.FP_DIV),
            FpOp("r", ("q", "n"), kind=OpClass.FP_ADD),
            Store("r", "out", fp=True),
            IntOp("idx", ("idx",)),
        ],
        iterations=16,
        weight=1.0,
        arrays={
            "field": ArrayWalk(base=0x400_0400, length=512, elem_bytes=8),
            "flux": ArrayWalk(base=0x500_1400, length=512, elem_bytes=8),
            "out": ArrayWalk(base=0x600_2400, length=512, elem_bytes=8),
        },
    )
    return Workload("apsi", [compute, divides], category="fp")


def hydro2d():
    """Navier-Stokes solver: L1-resident data with a loop-carried
    recurrence that caps the useful window, so the conventional scheme is
    not register-bound (high IPC, little VP headroom)."""
    body = [
        Load("a", "row", fp=True),
        Load("b", "col", fp=True),
        FpOp("p1", ("a", "b"), kind=OpClass.FP_MUL),
        FpOp("p2", ("a", "b"), kind=OpClass.FP_ADD),
        FpOp("acc", ("acc", "p1"), kind=OpClass.FP_ADD),
        FpOp("q", ("p2", "p1"), kind=OpClass.FP_MUL),
        Store("q", "out", fp=True),
        IntOp("i1", ("i1",)),
        IntOp("idx", ("idx",)),
    ]
    kernel = LoopKernel(
        name="hydro_sweep",
        body=body,
        iterations=128,
        arrays={
            "row": ArrayWalk(base=0x100_0000, length=512, elem_bytes=8),
            "col": ArrayWalk(base=0x110_1000, length=512, elem_bytes=8),
            "out": ArrayWalk(base=0x120_2000, length=512, elem_bytes=8),
        },
    )
    return Workload("hydro2d", [kernel], category="fp")


def wave5():
    """Particle-in-cell: mostly-resident random FP gathers, short chains."""
    body = [
        Load("e", "particles", fp=True),
        Load("f", "fields", fp=True),
        FpOp("w1", ("e", "f"), kind=OpClass.FP_MUL),
        FpOp("w2", ("w1", "e"), kind=OpClass.FP_ADD),
        FpOp("wacc", ("wacc", "w1"), kind=OpClass.FP_ADD),
        Store("w2", "accum", fp=True),
        Load("flag", "particles"),
        CondBranch(p_taken=0.7, src="flag"),
        IntOp("idx", ("idx",)),
    ]
    kernel = LoopKernel(
        name="wave_push",
        body=body,
        iterations=48,
        arrays={
            "particles": RandomRegion(base=0x100_0000, size_bytes=8 * KB),
            "fields": ArrayWalk(base=0x200_2000, length=512, elem_bytes=8),
            "accum": ArrayWalk(base=0x210_3000, length=512, elem_bytes=8),
        },
    )
    return Workload("wave5", [kernel], category="fp")


def go():
    """Game tree search: short int chains, many poorly-predicted branches."""
    body = [
        Load("pos", "board", base="bdbase"),
        IntOp("e1", ("pos", "acc")),
        CondBranch(p_taken=0.45, skip=1, src="e1"),
        IntOp("e2", ("e1",)),
        IntOp("acc", ("acc", "e2")),
        CondBranch(p_taken=0.55, skip=1, src="acc"),
        IntOp("e3", ("acc",)),
        Load("v", "board", base="bdbase"),
        IntOp("e4", ("v", "e3")),
        CondBranch(p_taken=0.5, src="e4"),
        IntOp("idx", ("idx",)),
    ]
    kernel = LoopKernel(
        name="go_eval",
        body=body,
        iterations=4,
        arrays={"board": RandomRegion(base=0x100_0000, size_bytes=8 * KB)},
    )
    return Workload("go", [kernel], category="int")


def li():
    """Lisp interpreter: pointer chasing through a resident heap."""
    body = [
        Load("ptr", "heap", base="ptr"),
        IntOp("tag", ("ptr",)),
        CondBranch(p_taken=0.72, src="tag"),
        IntOp("tag2", ("tag",)),
        IntOp("acc", ("acc", "tag")),
        Load("car", "cells", base="tag2"),
        IntOp("acc2", ("car", "acc")),
        IntOp("idx", ("idx",)),
    ]
    kernel = LoopKernel(
        name="li_eval",
        body=body,
        iterations=24,
        arrays={
            "heap": ChaseRegion(base=0x100_0000, size_bytes=12 * KB),
            "cells": RandomRegion(base=0x200_3000, size_bytes=4 * KB),
        },
    )
    return Workload("li", [kernel], category="int")


def compress():
    """LZW compression: resident dictionary lookups, good prediction."""
    body = [
        Load("code", "table", base="tblbase"),
        IntOp("h1", ("code", "key")),
        Load("nxt", "table", base="h1"),
        IntOp("key", ("nxt", "h1")),
        CondBranch(p_taken=0.86, src="key"),
        IntOp("outw", ("key", "h1")),
        Store("outw", "out"),
        IntOp("w2", ("outw",)),
        IntOp("idx", ("idx",)),
    ]
    kernel = LoopKernel(
        name="compress_loop",
        body=body,
        iterations=48,
        arrays={
            "table": RandomRegion(base=0x100_0000, size_bytes=8 * KB),
            "out": ArrayWalk(base=0x200_2800, length=512, elem_bytes=8),
        },
    )
    return Workload("compress", [kernel], category="int")


def vortex():
    """Object database: moderately missing lookups, predictable branches."""
    body = [
        Load("obj", "db", base="dbbase"),
        IntOp("fld", ("obj",)),
        Load("atr", "db", base="dbbase"),
        IntOp("m1", ("atr", "fld")),
        CondBranch(p_taken=0.98, src="m1"),
        IntOp("m2", ("m1", "acc")),
        Store("m2", "log"),
        IntOp("acc", ("m2",)),
        IntOp("chk", ("fld", "m1")),
        IntOp("idx", ("idx",)),
    ]
    kernel = LoopKernel(
        name="vortex_lookup",
        body=body,
        iterations=32,
        arrays={
            "db": RandomRegion(base=0x100_0000, size_bytes=17 * KB),
            "log": ArrayWalk(base=0x800_2800, length=512, elem_bytes=8),
        },
    )
    return Workload("vortex", [kernel], category="int")


#: Benchmark registry in the paper's Table 2 order (int first, then FP).
WORKLOADS = {
    "go": go,
    "li": li,
    "compress": compress,
    "vortex": vortex,
    "apsi": apsi,
    "swim": swim,
    "mgrid": mgrid,
    "hydro2d": hydro2d,
    "wave5": wave5,
}

INT_BENCHMARKS = ("go", "li", "compress", "vortex")
FP_BENCHMARKS = ("apsi", "swim", "mgrid", "hydro2d", "wave5")


def load_workload(name):
    """Instantiate a fresh workload by benchmark name."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return factory()
