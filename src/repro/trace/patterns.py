"""Address patterns for synthetic memory streams.

The cache behaviour of the paper's SPEC95 benchmarks is reproduced with
three pattern families:

* :class:`ArrayWalk` — strided streaming through a (possibly huge) array,
  the dominant pattern of the FP codes (swim, mgrid, hydro2d):
  arrays larger than the 16 KB L1 miss on every new 32-byte line.
* :class:`RandomRegion` — uniform random accesses inside a region, the
  hash-table/heap behaviour of the integer codes (compress, vortex).
* :class:`ChaseRegion` — like RandomRegion but intended for serially
  dependent loads (li's pointer chasing); the distinction matters to the
  dependence structure built in :mod:`repro.trace.program`, not to the
  addresses themselves.

All patterns are deterministic given the trace RNG.
"""

from __future__ import annotations


class AddressPattern:
    """Interface: produce the next effective address."""

    def next_address(self, rng):
        raise NotImplementedError

    def reset(self):
        """Restart the pattern (a fresh trace instantiation calls this)."""


class ArrayWalk(AddressPattern):
    """Strided walk over ``length`` elements of ``elem_bytes`` each.

    The walk wraps around at the end of the array, which is how a loop
    nest revisits its data on the next outer iteration.
    """

    def __init__(self, base, length, elem_bytes=8, stride=1):
        if length <= 0 or elem_bytes <= 0 or stride == 0:
            raise ValueError("ArrayWalk needs positive length/element size and nonzero stride")
        self.base = base
        self.length = length
        self.elem_bytes = elem_bytes
        self.stride = stride
        self._pos = 0

    @property
    def footprint_bytes(self):
        return self.length * self.elem_bytes

    def next_address(self, rng):
        addr = self.base + (self._pos % self.length) * self.elem_bytes
        self._pos += self.stride
        return addr

    def reset(self):
        self._pos = 0


class RandomRegion(AddressPattern):
    """Uniformly random aligned addresses within ``size_bytes``."""

    def __init__(self, base, size_bytes, align=8):
        if size_bytes < align or align <= 0:
            raise ValueError("region must hold at least one aligned word")
        self.base = base
        self.size_bytes = size_bytes
        self.align = align
        self._slots = size_bytes // align

    @property
    def footprint_bytes(self):
        return self.size_bytes

    def next_address(self, rng):
        return self.base + rng.randrange(self._slots) * self.align

    def reset(self):
        return None


class ChaseRegion(RandomRegion):
    """Random addresses for pointer-chasing loads.

    Address-wise identical to :class:`RandomRegion`; kernels mark chasing
    loads by making each load's base register the previous load's
    destination, serializing them.
    """


class FixedAddress(AddressPattern):
    """Always the same address — scalar/global accesses and tests."""

    def __init__(self, addr):
        self.addr = addr

    @property
    def footprint_bytes(self):
        return 8

    def next_address(self, rng):
        return self.addr

    def reset(self):
        return None
