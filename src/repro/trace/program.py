"""A small loop-kernel DSL for building synthetic programs.

A *workload* is a weighted collection of :class:`LoopKernel`\\ s.  Each
kernel is a loop: a straight-line ``body`` of statements executed
``iterations`` times per visit, closed by an induction-variable update
and a back-edge branch.  The trace generator in
:mod:`repro.trace.generator` interleaves visits to the kernels.

Statements name registers symbolically ("sum", "ptr", ...).  The builder
infers each name's register class from how it is produced/consumed and
assigns it a fixed logical register, so re-executing the body reuses the
same logical registers — exactly the anti/output dependence pattern that
register renaming exists to break, and whose *true* dependences (loop
recurrences appear when a statement reads a name written by a later
statement or by itself) stress the issue queue the way the paper's
benchmarks do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import OpClass
from repro.isa.registers import (
    NUM_LOGICAL_FP,
    NUM_LOGICAL_INT,
    RegClass,
    make_reg,
)
from repro.trace.patterns import AddressPattern


@dataclass(frozen=True)
class Load:
    """Load ``array[...]`` into register ``dst``; EA depends on ``base``."""

    dst: str
    array: str
    base: str = "__ind"
    fp: bool = False


@dataclass(frozen=True)
class Store:
    """Store register ``value`` to ``array[...]``; EA depends on ``base``."""

    value: str
    array: str
    base: str = "__ind"
    fp: bool = False


@dataclass(frozen=True)
class IntOp:
    """Integer operation ``dst = op(srcs)``."""

    dst: str
    srcs: tuple
    kind: OpClass = OpClass.INT_ALU

    def __post_init__(self):
        if self.kind not in (OpClass.INT_ALU, OpClass.INT_MUL, OpClass.INT_DIV):
            raise ValueError(f"IntOp cannot have kind {self.kind.name}")
        if not 1 <= len(self.srcs) <= 2:
            raise ValueError("IntOp takes one or two sources")


@dataclass(frozen=True)
class FpOp:
    """Floating-point operation ``dst = op(srcs)``."""

    dst: str
    srcs: tuple
    kind: OpClass = OpClass.FP_ADD

    def __post_init__(self):
        if self.kind not in (
            OpClass.FP_ADD,
            OpClass.FP_MUL,
            OpClass.FP_DIV,
            OpClass.FP_SQRT,
        ):
            raise ValueError(f"FpOp cannot have kind {self.kind.name}")
        if not 1 <= len(self.srcs) <= 2:
            raise ValueError("FpOp takes one or two sources")


@dataclass(frozen=True)
class CondBranch:
    """Data-dependent conditional branch inside the body.

    With probability ``p_taken`` the branch is taken and the next
    ``skip`` body statements are skipped (a forward hammock), keeping the
    dynamic control flow consistent with the static layout.  The branch
    reads ``src`` (default: the induction variable).
    """

    p_taken: float
    skip: int = 0
    src: str = "__ind"

    def __post_init__(self):
        if not 0.0 <= self.p_taken <= 1.0:
            raise ValueError("p_taken must be a probability")
        if self.skip < 0:
            raise ValueError("skip must be non-negative")


#: Name of the implicit per-kernel induction variable (an int register).
INDUCTION = "__ind"

Statement = object  # union of the dataclasses above; kept duck-typed


@dataclass
class LoopKernel:
    """One loop nest of a synthetic workload."""

    name: str
    body: list
    iterations: int
    arrays: dict = field(default_factory=dict)
    weight: float = 1.0

    def __post_init__(self):
        if self.iterations < 1:
            raise ValueError("a kernel runs at least one iteration")
        if self.weight <= 0:
            raise ValueError("kernel weight must be positive")
        for name, pattern in self.arrays.items():
            if not isinstance(pattern, AddressPattern):
                raise TypeError(f"array {name!r} is not an AddressPattern")
        self._check_branch_skips()

    def _check_branch_skips(self):
        for pos, stmt in enumerate(self.body):
            if isinstance(stmt, CondBranch):
                remaining = len(self.body) - pos - 1
                if stmt.skip > remaining:
                    raise ValueError(
                        f"kernel {self.name!r}: branch at body[{pos}] skips "
                        f"{stmt.skip} statements but only {remaining} remain"
                    )

    def referenced_arrays(self):
        names = set()
        for stmt in self.body:
            if isinstance(stmt, (Load, Store)):
                names.add(stmt.array)
        return names


class RegisterBinding:
    """Maps a kernel's symbolic register names to logical registers.

    Names are bound greedily in order of first definition/use; integer
    names get ``r1..``, FP names get ``f0..``.  ``r0`` stays free as a
    conventional zero register.  A kernel using more names than logical
    registers is a build error (spill modelling is out of scope).
    """

    def __init__(self, kernel):
        self.kernel = kernel
        self.cls_of = {}
        self._infer_classes()
        self.reg_of = {}
        self._assign()

    def _note(self, name, cls):
        prev = self.cls_of.get(name)
        if prev is None:
            self.cls_of[name] = cls
        elif prev != cls:
            raise ValueError(
                f"kernel {self.kernel.name!r}: register {name!r} used as both "
                f"{prev.name} and {cls.name}"
            )

    def _infer_classes(self):
        self._note(INDUCTION, RegClass.INT)
        for stmt in self.kernel.body:
            if isinstance(stmt, Load):
                self._note(stmt.base, RegClass.INT)
                self._note(stmt.dst, RegClass.FP if stmt.fp else RegClass.INT)
            elif isinstance(stmt, Store):
                self._note(stmt.base, RegClass.INT)
                self._note(stmt.value, RegClass.FP if stmt.fp else RegClass.INT)
            elif isinstance(stmt, IntOp):
                self._note(stmt.dst, RegClass.INT)
                for s in stmt.srcs:
                    self._note(s, RegClass.INT)
            elif isinstance(stmt, FpOp):
                self._note(stmt.dst, RegClass.FP)
                for s in stmt.srcs:
                    self._note(s, RegClass.FP)
            elif isinstance(stmt, CondBranch):
                self._note(stmt.src, RegClass.INT)
            else:
                raise TypeError(f"unknown statement type: {stmt!r}")

    def _assign(self):
        next_idx = {RegClass.INT: 1, RegClass.FP: 0}  # r0 reserved as zero reg
        limits = {RegClass.INT: NUM_LOGICAL_INT, RegClass.FP: NUM_LOGICAL_FP}
        for name, cls in self.cls_of.items():
            idx = next_idx[cls]
            if idx >= limits[cls]:
                raise ValueError(
                    f"kernel {self.kernel.name!r} needs more than "
                    f"{limits[cls]} {cls.name} registers"
                )
            self.reg_of[name] = make_reg(cls, idx)
            next_idx[cls] = idx + 1

    def __getitem__(self, name):
        return self.reg_of[name]


@dataclass
class Workload:
    """A named, categorized set of kernels — one synthetic 'benchmark'."""

    name: str
    kernels: list
    category: str = "int"  # "int" or "fp", following the paper's grouping

    def __post_init__(self):
        if not self.kernels:
            raise ValueError("workload needs at least one kernel")
        if self.category not in ("int", "fp"):
            raise ValueError("category must be 'int' or 'fp'")
        seen = set()
        for kernel in self.kernels:
            if kernel.name in seen:
                raise ValueError(f"duplicate kernel name {kernel.name!r}")
            seen.add(kernel.name)
