"""Plain-text trace serialization.

One record per line::

    pc op dest src1 src2 addr taken target

This lets users snapshot a synthetic stream, edit traces by hand for
experiments, or feed the simulator from traces produced elsewhere (the
role ATOM output played for the paper's simulator).
"""

from __future__ import annotations

from repro.isa.instruction import TraceRecord
from repro.isa.opcodes import OpClass

_HEADER = "# repro-trace-v1"


def save_trace(records, path):
    """Write an iterable of records to ``path``; returns the count."""
    count = 0
    with open(path, "w", encoding="ascii") as fh:
        fh.write(_HEADER + "\n")
        for rec in records:
            fh.write(
                f"{rec.pc:#x} {rec.op.name} {rec.dest} {rec.src1} {rec.src2} "
                f"{rec.addr:#x} {int(rec.taken)} {rec.target:#x}\n"
            )
            count += 1
    return count


def load_trace(path):
    """Read a trace file back into a list of records."""
    records = []
    with open(path, "r", encoding="ascii") as fh:
        header = fh.readline().strip()
        if header != _HEADER:
            raise ValueError(f"{path}: not a repro trace file (header {header!r})")
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 8:
                raise ValueError(f"{path}:{lineno}: expected 8 fields, got {len(fields)}")
            pc, opname, dest, src1, src2, addr, taken, target = fields
            records.append(
                TraceRecord(
                    pc=int(pc, 0),
                    op=OpClass[opname],
                    dest=int(dest),
                    src1=int(src1),
                    src2=int(src2),
                    addr=int(addr, 0),
                    taken=bool(int(taken)),
                    target=int(target, 0),
                )
            )
    return records
