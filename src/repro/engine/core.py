"""The batch engine: grid in, results out, every cache layer between.

:class:`BatchEngine` accepts an iterable of resolved
:class:`~repro.engine.spec.RunSpec`\\ s and returns their results in
spec order.  For each spec it consults, in order:

1. the in-process memo (same object returned for repeated specs),
2. the persistent :class:`~repro.engine.store.ResultStore` (if any),
3. the executor, which simulates the remaining misses — deduplicated,
   so a grid that names the conventional baseline nine times runs it
   once.

The executor seam is where the engine scales: the same ``run()`` call
executes in-process, on local process pools, or across a cluster of
``repro worker`` daemons (:class:`~repro.engine.remote.RemoteExecutor`)
without the caller changing anything.

Execution counters (``memo_hits`` / ``store_hits`` / ``executed``) are
kept per ``run()`` call so callers can report cache effectiveness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.engine.executors import SerialExecutor, make_executor
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing

_POINTS = _metrics.get_registry().counter(
    "repro_engine_points_total",
    "Batch-engine points served, by source (memo/store/executed).",
    labelnames=("source",))
_BATCH_SECONDS = _metrics.get_registry().histogram(
    "repro_engine_batch_seconds",
    "Wall-clock duration of BatchEngine executor windows.")


@dataclass
class BatchStats:
    """Where each spec of one ``run()`` call was served from."""

    memo_hits: int = 0
    store_hits: int = 0
    executed: int = 0
    keys: list = field(default_factory=list)
    #: Set when the executor completed the batch in degraded mode (the
    #: remote backend lost its cluster and fell back to local
    #: execution); the executor's ``last_run_report["degraded"]`` dict.
    degraded: dict | None = None

    @property
    def total(self):
        return self.memo_hits + self.store_hits + self.executed


class BatchEngine:
    """Executes run-spec grids through memo, store, and executor."""

    def __init__(self, executor=None, store=None, progress=None):
        self.executor = executor or SerialExecutor()
        self.store = store
        self.progress = progress
        self._memo = {}  # key -> SimResult
        self.last_batch = BatchStats()

    @classmethod
    def with_jobs(cls, jobs=None, store=None, progress=None):
        """An engine whose executor matches a requested job count."""
        return cls(executor=make_executor(jobs), store=store,
                   progress=progress)

    @classmethod
    def with_workers(cls, workers, store=None, progress=None):
        """An engine that executes misses on a remote worker cluster.

        ``workers`` is a ``host[:port],...`` string or iterable naming
        ``repro worker --serve`` daemons (see
        :mod:`repro.engine.remote`).
        """
        return cls(executor=make_executor(kind="remote", workers=workers),
                   store=store, progress=progress)

    def run(self, specs, trace=None):
        """Simulate every spec, returning results in spec order."""
        specs = list(specs)
        results = [None] * len(specs)
        for position, _, result in self.run_specs_iter(specs,
                                                       trace=trace):
            results[position] = result
        return results

    def run_specs_iter(self, specs, trace=None):
        """Stream ``(position, spec, result)`` as each result lands.

        The incremental face of :meth:`run`, and the seam the service
        gateway streams from.  Memo and store hits are yielded
        immediately (before the executor is even invoked), then
        executed results follow in **completion order** — whatever the
        executor's ``run_iter`` yields first (serial: submission order;
        pools and the remote backend: whichever run finishes first).
        Every position of the input grid is yielded exactly once;
        duplicate specs are yielded as soon as their shared key
        resolves.  Cache layers, deduplication, and ``last_batch``
        accounting are identical to :meth:`run` — collecting this
        stream IS :meth:`run`.

        ``trace`` is an optional trace id (or per-position list of
        ids, the gateway-round form) threaded through the executor and
        recorded as queue/dispatch/run/store spans — see
        :mod:`repro.obs.tracing`.  ``None`` falls back to the thread's
        ambient trace, so an untraced call records nothing.
        """
        specs = list(specs)
        for spec in specs:
            if not spec.is_resolved:
                raise ValueError(f"unresolved spec submitted: {spec!r}")
        if isinstance(trace, (list, tuple)):
            traces = [t for t in trace] + [None] * (len(specs)
                                                    - len(trace))
        else:
            traces = [trace] * len(specs)
        ambient = _tracing.current_trace()
        traces = [t if t is not None else ambient for t in traces]
        distinct = {t for t in traces if t is not None}
        batch_trace = distinct.pop() if len(distinct) == 1 else None
        keys = [spec.key() for spec in specs]
        batch = BatchStats(keys=list(dict.fromkeys(keys)))
        scan_started = time.time()
        pending = {}  # key -> spec, deduplicated, submission order
        for spec, key in zip(specs, keys):
            if key in pending or key in self._memo:
                continue
            if self.store is not None:
                stored = self.store.get(key)
                if stored is not None:
                    self._memo[key] = stored
                    batch.store_hits += 1
                    continue
            pending[key] = spec
        batch.memo_hits = len(batch.keys) - batch.store_hits - len(pending)
        self.last_batch = batch
        if batch.memo_hits:
            _POINTS.inc(batch.memo_hits, source="memo")
        if batch.store_hits:
            _POINTS.inc(batch.store_hits, source="store")
        if batch_trace is not None:
            _tracing.record_span(
                "queue", "engine.cache-scan", scan_started,
                time.time() - scan_started, trace=batch_trace,
                attrs={"points": len(specs),
                       "memo_hits": batch.memo_hits,
                       "store_hits": batch.store_hits,
                       "pending": len(pending)})
        # Cache hits flush first: every position already servable.
        for position, key in enumerate(keys):
            if key not in pending:
                yield position, specs[position], self._memo[key]
        if not pending:
            return
        positions = {}  # key -> positions awaiting the executed result
        for position, key in enumerate(keys):
            if key in pending:
                positions.setdefault(key, []).append(position)
        items = list(pending.items())
        # key -> trace of the first position awaiting it, for per-run
        # spans when a gateway round mixes jobs (no single batch trace).
        key_traces = {key: traces[poss[0]]
                      for key, poss in positions.items()}
        run_iter = getattr(self.executor, "run_iter", None)
        dispatch_started = time.time()
        outcome = "ok"
        # Bind the batch trace to this thread so trace-aware executors
        # (RemoteExecutor chunk dispatch) pick it up via
        # ``current_trace`` without an API change at the run_iter seam.
        with _tracing.trace_context(batch_trace):
            try:
                if run_iter is not None:
                    stream = run_iter([spec for _, spec in items],
                                      progress=self.progress)
                else:  # pre-streaming executor: barrier, then flush
                    stream = enumerate(self.executor.run(
                        [spec for _, spec in items],
                        progress=self.progress))
                for index, result in stream:
                    key, spec = items[index]
                    run_trace = key_traces.get(key)
                    self._memo[key] = result
                    if run_trace is not None:
                        _tracing.record_span(
                            "run", "engine.run", dispatch_started,
                            time.time() - dispatch_started,
                            trace=run_trace,
                            attrs={"key": key,
                                   "workload": spec.workload,
                                   "label": spec.label,
                                   "engine": getattr(spec.config,
                                                     "engine", ""),
                                   "engine_fallbacks":
                                       result.stats.engine_fallbacks})
                    if self.store is not None:
                        store_started = time.time()
                        self.store.put(key, result)
                        if run_trace is not None:
                            _tracing.record_span(
                                "store", "engine.store-put",
                                store_started,
                                time.time() - store_started,
                                trace=run_trace, attrs={"key": key})
                    # Counted as each result lands, so a failed or
                    # abandoned run reports only work that happened.
                    batch.executed += 1
                    _POINTS.inc(source="executed")
                    for position in positions[key]:
                        yield position, specs[position], result
            except BaseException:
                outcome = "error"
                raise
            finally:
                elapsed = time.time() - dispatch_started
                _BATCH_SECONDS.observe(elapsed)
                if batch_trace is not None:
                    _tracing.record_span(
                        "dispatch", "engine.dispatch",
                        dispatch_started, elapsed, trace=batch_trace,
                        outcome=outcome,
                        attrs={"pending": len(items),
                               "executed": batch.executed,
                               "executor":
                                   type(self.executor).__name__})
        # Surface executor degradation (remote cluster lost, local
        # fallback used) on the batch, where the CLI dispatch report
        # and the gateway's /v1/metrics can see it.
        report = getattr(self.executor, "last_run_report", None)
        if isinstance(report, dict) and report.get("degraded"):
            batch.degraded = report["degraded"]

    def run_one(self, spec):
        """Convenience wrapper: a one-spec batch."""
        return self.run([spec])[0]
