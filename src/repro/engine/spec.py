"""Run specifications — the unit of work the batch engine executes.

A :class:`RunSpec` names one simulation: a workload, a configuration,
and the run length / seed.  The run-length fields may be left ``None``
by callers that want the environment defaults (``REPRO_BENCH_*``); such
specs are *unresolved* and must pass through :meth:`RunSpec.resolved`
before execution.  A resolved spec has a stable string :meth:`key` built
from the config's content hash, which identifies the run across
processes and interpreter sessions, and serializes losslessly through
:meth:`RunSpec.to_dict` / :meth:`RunSpec.from_dict` — the wire format
the remote executor ships to ``repro worker`` daemons.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class RunSpec:
    """One simulation in an experiment grid."""

    workload: str
    config: object
    label: str = ""
    instructions: int | None = None
    skip: int | None = None
    seed: int | None = None

    @property
    def is_resolved(self):
        """Whether every run-length field is filled (spec is keyable)."""
        return None not in (self.instructions, self.skip, self.seed)

    def resolved(self, instructions=30_000, skip=3_000, seed=1234):
        """A copy with every ``None`` run-length field filled in."""
        return replace(
            self,
            instructions=self.instructions if self.instructions is not None
            else instructions,
            skip=self.skip if self.skip is not None else skip,
            seed=self.seed if self.seed is not None else seed,
        )

    def key(self):
        """Stable identity: config hash × workload × run length × seed.

        Only defined for resolved specs — an unresolved spec has no
        single identity because the environment defaults may change.
        """
        if not self.is_resolved:
            raise ValueError("cannot key an unresolved RunSpec; "
                             "call .resolved() first")
        return (f"{self.workload}:{self.config.key()}"
                f":{self.instructions}:{self.skip}:{self.seed}")

    def to_dict(self):
        """JSON-compatible form (the remote-executor wire format).

        Round-trips through :meth:`from_dict`: the nested config is
        serialized with ``ProcessorConfig.to_dict``, so a deserialized
        spec produces the identical :meth:`key`.
        """
        config = self.config
        if config is not None and hasattr(config, "to_dict"):
            config = config.to_dict()
        return {
            "workload": self.workload,
            "config": config,
            "label": self.label,
            "instructions": self.instructions,
            "skip": self.skip,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict` (ignores unknown keys)."""
        from repro.uarch.config import ProcessorConfig

        config = data.get("config")
        if isinstance(config, dict):
            config = ProcessorConfig.from_dict(config)
        return cls(
            workload=data["workload"],
            config=config,
            label=data.get("label", ""),
            instructions=data.get("instructions"),
            skip=data.get("skip"),
            seed=data.get("seed"),
        )
