"""Deterministic, seeded fault injection for the distributed stack.

The distributed layers (remote executor, worker daemons, process pools,
result store, gateway scheduler) all claim one invariant: results are
bit-identical to a serial run, *even under failure*.  This module makes
that claim testable.  Code under test calls :func:`fault` at named
injection sites; in production the call is a near-free no-op, and under a
:class:`FaultPlan` each site fires deterministically from a seeded RNG so
a chaos run can be replayed exactly.

A plan is a set of sites with per-site triggers::

    plan = FaultPlan.from_string(
        "seed=42;worker.crash_before_reply:n=1;remote.connect:p=0.25,n=3")

and activates either explicitly (:func:`install`, used by ``--faults``)
or through the ``REPRO_FAULTS`` environment variable, which subprocess
pool workers and spawned worker daemons inherit automatically.

Per-site triggers:

``p``      probability per hit (default 1.0 — always fire)
``n``      maximum number of fires (default unlimited)
``after``  skip the first N hits before arming (default 0)
``delay``  seconds, for sites that sleep rather than raise

Each site draws from its own ``random.Random`` seeded from
``(plan seed, site name)``, so firing decisions do not depend on the
interleaving of *other* sites — the same plan fires the same way no
matter how threads race.  Counters are per-process: a pool worker that
inherits ``REPRO_FAULTS`` runs its own copy of the plan.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "FAULT_SITES",
    "FaultSite",
    "FaultPlan",
    "install",
    "clear",
    "active_plan",
    "fault",
    "fault_delay",
]

ENV_VAR = "REPRO_FAULTS"

#: Every known injection site and where it bites.  ``from_string`` rejects
#: unknown names so a typo'd site cannot silently never fire.
FAULT_SITES: Dict[str, str] = {
    "remote.connect": "RemoteExecutor: a connect/request attempt fails "
                      "with ConnectionError before anything is sent",
    "remote.heartbeat": "RemoteExecutor: a heartbeat ping to an idle "
                        "worker fails",
    "remote.chunk_reply": "RemoteExecutor: a chunk reply is dropped after "
                          "the worker ran it (work done, answer lost)",
    "worker.crash_before_reply": "WorkerServer: handler drops the "
                                 "connection after running a batch, "
                                 "before writing the reply",
    "worker.slow_reply": "WorkerServer: handler sleeps `delay` seconds "
                         "(default 1.0) before replying",
    "worker.garbage_reply": "WorkerServer: handler writes a non-JSON "
                            "line instead of the reply",
    "worker.exit": "WorkerServer: the daemon hard-exits (os._exit) while "
                   "handling a run_batch — a true mid-chunk kill",
    "exec.hang": "execute_spec: sleeps `delay` seconds (default 60.0) "
                 "before simulating — exercises run timeouts",
    "exec.die": "execute_spec: the executing process hard-exits — a "
                "dying pool worker",
    "store.torn_append": "ResultStore.put: writes a torn (truncated) "
                         "line, as after a crash mid-append",
    "store.corrupt_append": "ResultStore.put: writes a line whose CRC "
                            "does not match its payload",
    "gateway.round": "Gateway scheduler: a scheduling round raises "
                     "before executing its batch",
}


@dataclass
class FaultSite:
    """Trigger configuration for one named injection site."""

    name: str
    probability: float = 1.0
    count: Optional[int] = None
    after: int = 0
    delay: Optional[float] = None

    def spec(self) -> str:
        """Render this site back into ``FaultPlan.from_string`` syntax."""
        parts = [self.name]
        opts = []
        if self.probability < 1.0:
            opts.append(f"p={self.probability:g}")
        if self.count is not None:
            opts.append(f"n={self.count}")
        if self.after:
            opts.append(f"after={self.after}")
        if self.delay is not None:
            opts.append(f"delay={self.delay:g}")
        if opts:
            parts.append(",".join(opts))
        return ":".join(parts)


@dataclass
class FaultPlan:
    """A seeded set of fault sites; asks-and-answers ``should_fire``.

    Thread-safe.  Decisions are deterministic given the seed and the
    per-site hit sequence; an execution log of fired faults is kept for
    chaos-run artifacts (:meth:`report`).
    """

    sites: Dict[str, FaultSite] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._rngs: Dict[str, random.Random] = {}
        self._hits: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self._log: List[str] = []

    # -- construction ---------------------------------------------------

    @classmethod
    def from_string(cls, text: str) -> "FaultPlan":
        """Parse a plan from ``REPRO_FAULTS`` / ``--faults`` syntax.

        Entries are ``;``-separated.  ``seed=<int>`` sets the plan seed;
        every other entry is ``<site>[:k=v[,k=v...]]`` with keys ``p``
        (probability), ``n`` (max fires), ``after`` (skip first N hits)
        and ``delay`` (seconds).  A bare site name always fires.
        """
        plan = cls()
        for entry in text.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            if entry.startswith("seed="):
                plan.seed = int(entry[len("seed="):])
                continue
            name, _, opts = entry.partition(":")
            name = name.strip()
            if name not in FAULT_SITES:
                known = ", ".join(sorted(FAULT_SITES))
                raise ValueError(
                    f"unknown fault site {name!r}; known sites: {known}")
            site = FaultSite(name=name)
            for pair in filter(None, (p.strip() for p in opts.split(","))):
                key, _, value = pair.partition("=")
                if key == "p":
                    site.probability = float(value)
                elif key == "n":
                    site.count = int(value)
                elif key == "after":
                    site.after = int(value)
                elif key == "delay":
                    site.delay = float(value)
                else:
                    raise ValueError(
                        f"unknown fault option {key!r} in {entry!r} "
                        "(expected p, n, after or delay)")
            plan.sites[name] = site
        return plan

    def to_string(self) -> str:
        """Render the plan back into ``from_string`` syntax."""
        parts = [f"seed={self.seed}"]
        parts.extend(site.spec() for site in self.sites.values())
        return ";".join(parts)

    # -- runtime --------------------------------------------------------

    def _rng(self, name: str) -> random.Random:
        rng = self._rngs.get(name)
        if rng is None:
            rng = self._rngs[name] = random.Random(f"{self.seed}:{name}")
        return rng

    def should_fire(self, name: str) -> bool:
        """Record a hit at ``name`` and decide whether the fault fires."""
        site = self.sites.get(name)
        if site is None:
            return False
        with self._lock:
            hit = self._hits.get(name, 0) + 1
            self._hits[name] = hit
            if hit <= site.after:
                return False
            if site.count is not None and self._fired.get(name, 0) >= site.count:
                return False
            fire = (site.probability >= 1.0
                    or self._rng(name).random() < site.probability)
            if fire:
                self._fired[name] = self._fired.get(name, 0) + 1
                self._log.append(f"{name} fired on hit {hit}")
            return fire

    def delay_for(self, name: str, default: float) -> float:
        """The configured ``delay`` for ``name``, or ``default``."""
        site = self.sites.get(name)
        if site is None or site.delay is None:
            return default
        return site.delay

    def report(self) -> dict:
        """Summarise what fired, for logs and chaos-run artifacts."""
        with self._lock:
            return {
                "seed": self.seed,
                "plan": self.to_string(),
                "hits": dict(self._hits),
                "fired": dict(self._fired),
                "log": list(self._log),
            }


# -- process-global activation ------------------------------------------

_installed: Optional[FaultPlan] = None
_env_raw: Optional[str] = None
_env_plan: Optional[FaultPlan] = None
_env_lock = threading.Lock()


def install(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Activate ``plan`` process-wide (overrides ``REPRO_FAULTS``)."""
    global _installed
    _installed = plan
    return plan


def clear() -> None:
    """Deactivate any installed plan and forget the env-parsed cache."""
    global _installed, _env_raw, _env_plan
    _installed = None
    _env_raw = None
    _env_plan = None


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, else one parsed from ``REPRO_FAULTS`` (cached
    until the variable's value changes), else ``None``."""
    if _installed is not None:
        return _installed
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    global _env_raw, _env_plan
    with _env_lock:
        if raw != _env_raw:
            _env_plan = FaultPlan.from_string(raw)
            _env_raw = raw
        return _env_plan


def fault(name: str) -> bool:
    """True when the active plan says site ``name`` fires right now.

    This is the hook production code calls; with no plan active it costs
    one dict lookup and one ``os.environ.get``.
    """
    plan = active_plan()
    return plan is not None and plan.should_fire(name)


def fault_delay(name: str, default: float) -> float:
    """The active plan's ``delay`` for ``name``, or ``default``."""
    plan = active_plan()
    if plan is None:
        return default
    return plan.delay_for(name, default)
