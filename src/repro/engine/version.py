"""Code-version fingerprint for cache invalidation and cluster safety.

Persistent cache entries must die when the simulator changes, otherwise
a figure regenerated after a model fix would silently serve stale
numbers.  The fingerprint is a hash of every ``.py`` source file in the
``repro`` package, so *any* code change — timing model, trace
generator, renamer — invalidates every stored result.

The same fingerprint guards the distributed backend: ``repro worker``
daemons report it in their ping response, and the coordinator
(:class:`~repro.engine.remote.RemoteExecutor`) refuses workers whose
fingerprint differs from its own — mixing simulator builds in one sweep
would poison the shared result store.
"""

from __future__ import annotations

import hashlib
import pathlib

_cached_version = None


def code_version():
    """Hex digest of the repro package's source tree (memoized)."""
    global _cached_version
    if _cached_version is None:
        package_root = pathlib.Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _cached_version = digest.hexdigest()[:12]
    return _cached_version
