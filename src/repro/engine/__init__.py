"""Parallel batch-execution engine with a persistent result store.

Every simulation in this repository — experiment grids, CLI commands,
benchmark harness, examples — flows through this package:

* :class:`~repro.engine.spec.RunSpec` names one simulation and gives it
  a stable cross-process identity (config content hash × workload ×
  run length × seed).
* :class:`~repro.engine.executors.SerialExecutor` and
  :class:`~repro.engine.executors.ProcessPoolExecutor` are the pluggable
  execution strategies; the pool is sized from ``os.cpu_count()`` (or
  ``REPRO_JOBS``).
* :class:`~repro.engine.store.ResultStore` persists results as JSON
  lines under ``REPRO_CACHE_DIR`` (default ``~/.cache/repro``), keyed
  additionally on a hash of the package source so any simulator change
  invalidates stale results.
* :class:`~repro.engine.core.BatchEngine` ties the layers together:
  grid in, results (in spec order) out.
"""

from repro.engine.core import BatchEngine, BatchStats
from repro.engine.executors import (
    EXECUTOR_KINDS,
    PersistentPoolExecutor,
    ProcessPoolExecutor,
    SerialExecutor,
    default_jobs,
    execute_spec,
    make_executor,
)
from repro.engine.spec import RunSpec
from repro.engine.store import ResultStore, default_cache_dir
from repro.engine.version import code_version

__all__ = [
    "BatchEngine",
    "BatchStats",
    "EXECUTOR_KINDS",
    "PersistentPoolExecutor",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "RunSpec",
    "ResultStore",
    "code_version",
    "default_cache_dir",
    "default_jobs",
    "execute_spec",
    "make_executor",
]
