"""Parallel batch-execution engine with a persistent result store.

Every simulation in this repository — experiment grids, CLI commands,
benchmark harness, examples — flows through this package:

* :class:`~repro.engine.spec.RunSpec` names one simulation and gives it
  a stable cross-process identity (config content hash × workload ×
  run length × seed); it serializes losslessly, so specs travel to
  remote workers.
* :class:`~repro.engine.executors.SerialExecutor`,
  :class:`~repro.engine.executors.ProcessPoolExecutor`,
  :class:`~repro.engine.executors.PersistentPoolExecutor`, and
  :class:`~repro.engine.remote.RemoteExecutor` are the pluggable
  execution strategies (one process, fresh pool, warm pool, worker
  cluster); :func:`~repro.engine.executors.make_executor` picks one
  from the CLI/environment selection.
* :class:`~repro.engine.store.ResultStore` persists results as sharded
  JSON-lines segments under ``REPRO_CACHE_DIR`` (default
  ``~/.cache/repro``), one segment per concurrent writer, keyed
  additionally on a hash of the package source so any simulator change
  invalidates stale results.
* :class:`~repro.engine.core.BatchEngine` ties the layers together:
  grid in, results (in spec order) out — or streamed incrementally via
  :meth:`~repro.engine.core.BatchEngine.run_specs_iter`, which every
  executor backs with a ``run_iter`` seam (the service gateway in
  :mod:`repro.service` streams from it).

The worker protocol and the HTTP gateway share one shared-secret
authentication scheme (``REPRO_TOKEN``; :func:`service_token` /
:func:`token_matches`), and serving daemons advertise themselves
through worker descriptors (:func:`write_worker_descriptor`).

Failure handling is unified in :mod:`repro.engine.resilience`
(:class:`~repro.engine.resilience.RetryPolicy` backoff and the
per-worker :class:`~repro.engine.resilience.CircuitBreaker`) and made
testable by :mod:`repro.engine.faults`: a deterministic, seeded
:class:`~repro.engine.faults.FaultPlan` (``REPRO_FAULTS`` /
``--faults``) fires named injection sites across the remote protocol,
the pools, the store, and the gateway scheduler, so chaos tests can
prove results stay bit-identical to serial under worker kills, dropped
replies, and torn writes.

See ``docs/engine.md`` for the full execution-layer reference and
``docs/service.md`` for the HTTP gateway.
"""

from repro.engine.core import BatchEngine, BatchStats
from repro.engine.executors import (
    EXECUTOR_KINDS,
    PersistentPoolExecutor,
    ProcessPoolExecutor,
    SerialExecutor,
    default_jobs,
    execute_spec,
    make_executor,
    run_from_iter,
)
from repro.engine.faults import FaultPlan, FaultSite
from repro.engine.remote import (
    CLUSTER_LOSS_MODES,
    DEFAULT_PORT,
    RemoteExecutor,
    WorkerProtocolError,
    WorkerServer,
    parse_workers,
    ping_worker,
    read_worker_descriptors,
    remove_worker_descriptor,
    service_token,
    shutdown_worker,
    token_matches,
    worker_descriptor_path,
    write_worker_descriptor,
)
from repro.engine.resilience import CircuitBreaker, RetryPolicy
from repro.engine.spec import RunSpec
from repro.engine.store import ResultStore, default_cache_dir
from repro.engine.version import code_version

__all__ = [
    "BatchEngine",
    "BatchStats",
    "CLUSTER_LOSS_MODES",
    "CircuitBreaker",
    "DEFAULT_PORT",
    "EXECUTOR_KINDS",
    "FaultPlan",
    "FaultSite",
    "PersistentPoolExecutor",
    "ProcessPoolExecutor",
    "RemoteExecutor",
    "RetryPolicy",
    "SerialExecutor",
    "RunSpec",
    "ResultStore",
    "WorkerProtocolError",
    "WorkerServer",
    "code_version",
    "default_cache_dir",
    "default_jobs",
    "execute_spec",
    "make_executor",
    "parse_workers",
    "ping_worker",
    "read_worker_descriptors",
    "remove_worker_descriptor",
    "run_from_iter",
    "service_token",
    "shutdown_worker",
    "token_matches",
    "worker_descriptor_path",
    "write_worker_descriptor",
]
