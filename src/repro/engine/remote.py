"""Distributed execution: worker daemons and the remote executor.

This module is the cluster seam of the batch engine.  It has two
halves that speak a one-line-JSON-per-connection TCP protocol:

* :class:`WorkerServer` — the daemon behind ``repro worker --serve``.
  It accepts serialized :class:`~repro.engine.spec.RunSpec` batches,
  simulates them (optionally through a local worker pool and a local
  :class:`~repro.engine.store.ResultStore`), and streams the serialized
  :class:`~repro.uarch.stats.SimResult`\\ s back.  Workers sharing a
  cache directory each append to their own store segment, so any number
  of daemons can serve the same grid concurrently.
* :class:`RemoteExecutor` — the coordinator.  It fans a spec grid out
  across registered workers in chunks, so large grids stream instead of
  blocking on one giant request, with per-task **retry** (a failed
  chunk is re-dispatched to another worker, with
  :class:`~repro.engine.resilience.RetryPolicy` backoff), **heartbeat**
  probing plus a per-worker **circuit breaker** (failing workers are
  quarantined and later probed back in), **straggler re-dispatch**
  (idle workers duplicate the oldest still-running chunk; the first
  finisher wins), and **graceful degradation** (a lost cluster falls
  back to local execution instead of failing the run — see
  ``on_cluster_loss``).  Both halves carry deterministic
  fault-injection hooks (:mod:`repro.engine.faults`) so all of this is
  exercised by seeded chaos tests.

Wire protocol (one JSON object per line, one request per connection)::

    -> {"op": "ping", "token": "<shared secret, when auth is on>"}
    <- {"ok": true, "version": "<code hash>", "pid": 123, "served": 42}
    -> {"op": "run_batch", "specs": [<RunSpec.to_dict()>, ...],
        "trace": "<optional trace id>"}
    <- {"ok": true, "results": [<SimResult.to_dict()>, ...],
        "version": "<code hash>"}
    -> {"op": "shutdown"}
    <- {"ok": true}

The ``trace`` field is optional and version-tolerant in both
directions: old coordinators omit it, old workers ignore it.  When
present the worker records its batch spans (:mod:`repro.obs.tracing`)
under that trace id, so a sweep's trace crosses the process boundary.

**Authentication**: when the ``REPRO_TOKEN`` environment variable is
set (or a ``token`` is passed explicitly), every request must carry the
matching shared secret or the worker refuses it with an
``unauthorized`` error — compared in constant time, so a cluster can
run on a non-trusted network.  Coordinator and workers read the same
variable, so ``REPRO_TOKEN=s3cret repro worker --serve`` pairs with
``REPRO_TOKEN=s3cret repro sweep --workers ...`` with no extra flags.

Every run is fully seeded and the worker executes the same
:func:`~repro.engine.executors.execute_spec` work unit as the local
executors, so remote results are bit-identical to serial ones.  The
coordinator refuses workers whose ``version`` fingerprint differs from
its own: results are keyed by code version, and silently mixing
simulator builds would poison the store.

Select the backend with ``--executor remote --workers host1,host2:port``
(or ``REPRO_EXECUTOR=remote`` + ``REPRO_WORKERS=...``) on any
simulating CLI command; the default port is :data:`DEFAULT_PORT`.
"""

from __future__ import annotations

import hmac
import json
import os
import pathlib
import queue
import socket
import socketserver
import threading
import time

from repro.engine.faults import fault, fault_delay
from repro.engine.resilience import CircuitBreaker, RetryPolicy
from repro.engine.spec import RunSpec
from repro.engine.version import code_version
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.uarch.stats import SimResult

_REGISTRY = _metrics.get_registry()
_CHUNK_SECONDS = _REGISTRY.histogram(
    "repro_remote_chunk_seconds",
    "Round-trip latency of remote chunk dispatches, per worker.",
    labelnames=("worker",))
_CHUNKS = _REGISTRY.counter(
    "repro_remote_chunks_total",
    "Remote chunk dispatches, per worker and outcome.",
    labelnames=("worker", "outcome"))
_RETRIES = _REGISTRY.counter(
    "repro_remote_retries_total",
    "Chunk re-queues after a failed dispatch, per worker.",
    labelnames=("worker",))
_BREAKER_OPENS = _REGISTRY.counter(
    "repro_remote_breaker_opens_total",
    "Circuit-breaker open transitions, per worker.",
    labelnames=("worker",))
_WORKER_SPECS = _REGISTRY.counter(
    "repro_worker_specs_total",
    "Specs served by this worker daemon, by source (cache/executed).",
    labelnames=("source",))
_WORKER_BATCHES = _REGISTRY.counter(
    "repro_worker_batches_total",
    "run_batch requests served by this worker daemon.")

#: Default TCP port for ``repro worker --serve`` (``REPRO_WORKER_PORT``).
DEFAULT_PORT = 8642

#: Hard cap on one request line (a grid chunk of serialized specs).
_MAX_LINE = 64 * 1024 * 1024

#: What to do when every worker is dead or quarantined mid-run
#: (``--on-cluster-loss`` / ``REPRO_ON_CLUSTER_LOSS``).
CLUSTER_LOSS_MODES = ("fallback", "fail")


class WorkerProtocolError(RuntimeError):
    """A worker answered, but wrongly: an ``ok: false`` reply, a
    non-JSON reply, or a response the coordinator must refuse (e.g. a
    mid-run code-version drift).

    Distinguished from transport errors (``ConnectionError``/``OSError``
    — the worker never answered) because the retry calculus differs:
    a transport error is worth retrying on the same worker, a protocol
    error is not — the same request will fail the same way, so the
    coordinator re-queues the chunk for *other* workers only.
    """

    def __init__(self, message, kind=None):
        super().__init__(message)
        self.kind = kind


def default_port():
    """The worker port: ``REPRO_WORKER_PORT`` or :data:`DEFAULT_PORT`."""
    env = os.environ.get("REPRO_WORKER_PORT")
    if env:
        return int(env)
    return DEFAULT_PORT


def _env_number(name, fallback, convert=float):
    """An optional numeric environment override (ignored when unset)."""
    env = os.environ.get(name)
    if env:
        try:
            return convert(env)
        except ValueError:
            raise ValueError(f"invalid {name}={env!r}: expected a number")
    return fallback


def service_token():
    """The cluster/service shared secret: ``REPRO_TOKEN``, or ``None``.

    ``None`` (unset or empty) means authentication is off — the
    pre-auth trusted-network behavior.  The same token protects the
    worker TCP protocol and the HTTP gateway
    (:mod:`repro.service`).
    """
    return os.environ.get("REPRO_TOKEN") or None


def token_matches(expected, presented):
    """Constant-time shared-secret check.

    ``expected is None`` means auth is off — everything passes.  A
    non-string ``presented`` (absent, or a JSON non-string) never
    matches.
    """
    if expected is None:
        return True
    if not isinstance(presented, str):
        return False
    return hmac.compare_digest(expected, presented)


def parse_workers(spec):
    """Parse a worker list: ``"host1,host2:7000"`` → ``[(host, port)]``.

    Accepts a comma-separated string or an iterable of ``host[:port]``
    strings / ``(host, port)`` pairs; the port defaults to
    :func:`default_port`.
    """
    if spec is None:
        return []
    if isinstance(spec, str):
        items = [part.strip() for part in spec.split(",") if part.strip()]
    else:
        items = list(spec)
    workers = []
    for item in items:
        if isinstance(item, (tuple, list)):
            host, port = item
            workers.append((str(host), int(port)))
            continue
        host, _, port = str(item).partition(":")
        if not host:
            raise ValueError(f"empty worker host in {spec!r}")
        workers.append((host, int(port) if port else default_port()))
    return workers


def _request(address, payload, timeout, token=None):
    """One protocol round trip: connect, send a line, read a line.

    ``token`` (default: :func:`service_token`) is attached to the
    request when set, satisfying authenticated workers.
    """
    token = service_token() if token is None else token
    if token is not None:
        payload = dict(payload, token=token)
    if fault("remote.connect"):
        raise ConnectionError(f"injected fault: connect to "
                              f"{address[0]}:{address[1]} refused")
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(json.dumps(payload).encode("utf-8") + b"\n")
        sock.shutdown(socket.SHUT_WR)
        with sock.makefile("rb") as fh:
            line = fh.readline(_MAX_LINE)
    if not line:
        raise ConnectionError(f"worker {address[0]}:{address[1]} closed "
                              "the connection without replying")
    try:
        response = json.loads(line.decode("utf-8"))
    except ValueError:
        raise WorkerProtocolError(
            f"worker {address[0]}:{address[1]} sent a garbage reply "
            f"({line[:40]!r}...)") from None
    if not isinstance(response, dict):
        raise WorkerProtocolError(f"worker {address[0]}:{address[1]} sent "
                                  f"a non-object reply: {response!r}")
    if not response.get("ok"):
        raise WorkerProtocolError(
            f"worker {address[0]}:{address[1]} error: "
            f"{response.get('error', 'unknown')}",
            kind=response.get("kind"))
    return response


def ping_worker(address, timeout=5.0, token=None):
    """Probe one worker; returns its status dict or raises."""
    return _request(address, {"op": "ping"}, timeout, token=token)


def shutdown_worker(address, timeout=5.0, token=None):
    """Ask one worker daemon to exit; returns its final status dict."""
    return _request(address, {"op": "shutdown"}, timeout, token=token)


# -- worker descriptors ---------------------------------------------------
#
# ``repro worker --serve`` leaves a machine-readable record of its
# listen address under the cache directory, so operators (and ``repro
# cluster status`` with no --workers) can discover a machine's daemons
# without scraping stdout.

def worker_descriptor_path(pid=None, directory=None):
    """Where this host × pid's worker descriptor lives.

    ``worker-<host>-<pid>.json`` under ``directory`` (default:
    ``REPRO_CACHE_DIR``) — daemons sharing a cache directory each get
    their own file, exactly like store segments.
    """
    from repro.engine.store import default_cache_dir

    host = socket.gethostname().split(".")[0][:24] or "host"
    pid = os.getpid() if pid is None else pid
    return (pathlib.Path(directory or default_cache_dir())
            / f"worker-{host}-{pid}.json")


def write_worker_descriptor(address, directory=None, **fields):
    """Record a serving worker's address; returns the path (or ``None``).

    ``address`` is the daemon's bound ``(host, port)``; a wildcard bind
    (``0.0.0.0`` / ``::``) is advertised as the machine's hostname so
    the recorded address is connectable from elsewhere.  Extra keyword
    fields are stored verbatim.  Best-effort: an unwritable cache
    directory returns ``None`` instead of failing the daemon.
    """
    host, port = address
    if host in ("", "0.0.0.0", "::"):
        host = socket.gethostname()
    record = {"host": str(host), "port": int(port), "pid": os.getpid(),
              "version": code_version(), "started": time.time(),
              "auth": service_token() is not None}
    record.update(fields)
    path = worker_descriptor_path(directory=directory)
    tmp = path.with_suffix(".json.tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(json.dumps(record, sort_keys=True) + "\n",
                       encoding="utf-8")
        os.replace(tmp, path)
    except OSError:
        return None
    return path


def remove_worker_descriptor(path):
    """Delete a descriptor written by :func:`write_worker_descriptor`."""
    if path is None:
        return
    try:
        pathlib.Path(path).unlink()
    except OSError:
        pass  # already gone, or the directory became unreadable


def read_worker_descriptors(directory=None):
    """Every ``worker-*.json`` descriptor in a cache directory.

    Returns ``(path, record)`` pairs in name order; corrupt or
    unreadable files are skipped.  Liveness is NOT checked — a crashed
    daemon leaves its descriptor behind; ``repro cluster status`` pings
    each recorded address and reports the dead ones.
    """
    from repro.engine.store import default_cache_dir

    directory = pathlib.Path(directory or default_cache_dir())
    descriptors = []
    try:
        paths = sorted(directory.glob("worker-*.json"))
    except OSError:
        return []
    for path in paths:
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            descriptors.append((path, {"host": str(record["host"]),
                                       "port": int(record["port"]),
                                       **{k: v for k, v in record.items()
                                          if k not in ("host", "port")}}))
        except (OSError, ValueError, KeyError, TypeError):
            continue
    return descriptors


class _WorkerHandler(socketserver.StreamRequestHandler):
    """One connection = one JSON request line = one JSON response line.

    Malformed, oversized, unauthorized and unknown-op requests all get a
    structured one-line JSON error with ``"kind": "protocol"`` instead
    of a silently dropped connection, so the coordinator can tell
    "this request is hopeless" (re-queue for other workers) apart from
    "this worker is unreachable" (retry here later).
    """

    def handle(self):
        server = self.server
        op = None
        max_line = getattr(server, "max_line", _MAX_LINE)
        try:
            line = self.rfile.readline(max_line + 1)
            if not line:
                return  # peer connected and said nothing
            if len(line) > max_line:
                response = {"ok": False, "kind": "protocol",
                            "error": f"request line exceeds the "
                                     f"{max_line} byte cap"}
                self._reply(response)
                return
            try:
                request = json.loads(line.decode("utf-8"))
                if not isinstance(request, dict):
                    raise ValueError("request is not a JSON object")
            except (ValueError, UnicodeDecodeError) as exc:
                self._reply({"ok": False, "kind": "protocol",
                             "error": f"malformed request: {exc}"})
                return
            op = request.get("op")
            if not token_matches(server.token, request.get("token")):
                # Refused before any op dispatch: an unauthenticated
                # peer can neither run work nor shut the daemon down.
                response = {"ok": False, "kind": "protocol",
                            "error": "unauthorized: this worker requires "
                                     "the shared REPRO_TOKEN"}
            elif op == "ping":
                response = server.status()
            elif op == "run_batch":
                if fault("worker.exit"):
                    os._exit(1)  # a true mid-chunk kill of the daemon
                try:
                    response = server.run_batch(
                        request.get("specs") or [],
                        trace=request.get("trace"))
                except (ValueError, KeyError, TypeError) as exc:
                    # Undeserializable specs: hopeless to retry anywhere.
                    response = {"ok": False, "kind": "protocol",
                                "error": f"bad batch: "
                                         f"{type(exc).__name__}: {exc}"}
            elif op == "shutdown":
                response = server.status()
                # shutdown() blocks until serve_forever() returns, so it
                # must run outside this handler thread.
                threading.Thread(target=server.shutdown,
                                 daemon=True).start()
            else:
                response = {"ok": False, "kind": "protocol",
                            "error": f"unknown op {op!r}"}
        except Exception as exc:  # never kill the daemon on a bad request
            response = {"ok": False,
                        "error": f"{type(exc).__name__}: {exc}"}
        if op == "run_batch":
            # Chunk-level chaos sites (never triggered by pings, so a
            # probe can still tell a live worker from a dead one).
            if fault("worker.crash_before_reply"):
                return  # work done, connection dropped, reply lost
            if fault("worker.garbage_reply"):
                try:
                    self.wfile.write(b"!!! injected garbage !!!\n")
                except OSError:
                    pass
                return
            if fault("worker.slow_reply"):
                time.sleep(fault_delay("worker.slow_reply", 1.0))
        self._reply(response)

    def _reply(self, response):
        try:
            self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")
        except OSError:
            pass  # client went away; nothing to tell it


class WorkerServer(socketserver.ThreadingTCPServer):
    """The ``repro worker --serve`` daemon.

    Listens on ``host:port`` (port ``0`` picks an ephemeral port —
    handy for tests; read it back from :attr:`address`), executes
    incoming spec batches with ``executor`` (default: serial,
    in-process), and optionally consults/feeds a local ``store`` so
    repeated grids are served from cache.  Thread-per-connection, so
    several coordinators (or chunks) can be in flight at once.

    When ``token`` (default: the ``REPRO_TOKEN`` environment variable)
    is set, every request must present the matching shared secret; the
    worker refuses the rest, so it can listen on a non-trusted network.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, host="127.0.0.1", port=0, store=None, executor=None,
                 token=None, max_line=_MAX_LINE):
        super().__init__((host, port), _WorkerHandler)
        from repro.engine.executors import SerialExecutor

        self.store = store
        self.executor = executor or SerialExecutor()
        self.max_line = max_line
        self.token = service_token() if token is None else (token or None)
        self.version = code_version()
        self.served = 0  # specs executed or served from cache
        self._lock = threading.Lock()

    @property
    def address(self):
        """The bound ``(host, port)`` — resolves an ephemeral port."""
        return self.server_address[:2]

    def status(self):
        """The ping/shutdown response body."""
        return {"ok": True, "version": self.version, "pid": os.getpid(),
                "served": self.served, "auth": self.token is not None}

    def run_batch(self, spec_dicts, trace=None):
        """Execute one serialized chunk; returns the response body.

        ``trace`` is the coordinator's optional trace id from the wire
        (``None`` from pre-trace coordinators): batch and store spans
        are recorded under it so the sweep's trace crosses into this
        daemon's process.
        """
        started = time.time()
        specs = [RunSpec.from_dict(d) for d in spec_dicts]
        results = [None] * len(specs)
        misses = []  # (position, spec)
        for pos, spec in enumerate(specs):
            stored = self.store.get(spec.key()) if self.store else None
            if stored is not None:
                results[pos] = stored
            else:
                misses.append((pos, spec))
        if misses:
            executed = self.executor.run([spec for _, spec in misses])
            store_started = time.time()
            for (pos, spec), result in zip(misses, executed):
                results[pos] = result
                if self.store is not None:
                    self.store.put(spec.key(), result)
            if self.store is not None and trace is not None:
                _tracing.record_span(
                    "store", "worker.store-put", store_started,
                    time.time() - store_started, trace=trace,
                    attrs={"records": len(misses)})
        with self._lock:
            self.served += len(specs)
        _WORKER_BATCHES.inc()
        if len(specs) > len(misses):
            _WORKER_SPECS.inc(len(specs) - len(misses), source="cache")
        if misses:
            _WORKER_SPECS.inc(len(misses), source="executed")
        if trace is not None:
            _tracing.record_span(
                "run", "worker.run-batch", started,
                time.time() - started, trace=trace,
                attrs={"specs": len(specs),
                       "cache_hits": len(specs) - len(misses),
                       "executed": len(misses)})
        return {"ok": True, "version": self.version,
                "results": [r.to_dict() for r in results]}

    def serve_in_thread(self):
        """Start serving on a daemon thread (tests / embedded use)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread


class _Task:
    """One dispatch unit: a contiguous chunk of the spec grid."""

    __slots__ = ("task_id", "indices", "specs", "attempts", "done",
                 "started_at", "in_flight", "refused_by")

    def __init__(self, task_id, indices, specs):
        self.task_id = task_id
        self.indices = indices
        self.specs = specs
        self.attempts = 0
        self.done = False
        self.started_at = None
        self.in_flight = 0
        self.refused_by = set()  # worker keys that protocol-failed it


class RemoteExecutor:
    """Fans spec grids out across ``repro worker`` daemons.

    Plugs into :class:`~repro.engine.core.BatchEngine` exactly like the
    local executors: ``run(specs, progress)`` returns results in spec
    order.  The grid is split into chunks of ``chunk_size`` specs
    (default: enough chunks for every worker to get several, so
    progress streams and load balances); each worker runs a coordinator
    thread that pulls chunks from a shared queue.

    Fault handling:

    * **heartbeat** — every worker is pinged before the run and, while
      idle, every ``heartbeat_interval`` seconds; unreachable or
      version-mismatched workers are dropped (including mid-run drift:
      every batch response's version is re-checked).
    * **retry** — a chunk whose dispatch fails is re-queued and picked
      up by another worker, up to ``max_task_attempts`` tries, with
      :class:`~repro.engine.resilience.RetryPolicy` exponential backoff
      (full jitter) between a worker's consecutive failures.  Protocol
      errors (:class:`WorkerProtocolError` — the worker answered, but
      refused or mangled the request) are never retried on the same
      worker: the chunk is re-queued for the others.
    * **circuit breaker** — a worker accumulating
      ``max_worker_failures`` consecutive failures is quarantined
      (:class:`~repro.engine.resilience.CircuitBreaker`), then probed
      once per ``quarantine_cooldown`` seconds and readmitted when a
      ping succeeds, instead of being abandoned for the whole run.
    * **straggler re-dispatch** — once the queue drains, idle workers
      duplicate the oldest chunk still in flight for more than
      ``straggler_after`` seconds; whichever copy finishes first wins
      (results are deterministic, so both copies agree).
    * **graceful degradation** — when no worker is reachable, or every
      worker ends up dead/quarantined with work remaining, the run
      **falls back to a local executor** for the missing specs instead
      of raising (``on_cluster_loss="fallback"``, the default; pass
      ``"fail"`` — or ``--on-cluster-loss fail`` /
      ``REPRO_ON_CLUSTER_LOSS=fail`` — to get the old hard
      :class:`RuntimeError`).  A degraded run is loudly reported in
      :attr:`last_run_report` under ``"degraded"``.

    The fault-handling knobs are configurable per invocation or per
    environment: ``heartbeat_interval`` (``REPRO_HEARTBEAT`` /
    ``--heartbeat``, seconds), ``max_task_attempts`` (``REPRO_RETRIES``
    / ``--retries``, tries per chunk), ``connect_timeout``
    (``REPRO_CONNECT_TIMEOUT`` / ``--connect-timeout``, seconds), and
    ``quarantine_cooldown`` (``REPRO_QUARANTINE``, seconds).
    ``token`` (default ``REPRO_TOKEN``) authenticates every request to
    token-protected workers.
    """

    def __init__(self, workers, chunk_size=None, connect_timeout=None,
                 run_timeout=900.0, max_task_attempts=None,
                 max_worker_failures=3, straggler_after=30.0,
                 heartbeat_interval=None, token=None, retry_policy=None,
                 breaker=None, quarantine_cooldown=None,
                 on_cluster_loss=None, fallback_executor=None):
        self.workers = parse_workers(workers)
        if not self.workers:
            raise ValueError(
                "RemoteExecutor needs at least one worker address "
                "(--workers host[:port],... or REPRO_WORKERS)")
        self.chunk_size = chunk_size
        # The fault-handling knobs fall back to environment overrides
        # (--connect-timeout / --retries / --heartbeat on the CLI), so
        # a slow or flaky network is tuned once, not per call site.
        self.connect_timeout = (connect_timeout if connect_timeout is not None
                                else _env_number("REPRO_CONNECT_TIMEOUT", 5.0))
        self.run_timeout = run_timeout
        self.max_task_attempts = max(1, (
            max_task_attempts if max_task_attempts is not None
            else _env_number("REPRO_RETRIES", 3, convert=int)))
        self.max_worker_failures = max_worker_failures
        self.straggler_after = straggler_after
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None
            else _env_number("REPRO_HEARTBEAT", 5.0))
        self.quarantine_cooldown = (
            quarantine_cooldown if quarantine_cooldown is not None
            else _env_number("REPRO_QUARANTINE", 30.0))
        self.retry_policy = retry_policy or RetryPolicy(
            attempts=self.max_task_attempts,
            timeout=self.connect_timeout)
        self.breaker = breaker or CircuitBreaker(
            threshold=self.max_worker_failures,
            cooldown=self.quarantine_cooldown,
            on_open=lambda key: _BREAKER_OPENS.inc(worker=key))
        if on_cluster_loss is None:
            on_cluster_loss = (os.environ.get("REPRO_ON_CLUSTER_LOSS")
                               or "fallback")
        if on_cluster_loss not in CLUSTER_LOSS_MODES:
            raise ValueError(
                f"on_cluster_loss must be one of {CLUSTER_LOSS_MODES}, "
                f"not {on_cluster_loss!r}")
        self.on_cluster_loss = on_cluster_loss
        self.fallback_executor = fallback_executor
        self.token = service_token() if token is None else (token or None)
        self.version = code_version()
        #: Worker count, for the CLI's "N job(s)" accounting line.
        self.jobs = len(self.workers)
        self.last_run_report = {}

    # -- cluster probing ---------------------------------------------

    def probe(self):
        """Ping every registered worker.

        Returns ``(alive, rejected)``: reachable same-version workers,
        and ``(address, reason)`` pairs for the rest.
        """
        alive, rejected = [], []
        for address in self.workers:
            try:
                status = ping_worker(address, timeout=self.connect_timeout,
                                     token=self.token)
            except (OSError, ValueError, RuntimeError) as exc:
                rejected.append((address, f"unreachable: {exc}"))
                continue
            if status.get("version") != self.version:
                rejected.append((address,
                                 f"code version {status.get('version')!r} "
                                 f"!= local {self.version!r}"))
                continue
            alive.append(address)
        return alive, rejected

    # -- the run -----------------------------------------------------

    def _chunk(self, count, workers):
        if self.chunk_size:
            return max(1, int(self.chunk_size))
        # Aim for ~4 chunks per worker so the queue streams and slow
        # chunks don't serialize the tail, without per-spec round trips.
        return max(1, -(-count // (4 * workers)))

    def run(self, specs, progress=None):
        """Execute every spec on the cluster; results in spec order."""
        specs = list(specs)
        results = [None] * len(specs)
        for index, result in self.run_iter(specs, progress=progress):
            results[index] = result
        return results

    def _make_fallback(self):
        """The local executor a degraded run falls back to."""
        if self.fallback_executor is not None:
            return self.fallback_executor
        from repro.engine.executors import SerialExecutor

        return SerialExecutor()

    def _degrade(self, specs, missing, reason, progress, done_base):
        """Run the cluster-undeliverable specs locally and yield them.

        Work units are fully seeded, so the local results are
        bit-identical to what the lost workers would have produced; the
        degradation is recorded in :attr:`last_run_report` so nobody
        mistakes a limping run for a healthy cluster.
        """
        fallback = self._make_fallback()
        self.last_run_report["degraded"] = {
            "reason": reason,
            "fallback": type(fallback).__name__,
            "points": len(missing),
        }
        done = done_base
        sub = [specs[i] for i in missing]
        for j, result in fallback.run_iter(sub):
            done += 1
            yield missing[j], result
            if progress:
                progress(done, len(specs), sub[j])

    def run_iter(self, specs, progress=None):
        """Yield ``(index, result)`` pairs as chunks finish on workers.

        The streaming face of the cluster backend: every result is
        yielded the moment its chunk's response arrives, so a consumer
        (``BatchEngine.run_specs_iter``, the service gateway) forwards
        grid points while the rest of the grid is still in flight.
        Closing the generator early aborts the run: queued chunks stop
        dispatching and the coordinator threads wind down.
        """
        specs = list(specs)
        if not specs:
            return
        # Captured here, in the caller's thread: worker_loop threads
        # have their own (empty) thread-local, so the ambient trace id
        # must travel by closure to reach the wire.
        run_trace = _tracing.current_trace()
        alive, rejected = self.probe()
        if not alive:
            detail = "; ".join(f"{h}:{p} ({why})"
                               for (h, p), why in rejected)
            if self.on_cluster_loss == "fail":
                raise RuntimeError(f"no usable remote workers: {detail}")
            self.last_run_report = {
                "workers": [], "rejected": [f"{h}:{p}: {why}"
                                            for (h, p), why in rejected],
                "chunk_size": 0, "tasks": 0, "dispatched": 0,
                "retries": 0, "straggler_redispatches": 0, "errors": [],
                "quarantined": self.breaker.quarantined(),
                "worker_latency": {},
            }
            yield from self._degrade(
                specs, list(range(len(specs))),
                f"no usable remote workers: {detail}", progress, 0)
            return
        for host, port in alive:
            # A fresh successful probe overrides any quarantine left
            # over from a previous run on this executor.
            self.breaker.record_success(f"{host}:{port}")
        self.jobs = len(alive)

        chunk = self._chunk(len(specs), len(alive))
        tasks = [
            _Task(task_id, list(range(start, min(start + chunk, len(specs)))),
                  specs[start:min(start + chunk, len(specs))])
            for task_id, start in enumerate(range(0, len(specs), chunk))
        ]
        todo = queue.Queue()
        for task in tasks:
            todo.put(task)

        out = queue.Queue()  # finished (index, SimResult) pairs
        state = {
            "done": 0, "dispatched": 0, "retries": 0, "stolen": 0,
            "errors": [],  # (address, task_id, message)
        }
        lock = threading.Lock()
        all_done = threading.Event()

        def finish(task, batch):
            with lock:
                if task.done:
                    return
                task.done = True
                for index, rdict in zip(task.indices, batch):
                    out.put((index, SimResult.from_dict(rdict)))
                state["done"] += len(task.indices)
                done_now = state["done"]
                if done_now == len(specs):
                    all_done.set()
            if progress:
                progress(done_now, len(specs), task.specs[-1])

        def next_task(key):
            """A queued task, or a straggler to duplicate, or None.

            Tasks this worker already protocol-failed are left on the
            queue for the others.
            """
            skipped, picked = [], None
            while picked is None:
                try:
                    cand = todo.get_nowait()
                except queue.Empty:
                    break
                if cand.done:
                    continue
                if key in cand.refused_by:
                    skipped.append(cand)
                    continue
                picked = cand
            for cand in skipped:
                todo.put(cand)
            if picked is not None:
                return picked
            with lock:
                now = time.monotonic()
                candidates = [
                    t for t in tasks
                    if not t.done and t.in_flight > 0
                    and key not in t.refused_by
                    and t.started_at is not None
                    and now - t.started_at >= self.straggler_after
                ]
                if not candidates:
                    return None
                task = min(candidates, key=lambda t: t.started_at)
                state["stolen"] += 1
                return task

        def ping_once(address):
            if fault("remote.heartbeat"):
                raise ConnectionError(
                    f"injected fault: heartbeat to "
                    f"{address[0]}:{address[1]} dropped")
            ping_worker(address, timeout=self.connect_timeout,
                        token=self.token)

        def worker_loop(address):
            key = f"{address[0]}:{address[1]}"
            consecutive = 0
            last_ping = time.monotonic()
            while not all_done.is_set():
                if not self.breaker.allows(key):
                    # Quarantined: sit out the cooldown instead of
                    # hammering a dead daemon.
                    if all_done.wait(timeout=0.25):
                        return
                    continue
                if self.breaker.state(key) == CircuitBreaker.HALF_OPEN:
                    # Cooldown expired; one probe decides readmission.
                    try:
                        ping_once(address)
                        self.breaker.record_success(key)
                        consecutive = 0
                    except (OSError, ValueError, RuntimeError):
                        self.breaker.record_failure(key)
                    continue
                task = next_task(key)
                if task is None:
                    if all_done.wait(timeout=0.25):
                        return
                    # Idle heartbeat (rate-limited — no point hammering
                    # the daemon with connects while a straggler runs).
                    now = time.monotonic()
                    if now - last_ping < self.heartbeat_interval:
                        continue
                    last_ping = now
                    try:
                        ping_once(address)
                        consecutive = 0
                    except (OSError, ValueError, RuntimeError):
                        # Counts toward quarantine instead of abandoning
                        # the worker for the rest of the run.
                        self.breaker.record_failure(key)
                        consecutive += 1
                    continue
                with lock:
                    if task.done:
                        continue
                    task.attempts += 1
                    task.in_flight += 1
                    if task.started_at is None:
                        task.started_at = time.monotonic()
                    state["dispatched"] += 1
                chunk_started = time.time()
                try:
                    payload = {"op": "run_batch",
                               "specs": [s.to_dict()
                                         for s in task.specs]}
                    if run_trace is not None:
                        payload["trace"] = run_trace
                    response = _request(
                        address, payload,
                        timeout=self.run_timeout, token=self.token)
                    if response.get("version") != self.version:
                        # The daemon was restarted with different code
                        # between the probe and this batch: its results
                        # would poison the store under our version key.
                        raise WorkerProtocolError(
                            f"worker {address[0]}:{address[1]} now runs "
                            f"code version {response.get('version')!r} "
                            f"!= local {self.version!r}")
                    if fault("remote.chunk_reply"):
                        raise ConnectionError(
                            f"injected fault: chunk reply from "
                            f"{key} dropped")
                    finish(task, response["results"])
                    elapsed = time.time() - chunk_started
                    _CHUNK_SECONDS.observe(elapsed, worker=key)
                    _CHUNKS.inc(worker=key, outcome="ok")
                    _tracing.record_span(
                        "chunk", "remote.chunk", chunk_started,
                        elapsed, trace=run_trace,
                        attrs={"worker": key, "task": task.task_id,
                               "specs": len(task.specs)})
                    self.breaker.record_success(key)
                    consecutive = 0
                    last_ping = time.monotonic()
                except (OSError, ValueError, KeyError,
                        RuntimeError) as exc:
                    protocol = isinstance(exc, WorkerProtocolError)
                    elapsed = time.time() - chunk_started
                    _CHUNKS.inc(worker=key, outcome="error")
                    _tracing.record_span(
                        "chunk", "remote.chunk", chunk_started,
                        elapsed, trace=run_trace, outcome="error",
                        attrs={"worker": key, "task": task.task_id,
                               "specs": len(task.specs),
                               "error": f"{type(exc).__name__}: {exc}"})
                    with lock:
                        task.in_flight -= 1
                        state["errors"].append(
                            (address, task.task_id,
                             f"{type(exc).__name__}: {exc}"))
                        if protocol:
                            # The worker answered: re-sending the same
                            # chunk here would fail the same way.
                            task.refused_by.add(key)
                        if not task.done:
                            if task.attempts < self.max_task_attempts:
                                state["retries"] += 1
                                _RETRIES.inc(worker=key)
                                todo.put(task)
                            elif task.in_flight == 0:
                                # Exhausted everywhere: stop dispatching
                                # (degradation may still cover it).
                                all_done.set()
                    self.breaker.record_failure(key)
                    consecutive += 1
                    # Exponential backoff with full jitter before this
                    # worker's next try (interruptible by run end).
                    pause = self.retry_policy.backoff(consecutive - 1)
                    if pause > 0 and all_done.wait(timeout=pause):
                        return
                else:
                    with lock:
                        task.in_flight -= 1

        keys = [f"{h}:{p}" for h, p in alive]

        def no_progress():
            """True when the run can no longer advance on the cluster:
            nothing in flight, and every unfinished task's remaining
            candidates are quarantined or have protocol-refused it."""
            with lock:
                if any(t.in_flight > 0 and not t.done for t in tasks):
                    return False
                remaining = [(t.task_id, set(t.refused_by))
                             for t in tasks if not t.done]
            if not remaining:
                return False
            states = {k: self.breaker.state(k) for k in keys}
            if CircuitBreaker.HALF_OPEN in states.values():
                return False  # a probe may readmit a worker; wait
            # An OPEN worker that has not yet flunked a half-open
            # readmission probe may still come back: wait out its
            # cooldown instead of declaring the cluster lost.
            if any(s == CircuitBreaker.OPEN
                   and not self.breaker.probe_failed(k)
                   for k, s in states.items()):
                return False
            usable = {k for k, s in states.items()
                      if s == CircuitBreaker.CLOSED}
            return all(not (usable - refused)
                       for _, refused in remaining)

        threads = [threading.Thread(
            target=worker_loop, args=(address,), daemon=True,
            name=f"remote-{address[0]}:{address[1]}") for address in alive]
        for thread in threads:
            thread.start()
        # Stream results until completion OR every thread giving up —
        # but never wait for a thread wedged inside a request whose
        # results a straggler re-dispatch already delivered: once
        # all_done is set the run is over, and stuck daemon threads are
        # abandoned after a short grace period (they time out and exit
        # on their own).  The finally arm covers the consumer closing
        # the generator early: it stops dispatch so coordinator threads
        # drain instead of working for nobody.
        served = [False] * len(specs)
        try:
            yielded = 0
            while yielded < len(specs):
                try:
                    index, result = out.get(timeout=0.1)
                except queue.Empty:
                    if all_done.is_set() or not any(t.is_alive()
                                                    for t in threads):
                        while True:  # drain the last finished chunk(s)
                            try:
                                index, result = out.get_nowait()
                            except queue.Empty:
                                break
                            yielded += 1
                            served[index] = True
                            yield index, result
                        break
                    if no_progress():
                        # Stop dispatching; the degradation path below
                        # covers whatever the cluster never delivered.
                        all_done.set()
                    continue
                yielded += 1
                served[index] = True
                yield index, result
        finally:
            all_done.set()
        for thread in threads:
            thread.join(timeout=1.0)

        # Per-worker latency percentiles and failure counts come from
        # the process-wide metrics registry (cumulative across this
        # process's runs), replacing the ad-hoc dict math the dispatch
        # report used to carry.
        worker_latency = {}
        for key in keys:
            p50 = _CHUNK_SECONDS.percentile(50, worker=key)
            p95 = _CHUNK_SECONDS.percentile(95, worker=key)
            worker_latency[key] = {
                "p50": round(p50, 6) if p50 is not None else None,
                "p95": round(p95, 6) if p95 is not None else None,
                "chunks": _CHUNK_SECONDS.count(worker=key),
                "retries": _RETRIES.value(worker=key),
                "breaker_opens": _BREAKER_OPENS.value(worker=key),
            }
        with lock:  # abandoned threads may still touch state
            self.last_run_report = {
                "workers": [f"{h}:{p}" for h, p in alive],
                "rejected": [f"{h}:{p}: {why}"
                             for (h, p), why in rejected],
                "chunk_size": chunk, "tasks": len(tasks),
                "dispatched": state["dispatched"],
                "retries": state["retries"],
                "straggler_redispatches": state["stolen"],
                "errors": [f"{h}:{p} task {t}: {msg}"
                           for (h, p), t, msg in state["errors"]],
                "quarantined": self.breaker.quarantined(),
                "worker_latency": worker_latency,
            }
            completed = state["done"]
        if completed != len(specs):
            missing = [i for i, got in enumerate(served) if not got]
            pending = sorted({t.task_id for t in tasks if not t.done})
            detail = ("; ".join(self.last_run_report["errors"][-5:])
                      or "every worker was lost")
            if self.on_cluster_loss == "fallback" and missing:
                yield from self._degrade(
                    specs, missing,
                    f"chunks {pending} undeliverable on the cluster "
                    f"({detail})", progress, yielded)
                return
            raise RuntimeError(
                f"remote run incomplete: chunks {pending} failed after "
                f"{self.max_task_attempts} attempt(s) each ({detail})")
