"""Pluggable executors for the batch engine.

An executor takes a list of resolved :class:`~repro.engine.spec.RunSpec`
objects and returns their :class:`~repro.uarch.stats.SimResult`\\ s in
the same order, invoking an optional ``progress(done, total, spec)``
callback as runs finish.

* :class:`SerialExecutor` runs in-process — deterministic call stacks,
  ideal for debugging and for single-run batches.
* :class:`ProcessPoolExecutor` fans out over a ``multiprocessing`` pool
  sized from :func:`os.cpu_count` (or ``REPRO_JOBS``).  Each simulation
  is fully seeded and shares no mutable state, so parallel results are
  identical to serial ones.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.uarch.processor import simulate


def default_jobs():
    """Pool size: ``REPRO_JOBS`` if set, else ``os.cpu_count()``."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def execute_spec(spec):
    """Run one resolved spec to completion (the executor work unit)."""
    return simulate(
        spec.config,
        workload=spec.workload,
        max_instructions=spec.instructions,
        skip=spec.skip,
        seed=spec.seed,
    )


def _pool_worker(indexed_spec):
    index, spec = indexed_spec
    return index, execute_spec(spec)


class SerialExecutor:
    """Runs every spec in the calling process, in order."""

    jobs = 1

    def run(self, specs, progress=None):
        results = []
        for index, spec in enumerate(specs):
            results.append(execute_spec(spec))
            if progress:
                progress(index + 1, len(specs), spec)
        return results


class ProcessPoolExecutor:
    """Fans specs out over a ``multiprocessing.Pool``.

    Falls back to serial execution when the batch (or the pool) has a
    single entry, so tiny batches never pay process-spawn overhead.
    """

    def __init__(self, jobs=None):
        self.jobs = jobs or default_jobs()

    def run(self, specs, progress=None):
        if self.jobs <= 1 or len(specs) <= 1:
            return SerialExecutor().run(specs, progress=progress)
        results = [None] * len(specs)
        done = 0
        with multiprocessing.Pool(min(self.jobs, len(specs))) as pool:
            for index, result in pool.imap_unordered(
                    _pool_worker, list(enumerate(specs))):
                results[index] = result
                done += 1
                if progress:
                    progress(done, len(specs), specs[index])
        return results


def make_executor(jobs=None):
    """The executor a job count implies (``None`` = machine default)."""
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    if jobs == 1:
        return SerialExecutor()
    return ProcessPoolExecutor(jobs)
