"""Pluggable executors for the batch engine.

An executor takes a list of resolved :class:`~repro.engine.spec.RunSpec`
objects and returns their :class:`~repro.uarch.stats.SimResult`\\ s in
the same order, invoking an optional ``progress(done, total, spec)``
callback as runs finish.

* :class:`SerialExecutor` runs in-process — deterministic call stacks,
  ideal for debugging and for single-run batches.
* :class:`ProcessPoolExecutor` fans out over a ``multiprocessing`` pool
  sized from :func:`os.cpu_count` (or ``REPRO_JOBS``).  Each simulation
  is fully seeded and shares no mutable state, so parallel results are
  identical to serial ones.
* :class:`PersistentPoolExecutor` keeps one warm worker pool alive
  across batches, so a session of many small grids (interactive sweeps,
  experiment suites sharing a cache) pays the process-spawn cost once
  instead of per batch.  Call :meth:`~PersistentPoolExecutor.close`
  (or use it as a context manager) when done; an ``atexit`` hook cleans
  up otherwise.
* :class:`~repro.engine.remote.RemoteExecutor` (in
  :mod:`repro.engine.remote`) fans batches out across ``repro worker``
  daemons on other hosts — the cluster-scale backend behind
  ``--executor remote``.

:func:`make_executor` maps the CLI/environment selection
(``--executor`` / ``REPRO_EXECUTOR`` / ``--workers`` /
``REPRO_WORKERS``) onto these classes.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time

from repro.engine.faults import fault, fault_delay
from repro.obs.profile import attach_profile
from repro.uarch.processor import simulate


def default_jobs():
    """Pool size: ``REPRO_JOBS`` if set, else ``os.cpu_count()``."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def default_run_timeout():
    """Per-spec stall timeout: ``REPRO_RUN_TIMEOUT`` seconds, or None."""
    env = os.environ.get("REPRO_RUN_TIMEOUT")
    if env:
        value = float(env)
        return value if value > 0 else None
    return None


def execute_spec(spec):
    """Run one resolved spec to completion (the executor work unit).

    Carries the ``exec.hang`` (sleep before simulating — exercises the
    pool stall timeouts) and ``exec.die`` (the executing process
    hard-exits, like an OOM-killed pool worker) chaos sites; both are
    inert without an active :class:`~repro.engine.faults.FaultPlan`.

    With ``REPRO_PROFILE`` set, a profile dict (wall-clock, KIPS,
    stall composition) is attached to the result's ``extra`` — see
    :mod:`repro.obs.profile`; the default path is untouched.
    """
    if fault("exec.die"):
        os._exit(3)
    if fault("exec.hang"):
        time.sleep(fault_delay("exec.hang", 60.0))
    started = time.perf_counter()
    result = simulate(
        spec.config,
        workload=spec.workload,
        max_instructions=spec.instructions,
        skip=spec.skip,
        seed=spec.seed,
    )
    return attach_profile(result, time.perf_counter() - started)


def _pool_worker(indexed_spec):
    index, spec = indexed_spec
    return index, execute_spec(spec)


def run_from_iter(executor, specs, progress=None):
    """Collect an executor's :meth:`run_iter` stream into spec order.

    The shared ``run()`` implementation for executors whose native
    operation is streaming: results are identical to a barrier run
    because every work unit is fully seeded.
    """
    results = [None] * len(specs)
    for index, result in executor.run_iter(specs, progress=progress):
        results[index] = result
    return results


class SerialExecutor:
    """Runs every spec in the calling process, in order."""

    jobs = 1

    def run(self, specs, progress=None):
        """Simulate each spec in submission order; results match it."""
        return run_from_iter(self, specs, progress=progress)

    def run_iter(self, specs, progress=None):
        """Yield ``(index, result)`` pairs as each run completes.

        Serial execution completes specs in submission order, so the
        stream is simply ordered.
        """
        for index, spec in enumerate(specs):
            yield index, execute_spec(spec)
            if progress:
                progress(index + 1, len(specs), spec)


def _stream_pool(pool, specs, progress, run_timeout, on_stall=None):
    """Drain ``imap_unordered`` with an optional per-result stall bound.

    ``run_timeout`` (seconds) caps how long the *next* result may take
    to arrive: one wedged simulation (or a pool worker that died
    without reporting, which ``multiprocessing.Pool`` never notices)
    raises :class:`RuntimeError` instead of hanging the grid forever.
    ``on_stall`` runs first, so a persistent pool can terminate its
    wedged workers before the error propagates.
    """
    done = 0
    results = pool.imap_unordered(_pool_worker, list(enumerate(specs)))
    while True:
        try:
            if run_timeout:
                index, result = results.next(timeout=run_timeout)
            else:
                index, result = next(results)
        except StopIteration:
            return
        except multiprocessing.TimeoutError:
            if on_stall:
                on_stall()
            raise RuntimeError(
                f"pool stalled: no simulation finished within "
                f"{run_timeout:g}s ({len(specs) - done} of {len(specs)} "
                f"point(s) outstanding)") from None
        done += 1
        yield index, result
        if progress:
            progress(done, len(specs), specs[index])


class ProcessPoolExecutor:
    """Fans specs out over a ``multiprocessing.Pool``.

    Falls back to serial execution when the batch (or the pool) has a
    single entry, so tiny batches never pay process-spawn overhead.
    ``run_timeout`` (default ``REPRO_RUN_TIMEOUT`` / ``--run-timeout``)
    bounds how long the next result may take before the run fails
    loudly instead of hanging on a wedged or dead worker.
    """

    def __init__(self, jobs=None, run_timeout=None):
        self.jobs = jobs or default_jobs()
        self.run_timeout = (run_timeout if run_timeout is not None
                            else default_run_timeout())

    def run(self, specs, progress=None):
        """Simulate the specs on a fresh pool; results in spec order."""
        return run_from_iter(self, specs, progress=progress)

    def run_iter(self, specs, progress=None):
        """Yield ``(index, result)`` pairs in completion order.

        Results stream off the pool as workers finish, so a caller can
        forward each one (e.g. to an HTTP stream) while later specs are
        still simulating.
        """
        if self.jobs <= 1 or len(specs) <= 1:
            yield from SerialExecutor().run_iter(specs, progress=progress)
            return
        with multiprocessing.Pool(min(self.jobs, len(specs))) as pool:
            # The with-block terminates the pool on a stall error.
            yield from _stream_pool(pool, specs, progress,
                                    self.run_timeout)


class PersistentPoolExecutor:
    """A ``multiprocessing.Pool`` that survives across batches.

    The pool is created lazily on the first parallel batch and reused by
    every subsequent one, so a stream of small grids amortizes worker
    spawn (and interpreter warm-up) once.  Results are identical to the
    per-batch pool: work units are fully seeded and stateless.
    """

    def __init__(self, jobs=None, run_timeout=None):
        self.jobs = jobs or default_jobs()
        self.run_timeout = (run_timeout if run_timeout is not None
                            else default_run_timeout())
        self._pool = None
        self._atexit_registered = False

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = multiprocessing.Pool(self.jobs)
            if not self._atexit_registered:
                # Once per executor, however many close/reuse cycles.
                atexit.register(self.close)
                self._atexit_registered = True
        return self._pool

    def run(self, specs, progress=None):
        """Simulate the specs on the warm pool; results in spec order."""
        return run_from_iter(self, specs, progress=progress)

    def run_iter(self, specs, progress=None):
        """Yield ``(index, result)`` pairs in completion order."""
        if self.jobs <= 1 or (len(specs) <= 1 and self._pool is None):
            # Serial fallback; never spawn a pool for a single first run.
            yield from SerialExecutor().run_iter(specs, progress=progress)
            return
        pool = self._ensure_pool()
        yield from _stream_pool(pool, specs, progress, self.run_timeout,
                                on_stall=self._terminate)

    def _terminate(self):
        """Kill a wedged pool so the next batch gets a fresh one."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()

    def close(self):
        """Shut the warm pool down (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
            pool.join()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


#: Executor registry for ``--executor`` / ``REPRO_EXECUTOR``.
EXECUTOR_KINDS = ("serial", "pool", "persistent", "remote")


def make_executor(jobs=None, kind=None, workers=None, heartbeat=None,
                  retries=None, connect_timeout=None, run_timeout=None,
                  on_cluster_loss=None):
    """The executor a job count, kind, and worker list imply.

    ``kind`` is one of :data:`EXECUTOR_KINDS` (default: the
    ``REPRO_EXECUTOR`` environment variable, else jobs-based — serial
    for one job, a per-batch pool otherwise).  Naming ``workers``
    (a ``host[:port],...`` list, or the ``REPRO_WORKERS`` environment
    variable for ``kind="remote"``) selects the distributed
    :class:`~repro.engine.remote.RemoteExecutor`, which fans batches
    out across ``repro worker --serve`` daemons.  ``heartbeat``,
    ``retries``, ``connect_timeout``, and ``on_cluster_loss`` tune that
    backend's fault handling (defaults: ``REPRO_HEARTBEAT`` /
    ``REPRO_RETRIES`` / ``REPRO_CONNECT_TIMEOUT`` /
    ``REPRO_ON_CLUSTER_LOSS``, then 5s / 3 / 5s / fallback).
    ``run_timeout`` bounds one spec's run everywhere it can: the pool
    executors treat it as a stall timeout, the remote backend as the
    per-chunk request timeout.
    """
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    # Precedence: explicit kind > explicit workers (implies remote) >
    # REPRO_EXECUTOR > jobs-based default.  A --workers flag must not
    # be silently overridden by a leftover environment variable.
    if kind is None and workers:
        kind = "remote"
    if kind is None:
        kind = os.environ.get("REPRO_EXECUTOR") or None
    if kind is None:
        kind = "serial" if jobs == 1 else "pool"
    if kind == "serial":
        return SerialExecutor()
    if kind == "pool":
        return ProcessPoolExecutor(jobs, run_timeout=run_timeout)
    if kind == "persistent":
        return PersistentPoolExecutor(jobs, run_timeout=run_timeout)
    if kind == "remote":
        from repro.engine.remote import RemoteExecutor

        workers = workers or os.environ.get("REPRO_WORKERS")
        extra = {}
        if run_timeout:
            extra["run_timeout"] = run_timeout
        return RemoteExecutor(workers, heartbeat_interval=heartbeat,
                              max_task_attempts=retries,
                              connect_timeout=connect_timeout,
                              on_cluster_loss=on_cluster_loss, **extra)
    raise ValueError(
        f"unknown executor kind {kind!r}; choose from {EXECUTOR_KINDS}")
