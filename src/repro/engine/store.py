"""Persistent on-disk result store (JSON lines).

Results live in ``$REPRO_CACHE_DIR/results.jsonl`` (default
``~/.cache/repro``), one self-contained record per line::

    {"key": "<spec key>", "version": "<code hash>", "result": {...}}

Records are append-only; on load the last record for a key wins.  Keys
combine the spec identity (config content hash × workload × run length
× seed) with the package's code-version fingerprint, so editing any
simulator source invalidates every stored result.  Corrupt or truncated
lines (e.g. from an interrupted run) are skipped, and an unwritable
cache directory degrades the store to a no-op rather than failing the
run.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.engine.version import code_version
from repro.uarch.stats import SimResult

_STORE_FILE = "results.jsonl"


def default_cache_dir():
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


class ResultStore:
    """Append-only JSONL store mapping spec keys to ``SimResult``s."""

    def __init__(self, directory=None, version=None):
        self.directory = pathlib.Path(directory or default_cache_dir())
        self.path = self.directory / _STORE_FILE
        self.version = version or code_version()
        self._index = None  # key -> result dict (lazy)
        self._broken = False

    def _qualified(self, key):
        return f"{key}@{self.version}"

    def _load_index(self):
        if self._index is not None:
            return self._index
        self._index = {}
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        qualified = f"{record['key']}@{record['version']}"
                        self._index[qualified] = record["result"]
                    except (ValueError, KeyError, TypeError):
                        continue  # truncated/corrupt line
        except OSError:
            pass
        return self._index

    def get(self, key):
        """The stored :class:`SimResult` for ``key``, or ``None``."""
        record = self._load_index().get(self._qualified(key))
        if record is None:
            return None
        try:
            return SimResult.from_dict(record)
        except (TypeError, ValueError):
            return None

    def put(self, key, result):
        """Persist one result (appends immediately; best-effort)."""
        record = result.to_dict()
        self._load_index()[self._qualified(key)] = record
        if self._broken:
            return
        line = json.dumps({"key": key, "version": self.version,
                           "result": record}, sort_keys=True)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        except OSError:
            self._broken = True  # unwritable cache dir: keep simulating

    def compact(self, prune_stale=False):
        """Rewrite the append-only JSONL keeping the newest record per key.

        The store only ever appends, so a heavily reused cache directory
        accumulates superseded records (same key written again) and, with
        ``prune_stale=True``, records from older code versions that no
        current reader can ever hit.  The rewrite is atomic (temp file +
        ``os.replace``); corrupt lines are dropped.

        Run it while the store is quiescent: a record appended by a
        concurrently running sweep between the read and the replace is
        lost (harmless — that result just re-simulates on its next
        miss — but it wastes the work).

        Returns ``(kept, dropped)`` record counts.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return 0, 0
        latest = {}  # qualified key -> json line (last wins, order kept)
        dropped = 0
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                qualified = f"{record['key']}@{record['version']}"
            except (ValueError, KeyError, TypeError):
                dropped += 1  # truncated/corrupt line
                continue
            if prune_stale and record["version"] != self.version:
                dropped += 1
                continue
            if qualified in latest:
                dropped += 1  # superseded earlier record
            latest[qualified] = line
        tmp_path = self.path.with_suffix(".jsonl.tmp")
        try:
            with open(tmp_path, "w", encoding="utf-8") as fh:
                for line in latest.values():
                    fh.write(line + "\n")
            os.replace(tmp_path, self.path)
        except OSError:
            try:
                tmp_path.unlink()
            except OSError:
                pass
            return 0, 0
        self._index = None  # force a reload from the rewritten file
        return len(latest), dropped

    def __contains__(self, key):
        return self._qualified(key) in self._load_index()

    def __len__(self):
        return len(self._load_index())
