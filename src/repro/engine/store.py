"""Persistent on-disk result store (sharded JSON-lines segments).

Results live under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``) as
one *base* file plus any number of per-writer *segment* files::

    results.jsonl                    # the merged base (compact target)
    results-<host>-<pid>-<tok>.jsonl # one segment per concurrent writer

Every file holds self-contained records, one per line::

    {"crc": 123..., "key": "<spec key>", "version": "<code hash>",
     "result": {...}}

``crc`` is the CRC32 of the rest of the record (serialized with sorted
keys), so bit rot and partially-flushed lines are detected, not just
lines that fail to parse.  Records written before the field existed are
still accepted (``repro cache verify`` reports them as *legacy*).

Each :class:`ResultStore` instance appends only to its **own** segment
file, so any number of processes — local sweep workers, ``repro worker``
daemons sharing a cache directory over NFS — can write concurrently
without locks and without ever interleaving bytes inside a record.
Readers merge the base file and every segment into one index
(base first, then segments in name order; the newest record for a key
wins), so a record is visible to other processes as soon as its
``put`` returns.

Consistency guarantee: each appended record is written with a *single*
``os.write`` of one complete ``line + "\\n"`` to a file opened with
``O_APPEND``.  POSIX makes such appends atomic with respect to
concurrent readers and writers of the same file, so a reader never
observes a torn (half-written) record — it sees the whole line or no
line at all.  Corrupt or truncated lines (e.g. a hard kill mid-write on
a non-POSIX filesystem) are skipped on load, and an unwritable cache
directory degrades the store to a no-op rather than failing the run.

Keys combine the spec identity (config content hash × workload × run
length × seed) with the package's code-version fingerprint, so editing
any simulator source invalidates every stored result.

:meth:`ResultStore.compact` folds every segment (and superseded base
records) back into a single fresh ``results.jsonl`` and deletes the
merged segments — run it between sweeps to keep the directory tidy.
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import time
import uuid
import zlib

from repro.engine.faults import fault
from repro.engine.version import code_version
from repro.uarch.stats import SimResult

_STORE_FILE = "results.jsonl"
_SEGMENT_GLOB = "results-*.jsonl"


class ChecksumError(ValueError):
    """A store record parsed as JSON but failed its CRC32 check."""


def _record_crc(body):
    """The CRC32 a record body (sans ``crc`` field) should carry."""
    payload = json.dumps(body, sort_keys=True)
    return zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF


def _parse_record(line):
    """Parse and checksum one store line.

    Returns ``(qualified key, record dict)``.  Raises
    :class:`ChecksumError` on a CRC mismatch and the usual
    ``ValueError``/``KeyError``/``TypeError`` on malformed lines.
    Records without a ``crc`` field (written by older versions) are
    accepted unchecked.
    """
    record = json.loads(line)
    qualified = f"{record['key']}@{record['version']}"
    crc = record.get("crc")
    if crc is not None:
        body = {k: v for k, v in record.items() if k != "crc"}
        if _record_crc(body) != crc:
            raise ChecksumError(f"CRC mismatch for key {record['key']!r}")
    return qualified, record


def default_cache_dir():
    """The store directory: ``REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


def _writer_id():
    """A segment name component unique to this writer.

    Hostname × pid disambiguates writers sharing a network filesystem;
    the random token disambiguates pid reuse and multiple stores in one
    process.
    """
    host = socket.gethostname().split(".")[0][:24] or "host"
    return f"{host}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class ResultStore:
    """Sharded append-only JSONL store mapping spec keys to results.

    Each instance lazily creates its own segment file on first
    :meth:`put` and reads the union of the base file and every segment.
    All methods are best-effort with respect to I/O errors: an
    unwritable directory silently disables persistence (the in-memory
    index keeps serving the current process).

    Parameters
    ----------
    directory:
        Cache directory (default :func:`default_cache_dir`).
    version:
        Code-version fingerprint qualifying every key (default: the
        real :func:`~repro.engine.version.code_version` of the package).
    """

    def __init__(self, directory=None, version=None):
        self.directory = pathlib.Path(directory or default_cache_dir())
        self.path = self.directory / _STORE_FILE
        self.version = version or code_version()
        self._index = None  # qualified key -> result dict (lazy)
        self._broken = False
        self._segment_path = None  # created on first put

    # -- identity ----------------------------------------------------

    def _qualified(self, key):
        return f"{key}@{self.version}"

    # -- reading -----------------------------------------------------

    def segment_paths(self):
        """Every segment file currently in the directory (name order)."""
        try:
            return sorted(self.directory.glob(_SEGMENT_GLOB))
        except OSError:
            return []

    def _read_files(self):
        """The base file plus every segment, in merge order."""
        return [self.path, *self.segment_paths()]

    def _load_index(self):
        if self._index is not None:
            return self._index
        self._index = {}
        for path in self._read_files():
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    for line in fh:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            qualified, record = _parse_record(line)
                            self._index[qualified] = record["result"]
                        except (ValueError, KeyError, TypeError):
                            continue  # truncated/corrupt/bad-CRC line
            except OSError:
                continue
        return self._index

    def refresh(self):
        """Drop the in-memory index so the next read re-scans disk.

        Concurrent writers append to their own segments; a long-lived
        reader calls this to pick up records written after its first
        load.
        """
        self._index = None

    def get(self, key):
        """The stored :class:`SimResult` for ``key``, or ``None``."""
        record = self._load_index().get(self._qualified(key))
        if record is None:
            return None
        try:
            return SimResult.from_dict(record)
        except (TypeError, ValueError):
            return None

    # -- writing -----------------------------------------------------

    def _segment(self):
        if self._segment_path is None:
            self._segment_path = (self.directory
                                  / f"results-{_writer_id()}.jsonl")
        return self._segment_path

    def put(self, key, result):
        """Persist one result (appends immediately; best-effort).

        The record lands in this store's private segment file as one
        atomic ``O_APPEND`` write, so concurrent readers of the cache
        directory either see the whole record or none of it.

        The transient ``extra["profile"]`` block (attached by
        ``REPRO_PROFILE`` runs — see :mod:`repro.obs.profile`) is
        stripped before persisting, so stored records are
        byte-identical whether or not the run was profiled.
        """
        record = result.to_dict()
        extra = record.get("extra")
        if isinstance(extra, dict) and "profile" in extra:
            record["extra"] = {k: v for k, v in extra.items()
                               if k != "profile"}
        self._load_index()[self._qualified(key)] = record
        if self._broken:
            return
        body = {"key": key, "version": self.version, "result": record}
        line = json.dumps(dict(body, crc=_record_crc(body)),
                          sort_keys=True)
        data = (line + "\n").encode("utf-8")
        if fault("store.corrupt_append"):
            # Valid JSON whose CRC cannot match: only the checksum can
            # catch this one.
            bad = json.dumps(dict(body, crc=_record_crc(body) ^ 1),
                             sort_keys=True)
            data = (bad + "\n").encode("utf-8")
        elif fault("store.torn_append"):
            # The visible aftermath of a crash mid-append: a truncated
            # record on its own line.
            data = data[:max(1, len(data) // 2)] + b"\n"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd = os.open(self._segment(),
                         os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, data)  # one write: never torn for readers
            finally:
                os.close(fd)
        except OSError:
            self._broken = True  # unwritable cache dir: keep simulating

    # -- maintenance -------------------------------------------------

    def compact(self, prune_stale=False):
        """Merge every segment and superseded record into a fresh base.

        Reads the base file plus all segments, keeps the newest record
        per qualified key (``prune_stale=True`` also drops records from
        older code versions that no current reader can hit), rewrites
        ``results.jsonl`` atomically (temp file + ``os.replace``), and
        retires the segments that were merged in.  Corrupt lines are
        dropped.

        **Safe against live writers.**  A record appended concurrently
        with compaction is never lost: each segment is retired by
        *renaming* it out of the read set (a writer's next ``put``
        recreates a fresh segment at the original path), and the
        renamed inode is re-read through a held descriptor — including
        one final check after the unlink — so any record a concurrent
        ``put`` squeezed in through a pre-rename descriptor is caught
        and appended to the new base.  Segments created after the scan
        simply survive to the next compaction.

        Returns ``(kept, dropped)`` record counts; late-arriving
        records rescued from a racing writer count as kept.
        """
        sources = self._read_files()
        latest = {}  # qualified key -> json line (last wins, order kept)
        consumed = {}  # segment path -> bytes merged from it
        dropped = 0
        saw_any = False

        def merge_line(line):
            nonlocal dropped
            line = line.strip()
            if not line:
                return 0
            try:
                qualified, record = _parse_record(line)
            except (ValueError, KeyError, TypeError):
                dropped += 1  # truncated/corrupt/bad-CRC line
                return 0
            if prune_stale and record["version"] != self.version:
                dropped += 1
                return 0
            if qualified in latest:
                dropped += 1  # superseded earlier record
            latest[qualified] = line
            return 1

        for path in sources:
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
            except OSError:
                continue
            saw_any = True
            consumed[path] = len(data)
            for line in data.decode("utf-8", errors="replace").splitlines():
                merge_line(line)
        if not saw_any:
            return 0, 0
        tmp_path = self.path.with_suffix(".jsonl.tmp")
        try:
            with open(tmp_path, "w", encoding="utf-8") as fh:
                for line in latest.values():
                    fh.write(line + "\n")
            os.replace(tmp_path, self.path)
        except OSError:
            try:
                tmp_path.unlink()
            except OSError:
                pass
            return 0, 0
        kept = len(latest)
        for path in sources[1:]:
            kept += self._retire_segment(path, consumed.get(path, 0))
        if self._segment_path in sources[1:]:
            self._segment_path = None  # next put starts a fresh segment
        self._index = None  # force a reload from the rewritten files
        return kept, dropped

    def _retire_segment(self, path, consumed):
        """Remove one merged segment without losing racing appends.

        Renames the segment (so writers re-open a fresh file at the
        original path and readers stop seeing the already-merged copy),
        then drains any bytes appended past ``consumed`` through a held
        descriptor — re-checking after the unlink, when only a write
        already in flight through a pre-rename descriptor could still
        land — and appends those whole lines to the base.  Returns the
        number of rescued records.
        """
        retired = path.with_suffix(".jsonl.compacting")
        try:
            os.replace(path, retired)
            fd = os.open(retired, os.O_RDONLY)
        except OSError:
            return 0  # vanished, or another compactor claimed it
        rescued = 0
        try:
            count, consumed = self._drain_tail(fd, consumed)
            rescued += count
            try:
                os.unlink(retired)
            except OSError:
                pass
            # Post-unlink check: a put() that opened the segment before
            # the rename writes into this (now anonymous) inode; the
            # descriptor still reads it.
            count, consumed = self._drain_tail(fd, consumed)
            rescued += count
        finally:
            os.close(fd)
        return rescued

    def _drain_tail(self, fd, offset):
        """Append records past ``offset`` of a retired segment to the base.

        Reads until two consecutive size checks agree (a racing writer
        appends whole lines, so the tail always ends on a newline once
        quiescent), then appends the complete lines to ``results.jsonl``
        with one ``O_APPEND`` write — later lines win on merge, so the
        rescued records override nothing newer.  Returns
        ``(record count, new offset)``.
        """
        tail = b""
        while True:
            size = os.fstat(fd).st_size
            if size <= offset + len(tail):
                break
            os.lseek(fd, offset + len(tail), os.SEEK_SET)
            tail += os.read(fd, size - offset - len(tail))
        offset += len(tail)
        if not tail.rstrip():
            return 0, offset
        lines = [line for line in tail.split(b"\n") if line.strip()]
        try:
            base_fd = os.open(self.path,
                              os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(base_fd, b"\n".join(lines) + b"\n")
            finally:
                os.close(base_fd)
        except OSError:
            return 0, offset
        return len(lines), offset

    def stats(self):
        """Operator-facing store summary (``repro cache stats``).

        Scans the base file and every segment fresh from disk (so a
        serving store's live writers are reflected) and returns::

            {"directory": ..., "files": N, "segments": N, "bytes": N,
             "records": N,        # unique (key, version) pairs
             "lines": N,          # raw stored lines incl. superseded
             "superseded": N, "corrupt": N,
             "crc_failures": N,   # corrupt lines caught by the CRC
             "quarantined": N,    # records parked in corrupt-*.jsonl
             "workloads": {workload: unique records},
             "versions": {code version: unique records}}

        The per-workload breakdown parses each key's leading
        ``workload:`` component, so an operator can see which
        benchmarks dominate a serving cache without grepping JSONL.
        """
        seen = {}  # qualified key -> workload
        lines = corrupt = crc_failures = total_bytes = files = 0
        paths = [path for path in self._read_files()]
        segments = 0
        for position, path in enumerate(paths):
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
            except OSError:
                continue
            files += 1
            segments += position > 0
            total_bytes += len(data)
            for line in data.decode("utf-8", errors="replace").splitlines():
                line = line.strip()
                if not line:
                    continue
                lines += 1
                try:
                    qualified, record = _parse_record(line)
                    key = record["key"]
                except ChecksumError:
                    corrupt += 1
                    crc_failures += 1
                    continue
                except (ValueError, KeyError, TypeError):
                    corrupt += 1
                    continue
                workload = str(key).partition(":")[0] or "?"
                seen[qualified] = (workload, str(record["version"]))
        workloads, versions = {}, {}
        for workload, version in seen.values():
            workloads[workload] = workloads.get(workload, 0) + 1
            versions[version] = versions.get(version, 0) + 1
        quarantined = 0
        try:
            for path in self.directory.glob("corrupt-*.jsonl"):
                with open(path, "rb") as fh:
                    quarantined += sum(1 for raw in fh.read().splitlines()
                                       if raw.strip())
        except OSError:
            pass
        return {
            "directory": str(self.directory),
            "files": files,
            "segments": segments,
            "bytes": total_bytes,
            "records": len(seen),
            "lines": lines,
            "superseded": lines - corrupt - len(seen),
            "corrupt": corrupt,
            "crc_failures": crc_failures,
            "quarantined": quarantined,
            "workloads": dict(sorted(workloads.items())),
            "versions": dict(sorted(versions.items())),
        }

    def verify(self, repair=False):
        """Scan the base file and every segment for corrupt records.

        The integrity pass behind ``repro cache verify``: every line is
        parsed and, when it carries a ``crc`` field, checksummed.
        Lines are classified as valid, *legacy* (parse fine but predate
        the CRC field) or *corrupt* (unparseable, missing fields, or a
        CRC mismatch).

        With ``repair=True`` every corrupt line is quarantined —
        appended to ``corrupt-<ts>.jsonl`` in the cache directory for
        forensics — and each affected file is rewritten without them
        (temp file + atomic ``os.replace``).  Repair is an offline
        maintenance operation: run it while no writer is appending, or
        a record being written concurrently with the rewrite can be
        lost (reads, including ``repair=False`` scans, are always
        safe).

        Returns a report dict::

            {"directory": ..., "files": N, "records": N, "checked": N,
             "legacy": N, "corrupt": N, "crc_failures": N,
             "bad": ["<file>:<line>", ...],
             "repaired": N, "quarantine": "<path>" | None}
        """
        report = {"directory": str(self.directory), "files": 0,
                  "records": 0, "checked": 0, "legacy": 0, "corrupt": 0,
                  "crc_failures": 0, "bad": [], "repaired": 0,
                  "quarantine": None}
        bad_lines = []
        for path in self._read_files():
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
            except OSError:
                continue
            report["files"] += 1
            keep = []
            bad_here = 0
            text = data.decode("utf-8", errors="replace")
            for number, raw in enumerate(text.splitlines(), 1):
                line = raw.strip()
                if not line:
                    continue
                try:
                    _, record = _parse_record(line)
                except ChecksumError:
                    report["crc_failures"] += 1
                except (ValueError, KeyError, TypeError):
                    pass
                else:
                    report["records"] += 1
                    if "crc" in record:
                        report["checked"] += 1
                    else:
                        report["legacy"] += 1
                    keep.append(line)
                    continue
                report["corrupt"] += 1
                report["bad"].append(f"{path.name}:{number}")
                bad_lines.append(line)
                bad_here += 1
            if repair and bad_here:
                tmp = path.with_suffix(".jsonl.verify-tmp")
                try:
                    with open(tmp, "w", encoding="utf-8") as fh:
                        for line in keep:
                            fh.write(line + "\n")
                    os.replace(tmp, path)
                    report["repaired"] += bad_here
                except OSError:
                    try:
                        tmp.unlink()
                    except OSError:
                        pass
        if repair and bad_lines and report["repaired"]:
            quarantine = (self.directory
                          / f"corrupt-{int(time.time())}.jsonl")
            try:
                with open(quarantine, "a", encoding="utf-8") as fh:
                    for line in bad_lines:
                        fh.write(line + "\n")
                report["quarantine"] = str(quarantine)
            except OSError:
                pass
            self._index = None  # re-scan the repaired files
        return report

    # -- container protocol ------------------------------------------

    def __contains__(self, key):
        return self._qualified(key) in self._load_index()

    def __len__(self):
        return len(self._load_index())
