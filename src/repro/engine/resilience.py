"""Unified retry/backoff policy and per-worker circuit breaker.

Before this module the distributed stack's failure handling was a pile
of hard-coded constants: fixed retry counts in ``engine/remote.py``,
fixed heartbeat intervals, no backoff anywhere, and a worker that failed
three times was dead forever.  :class:`RetryPolicy` centralises the
retry shape — exponential backoff with full jitter, a per-attempt
timeout and an overall deadline — and :class:`CircuitBreaker` gives the
remote executor a principled quarantine: a worker that keeps failing is
benched (open), then probed once after a cooldown (half-open) and
readmitted on success instead of being abandoned.

Both classes take injectable clocks/RNGs so tests run in virtual time.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["RetryPolicy", "CircuitBreaker"]


class RetryPolicy:
    """How to retry an operation: attempts, backoff, timeouts, deadline.

    ``attempts`` is the total number of tries (not re-tries).  Backoff
    before try ``k`` (0-based count of failures so far) is drawn with
    *full jitter*: ``uniform(0, min(max_delay, base_delay * 2**k))`` —
    the AWS-style shape that avoids thundering herds while keeping the
    expected wait growing exponentially.  ``timeout`` is the per-attempt
    budget callers should apply to the operation itself (e.g. a socket
    timeout); ``deadline`` bounds the whole retry loop including sleeps.
    """

    def __init__(self, attempts: int = 3, base_delay: float = 0.2,
                 max_delay: float = 5.0, timeout: Optional[float] = None,
                 deadline: Optional[float] = None,
                 rng: Optional[random.Random] = None) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.timeout = timeout
        self.deadline = deadline
        self._rng = rng if rng is not None else random.Random()

    def backoff(self, failures: int) -> float:
        """Full-jitter backoff after ``failures`` consecutive failures."""
        cap = min(self.max_delay, self.base_delay * (2 ** max(0, failures)))
        if cap <= 0:
            return 0.0
        return self._rng.uniform(0.0, cap)

    def call(self, fn: Callable[[int], object], *,
             retry_on: Tuple[type, ...] = (ConnectionError, OSError, TimeoutError),
             sleep: Callable[[float], None] = time.sleep,
             clock: Callable[[], float] = time.monotonic) -> object:
        """Run ``fn(attempt)`` under this policy and return its result.

        Exceptions in ``retry_on`` are retried with backoff until the
        attempt budget or the overall ``deadline`` runs out, then the
        last one is re-raised; anything else propagates immediately.
        """
        start = clock()
        last: Optional[BaseException] = None
        for attempt in range(self.attempts):
            if attempt and self.deadline is not None:
                if clock() - start >= self.deadline:
                    break
            try:
                return fn(attempt)
            except retry_on as exc:  # noqa: PERF203 - loop is the point
                last = exc
                if attempt + 1 >= self.attempts:
                    break
                pause = self.backoff(attempt)
                if self.deadline is not None:
                    remaining = self.deadline - (clock() - start)
                    if remaining <= 0:
                        break
                    pause = min(pause, remaining)
                if pause > 0:
                    sleep(pause)
        assert last is not None
        raise last


class CircuitBreaker:
    """Per-key circuit breaker: closed -> open -> half-open -> closed.

    A key (e.g. a worker address) starts *closed* (requests allowed).
    After ``threshold`` consecutive recorded failures it *opens*:
    :meth:`allows` returns ``False`` until ``cooldown`` seconds pass, at
    which point exactly one caller is admitted as a *half-open* probe.
    A success closes the circuit again; a failure re-opens it for a
    fresh cooldown.  Thread-safe; the clock is injectable for tests.

    ``on_open(key)`` — if given — is invoked (outside the lock) each
    time a key's circuit transitions to open, so callers can count
    breaker trips in a metrics registry without polling.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, threshold: int = 3, cooldown: float = 30.0,
                 clock: Callable[[], float] = time.monotonic,
                 on_open: Optional[Callable[[str], None]] = None) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._on_open = on_open
        self._lock = threading.Lock()
        self._failures: Dict[str, int] = {}
        self._opened_at: Dict[str, float] = {}
        self._probing: Dict[str, bool] = {}
        self._probe_failed: Dict[str, bool] = {}

    def state(self, key: str) -> str:
        """Current state of ``key``: closed, open, or half-open."""
        with self._lock:
            return self._state_locked(key)

    def _state_locked(self, key: str) -> str:
        if key not in self._opened_at:
            return self.CLOSED
        if self._probing.get(key):
            return self.HALF_OPEN
        return self.OPEN

    def allows(self, key: str) -> bool:
        """Whether ``key`` may be used right now.

        While open, returns ``False`` until the cooldown elapses, then
        ``True`` exactly once (the half-open probe) until the probe's
        outcome is recorded.
        """
        with self._lock:
            if key not in self._opened_at:
                return True
            if self._probing.get(key):
                return False  # a probe is already in flight
            if self._clock() - self._opened_at[key] >= self.cooldown:
                self._probing[key] = True
                return True
            return False

    def record_success(self, key: str) -> None:
        """Note a success: resets failures and closes the circuit."""
        with self._lock:
            self._failures.pop(key, None)
            self._opened_at.pop(key, None)
            self._probing.pop(key, None)
            self._probe_failed.pop(key, None)

    def record_failure(self, key: str) -> None:
        """Note a failure: opens the circuit at ``threshold`` in a row
        (or immediately if it was a half-open probe)."""
        opened = False
        with self._lock:
            if self._probing.pop(key, None):
                self._opened_at[key] = self._clock()
                self._probe_failed[key] = True
                opened = True
            else:
                count = self._failures.get(key, 0) + 1
                self._failures[key] = count
                if count >= self.threshold and key not in self._opened_at:
                    self._opened_at[key] = self._clock()
                    opened = True
        if opened and self._on_open is not None:
            self._on_open(key)  # outside the lock: callbacks can't jam it

    def probe_failed(self, key: str) -> bool:
        """Whether ``key`` has flunked a half-open probe since opening.

        Distinguishes a worker that is merely cooling down (may come
        back; callers should wait) from one that was offered readmission
        and failed it (give-up decisions can treat it as dead).  Reset
        by the next recorded success.
        """
        with self._lock:
            return self._probe_failed.get(key, False)

    def quarantined(self) -> List[str]:
        """Keys whose circuit is currently open or probing."""
        with self._lock:
            return sorted(self._opened_at)
