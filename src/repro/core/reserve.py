"""NRR deadlock avoidance (paper §3.3).

Late allocation can exhaust physical registers *after* instructions have
executed; if every register is held by completed-but-uncommitted young
instructions, the oldest instruction can never complete and nothing ever
commits — deadlock.  The paper's fix: guarantee the **NRR oldest
instructions with a destination register** (per class) a physical
register.  Hardware-wise this is the PRRint/PRRfp pointer walking the
reorder buffer plus the Reg and Used counters.

This module keeps the same state with an equivalent O(1) formulation:
the *reserved set* is the oldest ``reg <= NRR`` destination-writing
instructions; a FIFO of not-yet-reserved destination writers stands in
for "advance the pointer to the next such instruction".

Allocation rule (verbatim from the paper): an instruction may allocate
"provided that there are more free physical registers than NRR minus
Used, or it is an instruction not youngest than the one pointed by PRR"
— i.e. it is in the reserved set.  Because non-reserved instructions
always leave ``NRR - Used`` registers free, a reserved instruction can
*always* allocate; that is the no-deadlock guarantee (tested as a
property).
"""

from __future__ import annotations

from collections import deque

from repro.isa.registers import RegClass


class _ClassReserve:
    """Reserve bookkeeping for one register class (int or FP)."""

    __slots__ = ("nrr", "reg", "used", "_pending")

    def __init__(self, nrr):
        self.nrr = nrr
        self.reg = 0  # instructions currently reserved (paper: Reg counter)
        self.used = 0  # reserved instructions that already hold a register
        self._pending = deque()  # destination writers not yet reserved, old->young

    def on_dispatch(self, instr):
        if self.reg < self.nrr:
            instr.reserved = True
            self.reg += 1
        else:
            self._pending.append(instr)

    def on_allocate(self, instr):
        if instr.reserved:
            self.used += 1

    def on_commit(self, instr):
        if not instr.reserved:
            raise RuntimeError(
                "committing destination writer was not reserved; "
                "reserve bookkeeping is corrupt"
            )
        self.reg -= 1
        self.used -= 1  # the committing instruction held a register
        # Advance the PRR pointer: reserve the next destination writer.
        while self._pending:
            nxt = self._pending.popleft()
            if nxt.squashed:
                continue
            nxt.reserved = True
            self.reg += 1
            if nxt.dest_phys >= 0:
                self.used += 1
            break

    def may_allocate(self, instr, free_count):
        if instr.reserved:
            return True
        return free_count > self.nrr - self.used

    def drop_younger_than(self, seq):
        """Recovery support: forget pending writers younger than ``seq``."""
        while self._pending and self._pending[-1].seq > seq:
            self._pending.pop()


class ReservePolicy:
    """Per-class NRR state, as the paper keeps PRRint and PRRfp."""

    def __init__(self, nrr_int, nrr_fp):
        if nrr_int < 1 or nrr_fp < 1:
            raise ValueError("NRR must be at least 1 to guarantee progress")
        self._cls = {
            RegClass.INT: _ClassReserve(nrr_int),
            RegClass.FP: _ClassReserve(nrr_fp),
        }

    def on_dispatch(self, instr):
        if instr.dest_cls is not None:
            self._cls[instr.dest_cls].on_dispatch(instr)

    def on_allocate(self, instr):
        self._cls[instr.dest_cls].on_allocate(instr)

    def on_commit(self, instr):
        if instr.dest_cls is not None:
            self._cls[instr.dest_cls].on_commit(instr)

    def may_allocate(self, instr, free_count):
        return self._cls[instr.dest_cls].may_allocate(instr, free_count)

    def drop_younger_than(self, seq):
        for state in self._cls.values():
            state.drop_younger_than(seq)

    def counters(self, cls):
        """(reg, used) counters for inspection and tests."""
        state = self._cls[cls]
        return state.reg, state.used
