"""Conventional register renaming (the paper's baseline).

This is the R10000/21264-style organization the paper's §2 describes:

* a map table per class translates logical to physical registers,
* the destination is mapped to a *free* physical register at **decode**,
* the physical register previously mapped to the same logical register
  is freed when the renaming instruction **commits**,
* decode stalls when the free pool of the required class is empty.

Dependence tags are the physical register numbers themselves.
"""

from __future__ import annotations

from repro.isa.opcodes import dest_class_for
from repro.isa.registers import (
    CLASS_SHIFT,
    NUM_LOGICAL_FP,
    NUM_LOGICAL_INT,
    RegClass,
    reg_index,
)
from repro.core.freelist import FreeList
from repro.core.policy import RenamingPolicy
from repro.core.tags import TAG_CLASS_SHIFT, make_tag

_INDEX_MASK = (1 << CLASS_SHIFT) - 1


class ConventionalRenamer(RenamingPolicy):
    """Physical-register-file renaming with decode-stage allocation.

    Registered in the policy registry as ``conventional``; uses none of
    the optional lifecycle hooks (the capability flags keep the base
    class defaults), so the cycle engine's issue and completion paths
    never call into it.
    """

    def __init__(self, int_phys, fp_phys,
                 nlr_int=NUM_LOGICAL_INT, nlr_fp=NUM_LOGICAL_FP):
        for npr, nlr, label in ((int_phys, nlr_int, "int"), (fp_phys, nlr_fp, "fp")):
            if npr < nlr + 1:
                raise ValueError(
                    f"{label}: need more physical ({npr}) than logical ({nlr}) "
                    "registers, plus at least one for renaming"
                )
        self.nlr = {RegClass.INT: nlr_int, RegClass.FP: nlr_fp}
        self.npr = {RegClass.INT: int_phys, RegClass.FP: fp_phys}
        # At reset each logical register is mapped to a physical register
        # holding the architectural value; the rest are free.
        self.map_table = {
            cls: list(range(self.nlr[cls])) for cls in (RegClass.INT, RegClass.FP)
        }
        self.free = {
            cls: FreeList(range(self.nlr[cls], self.npr[cls]))
            for cls in (RegClass.INT, RegClass.FP)
        }
        # Dependence tags ARE the mapped physical registers, so the map
        # table doubles as the source-tag table of the shared
        # RenamingPolicy._rename_sources fast path.
        self._tag_tables = self.map_table
        self.decode_stalls = 0

    # -- Renamer interface ---------------------------------------------------

    def can_rename(self, rec):
        """Whether a physical register is free for ``rec``'s destination
        (a miss counts one decode stall)."""
        cls = dest_class_for(rec.op)
        if cls is None:
            return True
        if self.free[cls].free_count == 0:
            self.decode_stalls += 1
            return False
        return True

    def rename(self, instr):
        """Map sources to tags and allocate the destination register.

        Conventional renaming allocates at decode: the instruction
        leaves with ``dest_phys`` bound and the previous mapping saved
        in ``prev_phys`` for commit-time release or rollback.
        """
        self._rename_sources(instr)
        cls = instr.dest_cls
        if cls is None:
            instr.dest_tag = -1
            return
        rec = instr.rec
        idx = rec.dest & _INDEX_MASK
        table = self.map_table[cls]
        new_phys = self.free[cls].allocate()
        instr.prev_phys = table[idx]
        instr.dest_phys = new_phys
        table[idx] = new_phys
        instr.dest_tag = (cls << TAG_CLASS_SHIFT) | new_phys

    def on_commit(self, instr):
        """Release the previous mapping of the committed destination —
        the conventional scheme's (late) register-free point."""
        if instr.dest_cls is not None:
            self.free[instr.dest_cls].release(instr.prev_phys)

    def rollback(self, instrs):
        """Undo mappings; ``instrs`` must be ordered youngest first."""
        for instr in instrs:
            cls = instr.dest_cls
            if cls is None:
                continue
            idx = reg_index(instr.rec.dest)
            if self.map_table[cls][idx] != instr.dest_phys:
                raise RuntimeError("rollback out of order: map table mismatch")
            self.map_table[cls][idx] = instr.prev_phys
            self.free[cls].release(instr.dest_phys)

    def initial_ready_tags(self):
        """Tags holding architectural values at reset (all ready)."""
        tags = []
        for cls in (RegClass.INT, RegClass.FP):
            tags.extend(make_tag(cls, p) for p in range(self.nlr[cls]))
        return tags

    # -- checkpointing ---------------------------------------------------
    #
    # The paper notes that "a mechanism based on checkpointing similar to
    # the one used by the R10000 could be used to recover from branches
    # in just one cycle".  A checkpoint is a copy of the map table; the
    # free lists are reconstructed at restore (everything mapped by no
    # checkpointed name and not in flight is free).

    def snapshot(self):
        """O(NLR) checkpoint of the rename state."""
        return {cls: list(table) for cls, table in self.map_table.items()}

    def state_fingerprint(self):
        """Canonical view of the rename state (for equivalence tests)."""
        return (
            tuple(tuple(t) for t in
                  (self.map_table[RegClass.INT], self.map_table[RegClass.FP])),
            tuple(
                tuple(sorted(
                    p for p in range(self.npr[cls]) if p in self.free[cls]
                ))
                for cls in (RegClass.INT, RegClass.FP)
            ),
        )

    def free_physical(self, cls):
        """Number of free physical registers of ``cls``."""
        return self.free[cls].free_count

    def allocated_physical(self, cls):
        """Number of allocated physical registers of ``cls``."""
        return self.npr[cls] - self.free[cls].free_count

    def phys_pools(self):
        """Per-class physical pools (the engine's occupancy fast path)."""
        return self.free

    def rename_gate_pools(self):
        """Renaming blocks exactly when the physical pool is empty."""
        return self.free
