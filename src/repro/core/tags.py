"""Dependence tags.

The issue logic tracks dependences through opaque integer *tags*: under
conventional renaming a tag names a physical register, under the
virtual-physical scheme a tag names a VP register.  Tags embed the
register class so the two rename files share one wakeup namespace::

    tag = (reg_class << TAG_CLASS_SHIFT) | identifier
"""

from __future__ import annotations

from repro.isa.registers import RegClass

TAG_CLASS_SHIFT = 16
_ID_MASK = (1 << TAG_CLASS_SHIFT) - 1


def make_tag(cls, ident):
    """Build a dependence tag from a register class and an identifier."""
    return (int(cls) << TAG_CLASS_SHIFT) | ident


_TAG_CLASSES = (RegClass.INT, RegClass.FP)


def tag_class(tag):
    return _TAG_CLASSES[tag >> TAG_CLASS_SHIFT]


def tag_ident(tag):
    return tag & _ID_MASK
