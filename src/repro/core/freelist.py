"""Free pools of register identifiers.

Both renaming schemes draw destination registers from free pools: the
conventional scheme keeps one pool of physical registers per class; the
virtual-physical scheme adds a pool of VP tags per class.  FIFO order
keeps allocation deterministic, which golden tests rely on.
"""

from __future__ import annotations

from collections import deque


class FreeList:
    """FIFO pool of register identifiers with occupancy statistics."""

    def __init__(self, identifiers):
        self._free = deque(identifiers)
        self._capacity = len(self._free)
        self._members = set(self._free)
        if len(self._members) != self._capacity:
            raise ValueError("free list initialized with duplicate identifiers")
        self.allocations = 0
        self.min_free = self._capacity

    @property
    def capacity(self):
        """Total identifiers managed by this pool (free + allocated)."""
        return self._capacity

    @property
    def free_count(self):
        return len(self._free)

    @property
    def allocated_count(self):
        return self._capacity - len(self._free)

    def __contains__(self, ident):
        return ident in self._members

    def allocate(self):
        """Pop the oldest free identifier; raises when empty."""
        if not self._free:
            raise RuntimeError("free list exhausted")
        ident = self._free.popleft()
        self._members.discard(ident)
        self.allocations += 1
        if len(self._free) < self.min_free:
            self.min_free = len(self._free)
        return ident

    def release(self, ident):
        """Return an identifier to the pool."""
        if ident in self._members:
            raise ValueError(f"double free of register {ident}")
        self._members.add(ident)
        self._free.append(ident)
        if len(self._free) > self._capacity:
            raise RuntimeError("free list grew beyond its capacity")
