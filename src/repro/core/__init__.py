"""The paper's contribution: register renaming schemes.

Every scheme implements the :class:`RenamingPolicy` lifecycle-hook
interface and is registered by name in the **policy registry**
(:mod:`repro.core.policy`), which is how every entry layer — the CLI,
``ProcessorConfig``, experiments, benchmarks, examples — resolves a
renamer.  Built-in policies:

* ``conventional`` — :class:`ConventionalRenamer`, the baseline
  (allocate at decode, free at commit of the next writer of the same
  logical register).
* ``vp-writeback`` / ``vp-issue`` — :class:`VirtualPhysicalRenamer`,
  the proposed scheme: VP tags at decode, physical registers allocated
  at write-back or issue, NRR deadlock avoidance with
  squash-and-re-execute.
* ``early-release`` — :class:`EarlyReleaseRenamer`, the counter-based
  early-freeing scheme of the paper's refs [8][10], as an ablation
  baseline.
"""

from repro.core.freelist import FreeList
from repro.core.tags import make_tag, tag_class, tag_ident
from repro.core.policy import (
    AllocationStage,
    PolicyCapabilities,
    PolicyInfo,
    RenamingPolicy,
    policy_capabilities,
    policy_name_for,
    policy_names,
    register_policy,
    resolve_policy,
)
from repro.core.renamer import Renamer
from repro.core.conventional import ConventionalRenamer
from repro.core.reserve import ReservePolicy
from repro.core.virtual_physical import VirtualPhysicalRenamer
from repro.core.early_release import EarlyReleaseRenamer

__all__ = [
    "FreeList",
    "make_tag",
    "tag_class",
    "tag_ident",
    "RenamingPolicy",
    "PolicyCapabilities",
    "PolicyInfo",
    "policy_capabilities",
    "policy_name_for",
    "policy_names",
    "register_policy",
    "resolve_policy",
    "Renamer",
    "ConventionalRenamer",
    "ReservePolicy",
    "AllocationStage",
    "VirtualPhysicalRenamer",
    "EarlyReleaseRenamer",
]
