"""The paper's contribution: register renaming schemes.

* :class:`ConventionalRenamer` — the baseline (allocate at decode, free
  at commit of the next writer of the same logical register).
* :class:`VirtualPhysicalRenamer` — the proposed scheme: VP tags at
  decode, physical registers allocated at issue or write-back, NRR
  deadlock avoidance with squash-and-re-execute.
* :class:`EarlyReleaseRenamer` — the counter-based early-freeing scheme
  of the paper's refs [8][10], as an ablation baseline.
"""

from repro.core.freelist import FreeList
from repro.core.tags import make_tag, tag_class, tag_ident
from repro.core.renamer import Renamer
from repro.core.conventional import ConventionalRenamer
from repro.core.reserve import ReservePolicy
from repro.core.virtual_physical import AllocationStage, VirtualPhysicalRenamer
from repro.core.early_release import EarlyReleaseRenamer

__all__ = [
    "FreeList",
    "make_tag",
    "tag_class",
    "tag_ident",
    "Renamer",
    "ConventionalRenamer",
    "ReservePolicy",
    "AllocationStage",
    "VirtualPhysicalRenamer",
    "EarlyReleaseRenamer",
]
