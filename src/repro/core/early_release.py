"""Early register release via pending-read counters (ablation baseline).

The paper's §3.1 identifies *two* sources of register waste in the
conventional scheme and cites Moudgill/Pingali/Vassiliadis [8] and
Smith/Sohi [10] for eliminating the second one: a register that has been
superseded and fully consumed still waits for the superseding
instruction to commit.  Their fix associates a pending-read counter with
each physical register and frees it once

* the producing instruction has committed,
* a younger instruction has renamed the same logical register, and
* every consumer that sourced the register has committed (counter == 0).

The virtual-physical scheme attacks the *first* source of waste instead
(allocation long before the value exists).  Implementing the
counter-based scheme lets the benchmark suite quantify both effects
side by side — an ablation the paper discusses but does not plot.

Note: this scheme is incompatible with the simple ROB-walk recovery used
by the other renamers (an early-freed register may need to be reinstated
on rollback); real designs re-walk the counters.  ``rollback`` therefore
raises, and the ablation runs on exception-free traces only.
"""

from __future__ import annotations

from repro.core.conventional import ConventionalRenamer
from repro.isa.registers import NO_REG, reg_class, reg_index


class _RegState:
    __slots__ = ("pending_reads", "superseded", "producer_committed")

    def __init__(self):
        self.pending_reads = 0
        self.superseded = False
        self.producer_committed = False


class EarlyReleaseRenamer(ConventionalRenamer):
    """Conventional renaming plus counter-based early freeing."""

    def __init__(self, int_phys, fp_phys, **kwargs):
        super().__init__(int_phys, fp_phys, **kwargs)
        self._state = {
            cls: [_RegState() for _ in range(self.npr[cls])] for cls in self.npr
        }
        # Architectural reset state: every initial mapping behaves like a
        # committed producer.
        for cls in self.npr:
            for p in range(self.nlr[cls]):
                self._state[cls][p].producer_committed = True
        self.early_frees = 0

    def rename(self, instr):
        """Conventional rename plus read tracking: sources charge
        pending-read counters so superseded registers free as soon as
        their last reader retires."""
        rec = instr.rec
        # Record which physical registers the sources read, so commit can
        # decrement their pending-read counters.
        reads = []
        for src in (rec.src1, rec.src2):
            if src == NO_REG:
                continue
            cls = reg_class(src)
            phys = self.map_table[cls][reg_index(src)]
            self._state[cls][phys].pending_reads += 1
            reads.append((cls, phys))
        instr.src_phys = reads
        super().rename(instr)
        cls = instr.dest_cls
        if cls is not None:
            # The previous mapping is now superseded; reset the state of
            # the newly allocated register for its new lifetime.
            prev = self._state[cls][instr.prev_phys]
            prev.superseded = True
            self._maybe_free(cls, instr.prev_phys)
            fresh = self._state[cls][instr.dest_phys]
            fresh.pending_reads = 0
            fresh.superseded = False
            fresh.producer_committed = False

    def on_commit(self, instr):
        """Retire the instruction's reads and mark its producer
        committed; any register whose free condition completes (superseded
        + committed + no pending reads) is released immediately."""
        # Consumers retire their reads.
        for cls, phys in instr.src_phys:
            state = self._state[cls][phys]
            state.pending_reads -= 1
            if state.pending_reads < 0:
                raise RuntimeError("pending-read counter underflow")
            self._maybe_free(cls, phys)
        if instr.dest_cls is not None:
            self._state[instr.dest_cls][instr.dest_phys].producer_committed = True
            # The producer's own commit may complete the free condition
            # (it could already be superseded with all readers retired).
            self._maybe_free(instr.dest_cls, instr.dest_phys)
            # NOTE: no unconditional free of prev_phys here — that is the
            # whole point; prev_phys was freed the moment its counter
            # reached zero after being superseded.

    def _maybe_free(self, cls, phys):
        state = self._state[cls][phys]
        if (
            state.superseded
            and state.producer_committed
            and state.pending_reads == 0
        ):
            self.free[cls].release(phys)
            self.early_frees += 1
            # Arm the state so a double condition-check cannot double-free.
            state.superseded = False
            state.producer_committed = False

    def rollback(self, instrs):
        raise NotImplementedError(
            "early-release renaming does not support ROB-walk recovery; "
            "run it on exception-free traces"
        )
