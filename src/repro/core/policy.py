"""The renaming-policy interface and registry.

The HPCA'98 paper's central observation is that *when* physical
registers are allocated is a **policy choice**; the pipeline itself only
needs a fixed set of lifecycle hooks.  This module formalizes that seam:

* :class:`RenamingPolicy` — the abstract interface every renaming scheme
  implements.  The pipeline drives it through six lifecycle hooks, in
  pipeline order::

      can_rename(rec)          decode-stage structural check
      rename(instr)            bind operands to dependence tags
      on_dispatch(instr)       dispatch bookkeeping (reserve sets, ...)
      on_issue(instr, now)     issue veto (issue-stage allocation)
      on_complete(instr, now)  completion veto (write-back allocation;
                               False squashes back to the issue queue)
      on_commit(instr)         release the superseded resources
      rollback(instrs)         undo mappings, youngest first

* **Capability flags** — class attributes (``has_issue_hook``,
  ``holds_writers_in_iq``, ...) that declare which hooks a policy
  actually needs.  The cycle engine reads them once at construction and
  skips no-op hook calls entirely, so the per-cycle hot loop stays
  branch-free for policies that don't use a hook — no ``isinstance``
  checks against concrete renamer classes anywhere in ``uarch/``.

* **The policy registry** — a string-keyed table of every known policy
  (``conventional``, ``early-release``, ``vp-issue``, ``vp-writeback``).
  ``ProcessorConfig.build_renamer``, the CLI's ``--scheme`` choices,
  ``repro.perf``, and the experiment runners all resolve policies
  through :func:`resolve_policy`; adding a scheme means registering one
  entry here, not editing the pipeline.

:class:`AllocationStage` lives here (not in ``virtual_physical``) so the
registry can describe the two virtual-physical variants without
importing the implementation modules; they are imported lazily the
first time a policy is built.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

from repro.isa.registers import CLASS_SHIFT
from repro.core.tags import TAG_CLASS_SHIFT

_INDEX_MASK = (1 << CLASS_SHIFT) - 1


class AllocationStage(Enum):
    """Pipeline stage at which physical registers are allocated."""

    ISSUE = "issue"
    WRITEBACK = "writeback"


class RenamingPolicy:
    """Abstract renaming policy; concrete schemes override the hooks.

    The pipeline owns all *timing* (readiness, wakeup, scheduling); a
    policy owns all *naming* (map tables, free pools, allocation
    strategy).  Subclasses set the capability flags that are true for
    them; the engine binds only the declared hooks, so leaving a flag
    ``False`` keeps that hook entirely off the per-instruction hot path.
    """

    # -- capability flags (class-level defaults; instances may override
    # them in __init__ when the capability depends on construction
    # parameters, as the VP scheme's allocation stage does) -------------

    #: extra commit latency in cycles (the paper charges the VP scheme
    #: one cycle for the PMT lookup at commit).
    commit_extra_latency = 0
    #: the engine calls :meth:`on_dispatch` per dispatched instruction.
    has_dispatch_hook = False
    #: the engine calls :meth:`on_issue` per issue attempt; ``False``
    #: return vetoes the issue this cycle.
    has_issue_hook = False
    #: the engine calls :meth:`on_complete` per completion; ``False``
    #: return squashes the instruction back to the issue queue.
    has_complete_hook = False
    #: issued destination writers keep their issue-queue slot until
    #: their completion succeeds (they may be squashed and re-executed).
    holds_writers_in_iq = False
    #: the policy implements :meth:`may_allocate_now`, so the engine may
    #: honor ``ProcessorConfig.retry_gating`` by holding re-executions
    #: until the allocation precondition holds.
    supports_retry_gating = False

    #: per-class dependence-tag tables (``{RegClass: list}``, indexable
    #: by the raw class bit); set by subclasses that use the shared
    #: :meth:`_rename_sources` helper.
    _tag_tables = None
    #: per-class NRR reserve handles; policies backed by a
    #: :class:`~repro.core.reserve.ReservePolicy` set this and inherit
    #: the standard :meth:`on_dispatch` reserve dispatch.
    _reserve_by_cls = None
    #: physical registers per class; concrete policies fill this in.
    npr = {}

    # -- lifecycle hooks -------------------------------------------------

    def can_rename(self, rec):
        """Decode-stage structural check for ``rec``'s destination."""
        raise NotImplementedError

    def rename(self, instr):
        """Rewrite ``instr``'s operands into dependence tags: fill
        ``instr.src_tags`` and ``instr.dest_tag`` and record whatever
        undo/free information commit and rollback will need."""
        raise NotImplementedError

    def on_dispatch(self, instr):
        """Dispatch-time bookkeeping (called iff ``has_dispatch_hook``).

        The default implementation is the NRR reserve dispatch shared
        by every reserve-backed policy: destination writers enter the
        per-class reserve state (``_reserve_by_cls``).  Policies with
        different dispatch bookkeeping override this.
        """
        cls = instr.dest_cls
        if cls is not None:
            self._reserve_by_cls[cls].on_dispatch(instr)

    def on_issue(self, instr, now):
        """Issue-stage hook (called iff ``has_issue_hook``); returning
        ``False`` vetoes the issue this cycle."""
        return True

    def on_complete(self, instr, now):
        """Completion hook (called iff ``has_complete_hook``); returning
        ``False`` squashes the instruction back to the issue queue."""
        return True

    def on_commit(self, instr):
        """Release the resources the instruction's predecessor held."""
        raise NotImplementedError

    def rollback(self, instrs):
        """Undo mappings, youngest first (precise-state recovery)."""
        raise NotImplementedError

    def may_allocate_now(self, instr):
        """Whether the allocation rule could admit ``instr`` right now
        (advisory; used only when ``supports_retry_gating``)."""
        return True

    def initial_ready_tags(self):
        """Tags whose values exist at reset (the architectural state)."""
        raise NotImplementedError

    # -- introspection the engine and diagnostics use --------------------

    def free_physical(self, cls):
        """Number of free physical registers of ``cls`` (diagnostics)."""
        raise NotImplementedError

    def allocated_physical(self, cls):
        """Number of allocated physical registers of ``cls``."""
        raise NotImplementedError

    def phys_pools(self):
        """Per-class physical-register :class:`FreeList`s, or ``None``.

        When provided, the engine counts occupancy with a plain
        ``len()`` per cycle instead of calling
        :meth:`allocated_physical`; policies without the standard pool
        layout return ``None`` and take the slower path.
        """
        return None

    def rename_gate_pools(self):
        """Per-class pools whose emptiness blocks renaming, or ``None``.

        A side-effect-free stand-in for :meth:`can_rename` during
        idle-skip probing: renaming blocks exactly when the destination
        class's pool is empty.  ``can_rename`` itself may bump
        policy-internal stall diagnostics, which a speculative probe
        must not touch; returning ``None`` makes the engine fall back
        to calling :meth:`can_rename`.
        """
        return None

    # -- shared helpers ---------------------------------------------------

    def _rename_sources(self, instr):
        """Fill ``instr.src_tags`` from the policy's ``_tag_tables``.

        The tuple-building fast path shared by every table-driven
        policy: class/index extraction and tag packing are inlined
        shifts (see ``repro.isa.registers`` / ``repro.core.tags`` for
        the encodings); the per-class tables are indexed with the raw
        class bit (``IntEnum`` dict keys accept it).
        """
        rec = instr.rec
        tables = self._tag_tables
        src1 = rec.src1
        src2 = rec.src2
        if src1 >= 0:
            cls = src1 >> CLASS_SHIFT
            tag1 = (cls << TAG_CLASS_SHIFT) | tables[cls][src1 & _INDEX_MASK]
            if src2 >= 0:
                cls = src2 >> CLASS_SHIFT
                instr.src_tags = (
                    tag1,
                    (cls << TAG_CLASS_SHIFT) | tables[cls][src2 & _INDEX_MASK],
                )
            else:
                instr.src_tags = (tag1,)
        elif src2 >= 0:
            cls = src2 >> CLASS_SHIFT
            instr.src_tags = (
                (cls << TAG_CLASS_SHIFT) | tables[cls][src2 & _INDEX_MASK],
            )
        else:
            instr.src_tags = ()


# -- the registry -----------------------------------------------------------


@dataclass(frozen=True)
class PolicyCapabilities:
    """A policy's capability flags as static registry metadata.

    The same six flags :class:`RenamingPolicy` carries as class/instance
    attributes, declared once per *registered policy name* so the engine
    can resolve them without building a renamer: processor construction
    and the compiled engine's specialization key both read them through
    the cached :func:`policy_capabilities` lookup instead of
    re-resolving per instantiation inside grid sweeps.

    ``tests/core/test_policy.py`` asserts every declaration matches the
    flags of a renamer actually built for that policy, so the static
    copy can never drift from the instance truth.
    """

    commit_extra_latency: int = 0
    has_dispatch_hook: bool = False
    has_issue_hook: bool = False
    has_complete_hook: bool = False
    holds_writers_in_iq: bool = False
    supports_retry_gating: bool = False

    @classmethod
    def of(cls, renamer):
        """The capabilities a built renamer instance declares."""
        return cls(
            commit_extra_latency=renamer.commit_extra_latency,
            has_dispatch_hook=renamer.has_dispatch_hook,
            has_issue_hook=renamer.has_issue_hook,
            has_complete_hook=renamer.has_complete_hook,
            holds_writers_in_iq=renamer.holds_writers_in_iq,
            supports_retry_gating=renamer.supports_retry_gating,
        )


@dataclass(frozen=True)
class PolicyInfo:
    """One registry entry: everything the entry layers need to know."""

    #: the registry key (``repro run --scheme <name>``).
    name: str
    #: the ``RenamingScheme`` enum *value* this policy maps to (kept as
    #: a string so the registry does not import ``uarch.config``).
    scheme: str
    #: the allocation stage, for policies that have one.
    allocation: AllocationStage | None
    #: whether the policy's configuration takes the NRR knob.
    uses_nrr: bool
    #: one-line description (``repro --help``, docs).
    description: str
    #: ``ProcessorConfig -> RenamingPolicy`` factory.
    build: object
    #: static capability flags (``None`` = unknown: the engine derives
    #: them from the built instance and the compiled tier declines to
    #: specialize for the policy).
    capabilities: PolicyCapabilities | None = None

    def __str__(self):
        return f"{self.name}: {self.description}"


_REGISTRY: dict[str, PolicyInfo] = {}


def register_policy(info):
    """Add ``info`` to the registry (last registration of a name wins).

    Returns ``info`` so external schemes can use it as a decorator
    helper; re-registering a built-in name deliberately replaces it.
    Cached name/capability lookups are invalidated.
    """
    _REGISTRY[info.name] = info
    policy_capabilities.cache_clear()
    _policy_name_cache.cache_clear()
    return info


@lru_cache(maxsize=None)
def policy_capabilities(name):
    """The :class:`PolicyCapabilities` registered under ``name`` (or
    ``None`` for policies registered without a declaration).

    Cached per name: a grid sweep constructing thousands of processors
    resolves each policy's flags once, not once per construction
    (:func:`register_policy` invalidates the cache).
    """
    return resolve_policy(name).capabilities


def resolve_policy(name):
    """The :class:`PolicyInfo` registered under ``name``.

    Raises ``KeyError`` with the full list of known policies — the one
    error message every entry layer (CLI, config, experiments) shows
    for a typo'd policy name.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown renaming policy {name!r}; registered policies: {known}"
        ) from None


def policy_names():
    """All registered policy names, sorted (the CLI's --scheme choices)."""
    return tuple(sorted(_REGISTRY))


def policy_name_for(scheme, allocation=None):
    """The registry key a ``(scheme value, allocation)`` pair maps to.

    The inverse of the registry's metadata, used by
    ``ProcessorConfig.policy`` to name the policy its enum fields
    select.  Cached: the lookup runs on every processor construction
    and every config hash, so a sweep must not re-scan the registry
    each time (:func:`register_policy` invalidates the cache).
    """
    return _policy_name_cache(scheme, allocation)


@lru_cache(maxsize=None)
def _policy_name_cache(scheme, allocation):
    for info in _REGISTRY.values():
        if info.scheme != scheme:
            continue
        if info.allocation is None or info.allocation is allocation:
            return info.name
    raise KeyError(f"no registered policy for scheme {scheme!r} "
                   f"/ allocation {allocation!r}")


# -- built-in policies ------------------------------------------------------
#
# Builders import the implementation modules lazily so the registry can
# be consulted (names, help text, scheme mapping) without pulling in
# every scheme, and so the implementation modules may import this one.


def _build_conventional(config):
    from repro.core.conventional import ConventionalRenamer

    return ConventionalRenamer(
        config.int_phys, config.fp_phys,
        nlr_int=config.nlr_int, nlr_fp=config.nlr_fp,
    )


def _build_early_release(config):
    from repro.core.early_release import EarlyReleaseRenamer

    return EarlyReleaseRenamer(
        config.int_phys, config.fp_phys,
        nlr_int=config.nlr_int, nlr_fp=config.nlr_fp,
    )


def _build_virtual_physical(config):
    from repro.core.virtual_physical import VirtualPhysicalRenamer

    return VirtualPhysicalRenamer(
        config.int_phys, config.fp_phys, config.rob_size,
        config.nrr_int, config.nrr_fp,
        allocation=config.allocation,
        nlr_int=config.nlr_int, nlr_fp=config.nlr_fp,
    )


register_policy(PolicyInfo(
    name="conventional",
    scheme="conventional",
    allocation=None,
    uses_nrr=False,
    description="physical register at decode, freed at superseder commit "
                "(the paper's baseline)",
    build=_build_conventional,
    capabilities=PolicyCapabilities(),
))
register_policy(PolicyInfo(
    name="early-release",
    scheme="early-release",
    allocation=None,
    uses_nrr=False,
    description="conventional allocation plus counter-based early "
                "freeing (refs [8][10])",
    build=_build_early_release,
    capabilities=PolicyCapabilities(),
))
register_policy(PolicyInfo(
    name="vp-writeback",
    scheme="virtual-physical",
    allocation=AllocationStage.WRITEBACK,
    uses_nrr=True,
    description="virtual-physical tags at decode, physical register at "
                "write-back with NRR squash-and-re-execute (paper §3.2)",
    build=_build_virtual_physical,
    capabilities=PolicyCapabilities(
        commit_extra_latency=1,
        has_dispatch_hook=True,
        has_complete_hook=True,
        holds_writers_in_iq=True,
        supports_retry_gating=True,
    ),
))
register_policy(PolicyInfo(
    name="vp-issue",
    scheme="virtual-physical",
    allocation=AllocationStage.ISSUE,
    uses_nrr=True,
    description="virtual-physical tags at decode, physical register at "
                "issue (paper §3.4; allocation failure blocks the issue)",
    build=_build_virtual_physical,
    capabilities=PolicyCapabilities(
        commit_extra_latency=1,
        has_dispatch_hook=True,
        has_issue_hook=True,
    ),
))
