"""Virtual-physical register renaming (the paper's contribution, §3).

At decode the destination is mapped to a **virtual-physical (VP)
register** — a pure tag with no storage.  The physical register is
allocated late:

* ``AllocationStage.WRITEBACK`` — when execution completes (paper
  §3.2.2): an instruction that finds no allocatable register is
  *squashed* and re-executed from the issue queue;
* ``AllocationStage.ISSUE`` — at issue (paper §3.4): allocation failure
  simply blocks the issue, so nothing is ever re-executed, at the cost
  of a smaller register-pressure reduction.

Structures (paper Figure 1):

* **GMT** (general map table), indexed by logical register: the current
  VP mapping, the physical register if already allocated (``P``), and a
  valid bit ``V``.
* **PMT** (physical map table), indexed by VP register: the physical
  register the VP register is bound to, or -1.
* free pools of physical registers and of VP registers.  The number of
  VP registers is ``NLR + window size``, which the paper proves is
  enough for the processor never to stall for lack of a VP tag.

Dependence tags are VP register numbers.  Readiness of a tag is
published by the pipeline exactly when the producer both *has its value*
and *has a physical register for it* (identical instants under
write-back allocation; issue allocation publishes at issue + latency,
like the conventional scheme).
"""

from __future__ import annotations

from repro.isa.opcodes import dest_class_for
from repro.isa.registers import (
    CLASS_SHIFT,
    NUM_LOGICAL_FP,
    NUM_LOGICAL_INT,
    RegClass,
    reg_index,
)
from repro.core.freelist import FreeList
from repro.core.policy import AllocationStage, RenamingPolicy
from repro.core.reserve import ReservePolicy
from repro.core.tags import TAG_CLASS_SHIFT, make_tag

_INDEX_MASK = (1 << CLASS_SHIFT) - 1


class _GMT:
    """General map table for one register class."""

    __slots__ = ("vp", "p", "v")

    def __init__(self, nlr, initial_vp):
        self.vp = list(initial_vp)  # current VP mapping per logical register
        self.p = list(range(nlr))  # physical mapping (valid iff v)
        self.v = [True] * nlr  # V bit: physical register already allocated?


class VirtualPhysicalRenamer(RenamingPolicy):
    """Late-allocation renaming with NRR deadlock avoidance.

    One class backs the registry's two VP policies: ``vp-writeback``
    (allocation at completion, squash-and-re-execute on failure) and
    ``vp-issue`` (allocation at issue, failure blocks the issue).  The
    capability flags are set per instance from the allocation stage, so
    the engine binds exactly the hooks the variant needs.
    """

    #: the paper: commit "may be delayed by one cycle due to the
    #: requirement to look up the PMT".
    commit_extra_latency = 1
    #: both variants dispatch destination writers into the NRR reserve.
    has_dispatch_hook = True

    def __init__(self, int_phys, fp_phys, window_size,
                 nrr_int, nrr_fp,
                 allocation=AllocationStage.WRITEBACK,
                 nlr_int=NUM_LOGICAL_INT, nlr_fp=NUM_LOGICAL_FP):
        self.allocation = AllocationStage(allocation)
        self.nlr = {RegClass.INT: nlr_int, RegClass.FP: nlr_fp}
        self.npr = {RegClass.INT: int_phys, RegClass.FP: fp_phys}
        for cls in (RegClass.INT, RegClass.FP):
            nrr = nrr_int if cls is RegClass.INT else nrr_fp
            max_nrr = self.npr[cls] - self.nlr[cls]
            if max_nrr < 1:
                raise ValueError(
                    f"{cls.name}: need more physical ({self.npr[cls]}) than "
                    f"logical ({self.nlr[cls]}) registers"
                )
            if not 1 <= nrr <= max_nrr:
                raise ValueError(
                    f"{cls.name}: NRR={nrr} outside the legal range "
                    f"1..{max_nrr} (= physical - logical registers)"
                )
        # NVR = NLR + window guarantees no stall for lack of a VP tag.
        self.nvr = {cls: self.nlr[cls] + window_size for cls in self.nlr}
        # Reset state: logical register i is held by VP register i, bound
        # to physical register i.
        self.gmt = {
            cls: _GMT(self.nlr[cls], range(self.nlr[cls])) for cls in self.nlr
        }
        self.pmt = {
            cls: list(range(self.nlr[cls]))
            + [-1] * (self.nvr[cls] - self.nlr[cls])
            for cls in self.nlr
        }
        self.free_phys = {
            cls: FreeList(range(self.nlr[cls], self.npr[cls])) for cls in self.nlr
        }
        self.free_vp = {
            cls: FreeList(range(self.nlr[cls], self.nvr[cls])) for cls in self.nlr
        }
        self.reserve = ReservePolicy(nrr_int, nrr_fp)
        # Direct per-class reserve handles: dispatch/commit/allocate are
        # per-instruction hot paths, so skip the policy-level re-dispatch.
        # (The base class's on_dispatch consumes this table.)
        self._reserve_by_cls = self.reserve._cls
        # Dependence tags are VP register numbers: the GMT's VP columns
        # are the source-tag tables of the shared _rename_sources path.
        self._tag_tables = {cls: self.gmt[cls].vp for cls in self.gmt}
        # Per-variant capabilities: write-back allocation needs the
        # completion veto (and keeps writers in the IQ for possible
        # re-execution); issue allocation needs the issue veto.  The
        # unused hook of each variant is unconditionally True, so
        # leaving it unbound keeps the engine's fast path exact.
        writeback = self.allocation is AllocationStage.WRITEBACK
        self.has_issue_hook = not writeback
        self.has_complete_hook = writeback
        self.holds_writers_in_iq = writeback
        self.supports_retry_gating = writeback
        self.squashes = 0  # failed write-back allocations
        self.issue_blocks = 0  # failed issue-stage allocations
        self.vp_stalls = 0

    # -- Renamer interface ---------------------------------------------------

    def can_rename(self, rec):
        """Whether a *virtual* register is free for ``rec``'s destination
        (the VP scheme never stalls decode on physical registers)."""
        cls = dest_class_for(rec.op)
        if cls is None:
            return True
        if self.free_vp[cls].free_count == 0:
            # Unreachable when NVR = NLR + window (the sizing theorem of
            # §3.2.1); kept for configurations that shrink NVR.
            self.vp_stalls += 1
            return False
        return True

    def rename(self, instr):
        """Bind the destination to a fresh virtual-physical register.

        Physical allocation is deferred to :meth:`on_issue` /
        :meth:`on_complete` (per the configured allocation stage); the
        GMT tracks the logical→VP mapping so consumers wake on VP tags.
        """
        self._rename_sources(instr)
        cls = instr.dest_cls
        if cls is None:
            instr.dest_tag = -1
            return
        rec = instr.rec
        idx = rec.dest & _INDEX_MASK
        gmt = self.gmt[cls]
        new_vp = self.free_vp[cls].allocate()
        instr.vp_reg = new_vp
        instr.prev_vp = gmt.vp[idx]  # kept in the ROB for recovery/commit
        gmt.vp[idx] = new_vp
        gmt.v[idx] = False  # no physical register yet
        instr.dest_tag = (cls << TAG_CLASS_SHIFT) | new_vp

    # on_dispatch: inherited — the base class dispatches destination
    # writers into the per-class NRR reserve (``_reserve_by_cls``).

    def on_issue(self, instr, now):
        """Issue-stage allocation attempt (ISSUE configs only); a
        ``False`` return blocks issue and counts an issue-alloc block."""
        if self.allocation is not AllocationStage.ISSUE or instr.dest_cls is None:
            return True
        if instr.dest_phys >= 0:
            return True  # already allocated (a load retrying its access)
        if not self._try_allocate(instr):
            self.issue_blocks += 1
            return False
        return True

    def on_complete(self, instr, now):
        """Write-back allocation attempt: a ``False`` return squashes
        the instruction for re-execution (paper §4.2.1)."""
        if instr.dest_cls is None:
            return True
        if instr.dest_phys >= 0:
            # Issue-stage allocation already bound the register.
            return True
        if not self._try_allocate(instr):
            self.squashes += 1
            return False
        return True

    def may_allocate_now(self, instr):
        """Would the NRR rule admit an allocation for ``instr`` right now?

        The issue logic uses this to hold back *re-executions*: a squashed
        instruction re-arbitrates for its functional unit only once the
        allocation precondition holds, rather than spinning every cycle
        and starving branches and first-time issues of resources.  (The
        check is advisory — by the time the re-execution completes a
        competitor may have taken the register, in which case it is
        simply squashed again.)
        """
        return self.reserve.may_allocate(
            instr, self.free_phys[instr.dest_cls].free_count
        )

    def _try_allocate(self, instr):
        cls = instr.dest_cls
        free = self.free_phys[cls]
        if not (instr.reserved
                or self._reserve_by_cls[cls].may_allocate(instr,
                                                          free.free_count)):
            return False
        if free.free_count == 0:
            raise RuntimeError(
                "reserved instruction found no free register: the NRR "
                "invariant is broken"
            )
        phys = free.allocate()
        instr.dest_phys = phys
        vp = instr.vp_reg
        self.pmt[cls][vp] = phys
        gmt = self.gmt[cls]
        idx = reg_index(instr.rec.dest)
        # Broadcast to the GMT: only if this VP register is still the
        # current mapping of the logical register.
        if gmt.vp[idx] == vp:
            gmt.p[idx] = phys
            gmt.v[idx] = True
        if instr.reserved:
            self._reserve_by_cls[cls].used += 1
        return True

    def on_commit(self, instr):
        """Free the superseded previous mapping — both its VP name and,
        through the PMT, the physical register bound to it."""
        cls = instr.dest_cls
        if cls is None:
            return
        self._reserve_by_cls[cls].on_commit(instr)
        # Free the VP register of the previous instruction with the same
        # logical destination, and the physical register bound to it
        # (found through the PMT, hence the extra commit cycle).
        prev_vp = instr.prev_vp
        prev_phys = self.pmt[cls][prev_vp]
        if prev_phys < 0:
            raise RuntimeError(
                "previous VP mapping committed without a physical register"
            )
        self.pmt[cls][prev_vp] = -1
        self.free_phys[cls].release(prev_phys)
        self.free_vp[cls].release(prev_vp)

    def rollback(self, instrs):
        """Undo mappings, youngest first (paper §3.2.2 recovery).

        For each squashed instruction the GMT entry is restored to the
        previous VP mapping recorded at rename; the physical binding, if
        any, is recovered through the PMT, exactly as the paper describes.
        """
        for instr in instrs:
            instr.squashed = True
            cls = instr.dest_cls
            if cls is None:
                continue
            idx = reg_index(instr.rec.dest)
            gmt = self.gmt[cls]
            if gmt.vp[idx] != instr.vp_reg:
                raise RuntimeError("rollback out of order: GMT mismatch")
            # Return the squashed instruction's VP (and physical, if
            # allocated) registers to their pools.
            had_phys = instr.dest_phys >= 0
            if had_phys:
                self.pmt[cls][instr.vp_reg] = -1
                self.free_phys[cls].release(instr.dest_phys)
                instr.dest_phys = -1
            self.free_vp[cls].release(instr.vp_reg)
            # Restore the previous mapping; its physical binding comes
            # from the PMT.
            prev_vp = instr.prev_vp
            gmt.vp[idx] = prev_vp
            prev_phys = self.pmt[cls][prev_vp]
            gmt.p[idx] = prev_phys if prev_phys >= 0 else 0
            gmt.v[idx] = prev_phys >= 0
            # Reserve bookkeeping: squashed reserved instructions leave
            # the reserved set.
            if instr.reserved:
                state = self.reserve._cls[cls]
                state.reg -= 1
                if had_phys:
                    state.used -= 1
                instr.reserved = False
        if instrs:
            # Drop every rolled-back instruction still queued for the PRR
            # pointer; instrs is ordered youngest -> oldest.
            self.reserve.drop_younger_than(instrs[-1].seq - 1)

    def initial_ready_tags(self):
        """VP tags holding architectural values at reset (all ready)."""
        tags = []
        for cls in (RegClass.INT, RegClass.FP):
            tags.extend(make_tag(cls, vp) for vp in range(self.nlr[cls]))
        return tags

    # -- checkpointing ---------------------------------------------------
    #
    # R10000-style checkpoints (paper §3.2.2's closing remark): a copy of
    # the GMT is enough to restore the logical->VP view in one cycle; the
    # PMT needs no checkpoint because VP->physical bindings are never
    # mutated in place, only created at allocation and destroyed at
    # commit/rollback of the binding instruction itself.

    def snapshot(self):
        """O(NLR) checkpoint of the GMT."""
        return {
            cls: (list(g.vp), list(g.p), list(g.v))
            for cls, g in self.gmt.items()
        }

    def state_fingerprint(self):
        """Canonical view of GMT + PMT + pools (for equivalence tests)."""
        gmt = tuple(
            (tuple(g.vp), tuple(p if valid else -1
                                for p, valid in zip(g.p, g.v)))
            for g in (self.gmt[RegClass.INT], self.gmt[RegClass.FP])
        )
        pmt = tuple(tuple(self.pmt[cls])
                    for cls in (RegClass.INT, RegClass.FP))
        pools = tuple(
            (tuple(sorted(p for p in range(self.npr[cls])
                          if p in self.free_phys[cls])),
             tuple(sorted(v for v in range(self.nvr[cls])
                          if v in self.free_vp[cls])))
            for cls in (RegClass.INT, RegClass.FP)
        )
        return gmt, pmt, pools

    def free_physical(self, cls):
        """Number of free physical registers of ``cls``."""
        return self.free_phys[cls].free_count

    def allocated_physical(self, cls):
        """Number of allocated physical registers of ``cls``."""
        return self.npr[cls] - self.free_phys[cls].free_count

    def phys_pools(self):
        """Per-class physical pools (the engine's occupancy fast path)."""
        return self.free_phys

    def rename_gate_pools(self):
        """Renaming blocks only when the VP-tag pool is empty (the VP
        scheme never stalls decode on physical registers)."""
        return self.free_vp
