"""Back-compat alias for the renaming-policy interface.

The renamer interface grew into the formal :class:`RenamingPolicy`
(lifecycle hooks + capability flags + registry) in
:mod:`repro.core.policy`; ``Renamer`` remains as an alias so older
imports resolve.  Note one contract change for subclasses: the engine
no longer auto-detects overridden hooks — a scheme that overrides
``on_dispatch`` / ``on_issue`` / ``on_complete`` must also set the
matching capability flag (``has_dispatch_hook`` / ``has_issue_hook`` /
``has_complete_hook``), and pool introspection goes through
``phys_pools()`` / ``rename_gate_pools()`` instead of ``free`` /
``free_phys`` attribute sniffing.  See ``docs/renaming-policies.md``.
"""

from __future__ import annotations

from repro.core.policy import RenamingPolicy

#: Historical name of :class:`repro.core.policy.RenamingPolicy`.
Renamer = RenamingPolicy
