"""The renaming-scheme interface the pipeline drives.

The pipeline owns all *timing* (readiness, wakeup, scheduling); a
renamer owns all *naming* (map tables, free pools, allocation policy).
The contract, in pipeline order:

1. ``can_rename(rec)`` — decode-stage structural check (free physical
   register under the conventional scheme; free VP tag under the
   virtual-physical scheme).
2. ``rename(instr)`` — rewrite the instruction's operands into tags:
   fills ``instr.src_tags`` (dependence tags to wait on) and
   ``instr.dest_tag``; records whatever undo/free information commit and
   rollback will need on the instruction itself.
3. ``on_issue(instr, now) -> bool`` — issue-stage hook; returning False
   vetoes the issue this cycle (used by issue-stage allocation).
4. ``on_complete(instr, now) -> bool`` — completion hook; returning
   False squashes the instruction back to the issue queue (write-back
   allocation finding no free register).  When it returns True the
   pipeline publishes ``instr.dest_tag`` as ready.
5. ``on_commit(instr)`` — release the resources the instruction's
   predecessor held.
6. ``rollback(instrs)`` — undo mappings, youngest first (precise-state
   recovery).

``initial_ready_tags()`` lists tags whose values exist at reset (the
architectural state), so the pipeline can mark them ready at cycle 0.
"""

from __future__ import annotations


class Renamer:
    """Base class; concrete schemes override every hook they need."""

    #: extra commit latency in cycles (the paper charges the VP scheme one
    #: cycle for the PMT lookup at commit).
    commit_extra_latency = 0

    def can_rename(self, rec):
        raise NotImplementedError

    def rename(self, instr):
        raise NotImplementedError

    def on_issue(self, instr, now):
        return True

    def on_complete(self, instr, now):
        return True

    def on_commit(self, instr):
        raise NotImplementedError

    def rollback(self, instrs):
        raise NotImplementedError

    def initial_ready_tags(self):
        raise NotImplementedError

    def free_physical(self, cls):
        """Number of free physical registers of ``cls`` (diagnostics)."""
        raise NotImplementedError

    def allocated_physical(self, cls):
        """Number of allocated physical registers of ``cls``."""
        raise NotImplementedError
