"""Branch History Table with 2-bit up/down saturating counters.

Counter encoding (classic Smith predictor):

    0 = strongly not-taken, 1 = weakly not-taken,
    2 = weakly taken,       3 = strongly taken.

Prediction is the counter's top bit; update moves the counter one step
toward the observed outcome and saturates at 0 / 3.
"""

from __future__ import annotations

STRONG_NOT_TAKEN = 0
WEAK_NOT_TAKEN = 1
WEAK_TAKEN = 2
STRONG_TAKEN = 3


class BranchHistoryTable:
    """Direct-mapped PC-indexed table of 2-bit saturating counters."""

    def __init__(self, entries=2048, initial=WEAK_NOT_TAKEN):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("BHT entry count must be a positive power of two")
        if not STRONG_NOT_TAKEN <= initial <= STRONG_TAKEN:
            raise ValueError("initial counter must be in 0..3")
        self.entries = entries
        self._mask = entries - 1
        self._counters = [initial] * entries
        self.lookups = 0
        self.hits = 0  # correct predictions

    def _index(self, pc):
        # Instructions are 4-byte aligned; drop the low bits before masking
        # so consecutive branches map to different entries.
        return (pc >> 2) & self._mask

    def predict(self, pc):
        """Return the predicted direction for the branch at ``pc``."""
        return self._counters[self._index(pc)] >= WEAK_TAKEN

    def update(self, pc, taken):
        """Train the counter at ``pc`` with the resolved direction."""
        idx = self._index(pc)
        ctr = self._counters[idx]
        if taken:
            if ctr < STRONG_TAKEN:
                self._counters[idx] = ctr + 1
        else:
            if ctr > STRONG_NOT_TAKEN:
                self._counters[idx] = ctr - 1

    def predict_and_train(self, pc, taken):
        """Predict, record accuracy stats, and train in one step.

        Returns True when the prediction matched the outcome.  The
        simulator calls :meth:`predict` at fetch and :meth:`update` at
        resolve; this combined helper exists for accuracy measurements in
        tests and workload calibration.
        """
        self.lookups += 1
        correct = self.predict(pc) == taken
        if correct:
            self.hits += 1
        self.update(pc, taken)
        return correct

    @property
    def accuracy(self):
        """Fraction of correct predictions seen by predict_and_train."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def counter(self, pc):
        """Expose the raw counter value (for tests)."""
        return self._counters[self._index(pc)]


class PerfectPredictor:
    """Oracle predictor; useful to isolate renaming effects in tests."""

    def predict(self, pc):  # pragma: no cover - direction ignored by caller
        raise NotImplementedError("perfect predictor is queried with the outcome")

    def predict_with_outcome(self, pc, taken):
        return taken

    def update(self, pc, taken):
        return None


class StaticTakenPredictor:
    """Always-taken static predictor (a common 1990s baseline)."""

    def predict(self, pc):
        return True

    def update(self, pc, taken):
        return None
