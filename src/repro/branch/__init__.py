"""Branch prediction substrate.

The paper: "Branch prediction is performed using a 2048 entry Branch
History Table with a 2 bit up-down saturated counter per entry."
"""

from repro.branch.bht import BranchHistoryTable, PerfectPredictor, StaticTakenPredictor

__all__ = ["BranchHistoryTable", "PerfectPredictor", "StaticTakenPredictor"]
