"""ISA model: register namespaces, operation classes, and trace records.

The paper evaluates renaming on DEC Alpha traces.  Renaming is oblivious
to instruction semantics; all it observes is (a) which logical registers
an instruction reads and writes, (b) which functional-unit class executes
it and with what latency, and (c) for memory operations, the effective
address.  This package models exactly that surface.
"""

from repro.isa.registers import (
    INT,
    FP,
    NUM_LOGICAL_INT,
    NUM_LOGICAL_FP,
    RegClass,
    make_reg,
    reg_class,
    reg_index,
    reg_name,
    NO_REG,
)
from repro.isa.opcodes import (
    OpClass,
    FUKind,
    FU_FOR_OP,
    LATENCY,
    PIPELINED,
    is_branch,
    is_load,
    is_store,
    is_mem,
    dest_class_for,
)
from repro.isa.instruction import TraceRecord

__all__ = [
    "INT",
    "FP",
    "NUM_LOGICAL_INT",
    "NUM_LOGICAL_FP",
    "RegClass",
    "make_reg",
    "reg_class",
    "reg_index",
    "reg_name",
    "NO_REG",
    "OpClass",
    "FUKind",
    "FU_FOR_OP",
    "LATENCY",
    "PIPELINED",
    "is_branch",
    "is_load",
    "is_store",
    "is_mem",
    "dest_class_for",
    "TraceRecord",
]
