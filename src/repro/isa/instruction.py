"""Dynamic trace records.

A trace-driven simulator consumes a stream of *dynamic* instructions:
each record is one executed instruction with its registers, resolved
branch outcome, and effective address.  This mirrors what the paper's
ATOM-instrumented Alpha binaries produced.
"""

from __future__ import annotations

from repro.isa.opcodes import OpClass, dest_class_for, is_branch, is_mem
from repro.isa.registers import NO_REG, reg_class, reg_name


class TraceRecord:
    """One dynamic instruction.

    Attributes
    ----------
    pc:
        Instruction address (byte-granular; synthetic traces use 4-byte
        instruction slots).
    op:
        The :class:`~repro.isa.opcodes.OpClass`.
    dest:
        Encoded destination register, or ``NO_REG``.
    src1, src2:
        Encoded source registers, or ``NO_REG``.  By convention the
        address base of a memory operation is ``src1``; the stored value
        of a store is ``src2``.
    addr:
        Effective address for memory operations (0 otherwise).
    taken:
        Resolved direction for branches (False otherwise).
    target:
        Branch target address (0 for non-branches).
    """

    __slots__ = ("pc", "op", "dest", "src1", "src2", "addr", "taken", "target")

    def __init__(self, pc, op, dest=NO_REG, src1=NO_REG, src2=NO_REG,
                 addr=0, taken=False, target=0):
        self.pc = pc
        self.op = op
        self.dest = dest
        self.src1 = src1
        self.src2 = src2
        self.addr = addr
        self.taken = taken
        self.target = target
        self._validate()

    @classmethod
    def trusted(cls, pc, op, dest=NO_REG, src1=NO_REG, src2=NO_REG,
                addr=0, taken=False, target=0):
        """Construct without validation.

        For trace generators whose *static* statements were validated
        once at compile time (every dynamic instance of a statement has
        the same operand shape); per-record validation would re-check
        the same facts millions of times.
        """
        rec = cls.__new__(cls)
        rec.pc = pc
        rec.op = op
        rec.dest = dest
        rec.src1 = src1
        rec.src2 = src2
        rec.addr = addr
        rec.taken = taken
        rec.target = target
        return rec

    def _validate(self):
        op = self.op
        expected = dest_class_for(op)
        if expected is None:
            if self.dest != NO_REG:
                raise ValueError(f"{op.name} must not have a destination register")
        else:
            if self.dest == NO_REG:
                raise ValueError(f"{op.name} requires a destination register")
            if reg_class(self.dest) != expected:
                raise ValueError(
                    f"{op.name} destination must be {expected.name}, "
                    f"got {reg_name(self.dest)}"
                )
        if is_mem(op) and self.addr < 0:
            raise ValueError("memory operations need a non-negative address")
        if self.taken and not is_branch(op):
            raise ValueError("only branches can be taken")

    @property
    def sources(self):
        """Tuple of present source registers (no NO_REG entries)."""
        out = []
        if self.src1 != NO_REG:
            out.append(self.src1)
        if self.src2 != NO_REG:
            out.append(self.src2)
        return tuple(out)

    @property
    def next_pc(self):
        """Address of the next dynamic instruction."""
        if is_branch(self.op) and self.taken:
            return self.target
        return self.pc + 4

    def __repr__(self):
        parts = [f"{self.op.name}"]
        if self.dest != NO_REG:
            parts.append(reg_name(self.dest))
        srcs = ",".join(reg_name(s) for s in self.sources)
        if srcs:
            parts.append(srcs)
        if is_mem(self.op):
            parts.append(f"@{self.addr:#x}")
        if is_branch(self.op):
            parts.append("T" if self.taken else "N")
        return f"<{self.pc:#x} {' '.join(parts)}>"
