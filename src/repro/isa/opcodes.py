"""Operation classes, functional-unit kinds, and the latency table.

This module is the executable form of the paper's Table 1:

    ============== ===== ====================
    Functional unit Count Latency
    ============== ===== ====================
    Simple Integer   3    1
    Complex Integer  2    9 multiply, 67 divide
    Effective Addr.  3    1
    Simple FP        3    4
    FP Multiply      2    4
    FP Div and SQR   2    16 divide
    ============== ===== ====================

All units are fully pipelined except integer and FP division (the paper:
"Functional units are fully pipelined except for integer and FP
division").  The FP square root shares the divide unit; the paper gives
no explicit sqrt latency, so it uses the divide latency (16).
"""

from __future__ import annotations

from enum import IntEnum

from repro.isa.registers import RegClass


class OpClass(IntEnum):
    """Dynamic operation class, the granularity the simulator cares about."""

    INT_ALU = 0  # add, sub, logic, shifts, compares
    INT_MUL = 1
    INT_DIV = 2
    LOAD_INT = 3  # memory load into an integer register
    LOAD_FP = 4  # memory load into an FP register
    STORE_INT = 5  # memory store of an integer register
    STORE_FP = 6  # memory store of an FP register
    FP_ADD = 7  # simple FP: add, sub, compare, convert
    FP_MUL = 8
    FP_DIV = 9
    FP_SQRT = 10
    BRANCH = 11  # conditional branch (reads int regs, no destination)


class FUKind(IntEnum):
    """Functional-unit classes of the paper's Table 1."""

    SIMPLE_INT = 0
    COMPLEX_INT = 1
    EFF_ADDR = 2
    SIMPLE_FP = 3
    FP_MULT = 4
    FP_DIV_SQRT = 5


#: Which functional unit executes each operation class.  Memory operations
#: use an effective-address unit (the cache access is modelled separately
#: by the memory system); branches resolve on a simple integer ALU.
FU_FOR_OP = {
    OpClass.INT_ALU: FUKind.SIMPLE_INT,
    OpClass.INT_MUL: FUKind.COMPLEX_INT,
    OpClass.INT_DIV: FUKind.COMPLEX_INT,
    OpClass.LOAD_INT: FUKind.EFF_ADDR,
    OpClass.LOAD_FP: FUKind.EFF_ADDR,
    OpClass.STORE_INT: FUKind.EFF_ADDR,
    OpClass.STORE_FP: FUKind.EFF_ADDR,
    OpClass.FP_ADD: FUKind.SIMPLE_FP,
    OpClass.FP_MUL: FUKind.FP_MULT,
    OpClass.FP_DIV: FUKind.FP_DIV_SQRT,
    OpClass.FP_SQRT: FUKind.FP_DIV_SQRT,
    OpClass.BRANCH: FUKind.SIMPLE_INT,
}

#: Execution latency in cycles (Table 1).  For memory operations this is
#: the effective-address computation only; cache latency is added by the
#: memory system (2-cycle hit / 50-cycle miss penalty).
LATENCY = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 9,
    OpClass.INT_DIV: 67,
    OpClass.LOAD_INT: 1,
    OpClass.LOAD_FP: 1,
    OpClass.STORE_INT: 1,
    OpClass.STORE_FP: 1,
    OpClass.FP_ADD: 4,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 16,
    OpClass.FP_SQRT: 16,
    OpClass.BRANCH: 1,
}

#: Whether each *operation* is pipelined on its unit.  Only divisions
#: occupy their unit for the full latency.
PIPELINED = {
    op: op not in (OpClass.INT_DIV, OpClass.FP_DIV, OpClass.FP_SQRT)
    for op in OpClass
}

#: Functional-unit counts of Table 1, used as the config default.
DEFAULT_FU_COUNTS = {
    FUKind.SIMPLE_INT: 3,
    FUKind.COMPLEX_INT: 2,
    FUKind.EFF_ADDR: 3,
    FUKind.SIMPLE_FP: 3,
    FUKind.FP_MULT: 2,
    FUKind.FP_DIV_SQRT: 2,
}

_LOADS = frozenset((OpClass.LOAD_INT, OpClass.LOAD_FP))
_STORES = frozenset((OpClass.STORE_INT, OpClass.STORE_FP))

_DEST_CLASS = {
    OpClass.INT_ALU: RegClass.INT,
    OpClass.INT_MUL: RegClass.INT,
    OpClass.INT_DIV: RegClass.INT,
    OpClass.LOAD_INT: RegClass.INT,
    OpClass.LOAD_FP: RegClass.FP,
    OpClass.FP_ADD: RegClass.FP,
    OpClass.FP_MUL: RegClass.FP,
    OpClass.FP_DIV: RegClass.FP,
    OpClass.FP_SQRT: RegClass.FP,
    OpClass.STORE_INT: None,
    OpClass.STORE_FP: None,
    OpClass.BRANCH: None,
}


def is_branch(op):
    """True for conditional branches."""
    return op is OpClass.BRANCH or op == OpClass.BRANCH


def is_load(op):
    return op in _LOADS


def is_store(op):
    return op in _STORES


def is_mem(op):
    return op in _LOADS or op in _STORES


def dest_class_for(op):
    """Register class an operation's destination belongs to, or None.

    Stores and branches have no destination register.  This drives both
    which rename file is consulted and the NRR reserved-register
    bookkeeping (kept separately for integer and FP destinations).
    """
    return _DEST_CLASS[op]


#: Static per-operation decode, indexed by ``int(op)``:
#: ``(dest_cls, is_load, is_store, is_br, fu_kind, latency, pipelined)``.
#: The pipeline's :class:`~repro.uarch.dynamic.DynInstr` copies one cached
#: row per dynamic instruction instead of re-deriving each property.
OP_DECODE = tuple(
    (
        _DEST_CLASS[op],
        op in _LOADS,
        op in _STORES,
        op is OpClass.BRANCH,
        FU_FOR_OP[op],
        LATENCY[op],
        PIPELINED[op],
    )
    for op in OpClass
)
