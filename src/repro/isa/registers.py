"""Logical register namespaces.

The paper's machine has two architectural register files: 32 integer and
32 floating-point logical registers (the Alpha ISA).  Renaming is
replicated per class, so every register reference must carry its class.

To keep the simulator's hot loop cheap, a register reference is a single
small integer that encodes both the class and the index::

    encoded = (reg_class << CLASS_SHIFT) | index

``NO_REG`` (-1) marks an absent operand (e.g. the destination of a store
or branch).
"""

from __future__ import annotations

from enum import IntEnum


class RegClass(IntEnum):
    """Architectural register file selector."""

    INT = 0
    FP = 1


INT = RegClass.INT
FP = RegClass.FP

#: Number of logical (architectural) registers per class, per the paper
#: ("the number of logical registers is 32").
NUM_LOGICAL_INT = 32
NUM_LOGICAL_FP = 32

#: Shift used to pack the class into an encoded register reference.  Six
#: bits of index room leaves space for ISAs with up to 64 logical
#: registers per class.
CLASS_SHIFT = 6
_INDEX_MASK = (1 << CLASS_SHIFT) - 1

#: Sentinel for "this operand slot is unused".
NO_REG = -1


def make_reg(cls, index):
    """Encode a (class, index) pair into a single register reference.

    >>> make_reg(RegClass.INT, 3)
    3
    >>> make_reg(RegClass.FP, 3)
    67
    """
    if index < 0 or index > _INDEX_MASK:
        raise ValueError(f"register index {index} out of range 0..{_INDEX_MASK}")
    return (int(cls) << CLASS_SHIFT) | index


#: Class lookup by encoded-class bit; avoids an enum construction in the
#: rename hot loop.
_CLASSES = (RegClass.INT, RegClass.FP)


def reg_class(reg):
    """Return the :class:`RegClass` of an encoded register reference."""
    if reg < 0:
        raise ValueError("NO_REG has no register class")
    return _CLASSES[reg >> CLASS_SHIFT]


def reg_index(reg):
    """Return the architectural index of an encoded register reference."""
    if reg < 0:
        raise ValueError("NO_REG has no register index")
    return reg & _INDEX_MASK


def reg_name(reg):
    """Human-readable name: ``r3`` for integer, ``f3`` for FP registers.

    >>> reg_name(make_reg(RegClass.FP, 2))
    'f2'
    """
    if reg < 0:
        return "-"
    prefix = "r" if reg_class(reg) is RegClass.INT else "f"
    return f"{prefix}{reg_index(reg)}"


def parse_reg(name):
    """Parse ``r<N>`` / ``f<N>`` back into an encoded reference.

    This is the inverse of :func:`reg_name`; it is used by the assembler
    helpers in :mod:`repro.trace.kernels` and by tests.
    """
    name = name.strip().lower()
    if len(name) < 2 or name[0] not in ("r", "f"):
        raise ValueError(f"malformed register name: {name!r}")
    cls = RegClass.INT if name[0] == "r" else RegClass.FP
    return make_reg(cls, int(name[1:]))
