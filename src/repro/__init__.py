"""repro — reproduction of "Virtual-Physical Registers" (HPCA 1998).

A from-scratch, trace-driven, cycle-level model of a dynamically
scheduled superscalar processor with two register-renaming schemes:

* conventional renaming (physical register allocated at decode), and
* the paper's **virtual-physical** renaming (allocation delayed to issue
  or write-back, with NRR deadlock avoidance).

Quickstart::

    from repro import simulate, conventional_config, virtual_physical_config

    base = simulate(conventional_config(), workload="swim")
    late = simulate(virtual_physical_config(nrr=32), workload="swim")
    print(base.ipc, late.ipc)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.core import (
    AllocationStage,
    ConventionalRenamer,
    EarlyReleaseRenamer,
    VirtualPhysicalRenamer,
)
from repro.engine import BatchEngine, ResultStore, RunSpec
from repro.isa import OpClass, RegClass, TraceRecord
from repro.memory import CacheConfig
from repro.trace import (
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    WORKLOADS,
    SyntheticTrace,
    Workload,
    load_workload,
)
from repro.uarch import (
    Processor,
    ProcessorConfig,
    RenamingScheme,
    SimResult,
    SimStats,
    SimulationDeadlock,
    conventional_config,
    simulate,
    virtual_physical_config,
)

__version__ = "1.1.0"

__all__ = [
    "AllocationStage",
    "BatchEngine",
    "ConventionalRenamer",
    "EarlyReleaseRenamer",
    "ResultStore",
    "RunSpec",
    "VirtualPhysicalRenamer",
    "OpClass",
    "RegClass",
    "TraceRecord",
    "CacheConfig",
    "FP_BENCHMARKS",
    "INT_BENCHMARKS",
    "WORKLOADS",
    "SyntheticTrace",
    "Workload",
    "load_workload",
    "Processor",
    "ProcessorConfig",
    "RenamingScheme",
    "SimResult",
    "SimStats",
    "SimulationDeadlock",
    "conventional_config",
    "simulate",
    "virtual_physical_config",
    "__version__",
]
