"""repro — reproduction of "Virtual-Physical Registers" (HPCA 1998).

A from-scratch, trace-driven, cycle-level model of a dynamically
scheduled superscalar processor with two register-renaming schemes:

* conventional renaming (physical register allocated at decode), and
* the paper's **virtual-physical** renaming (allocation delayed to issue
  or write-back, with NRR deadlock avoidance).

Renaming schemes are **policies**: every scheme implements the
:class:`RenamingPolicy` lifecycle-hook interface and is resolved by
name through the policy registry (:func:`policy_names` /
:func:`resolve_policy`; ``policy_config("vp-issue", nrr=8)`` builds a
ready configuration).  The optional register-file port/bank contention
model (:class:`RegisterFilePorts`, ``ProcessorConfig.rf_model``) adds
read/write-port and bank-conflict stalls on top of any policy.

Quickstart::

    from repro import simulate, conventional_config, virtual_physical_config

    base = simulate(conventional_config(), workload="swim")
    late = simulate(virtual_physical_config(nrr=32), workload="swim")
    print(base.ipc, late.ipc)

Grids run through the batch engine (:class:`BatchEngine` /
:class:`RunSpec`), which layers an in-process memo, the persistent
sharded :class:`ResultStore`, and a pluggable executor — serial,
process pools, or a cluster of ``repro worker`` daemons via
:class:`RemoteExecutor`.  On top of the engine, the service layer
(:class:`Gateway` / :class:`GatewayClient`, ``repro serve``) exposes
simulations over HTTP: clients POST spec grids and stream results
back point by point, with shared-token auth (``REPRO_TOKEN``).

The whole stack is observable through :mod:`repro.obs`: a process-wide
metrics registry with Prometheus exposition (``GET /v1/metrics``),
trace spans threaded from submission through the queue, executor, and
remote workers (``repro trace <id>``), opt-in engine profiling
(``REPRO_PROFILE``), and a zero-dependency live dashboard at
``/v1/dashboard``.

See ``docs/architecture.md`` for the layer map, ``docs/engine.md`` for
the execution layer, ``docs/service.md`` for the HTTP gateway,
``docs/observability.md`` for metrics/traces/dashboard, and
``docs/reproducing-the-paper.md`` for the table-by-table reproduction
walkthrough.
"""

from repro.core import (
    AllocationStage,
    ConventionalRenamer,
    EarlyReleaseRenamer,
    PolicyInfo,
    RenamingPolicy,
    VirtualPhysicalRenamer,
    policy_names,
    register_policy,
    resolve_policy,
)
from repro.engine import (
    BatchEngine,
    RemoteExecutor,
    ResultStore,
    RunSpec,
    WorkerServer,
)
from repro.isa import OpClass, RegClass, TraceRecord
from repro.service import Gateway, GatewayClient
from repro.memory import CacheConfig
from repro.trace import (
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    WORKLOADS,
    SyntheticTrace,
    Workload,
    load_workload,
)
from repro.uarch import (
    Processor,
    ProcessorConfig,
    RegisterFilePorts,
    RenamingScheme,
    SimResult,
    SimStats,
    SimulationDeadlock,
    conventional_config,
    policy_config,
    simulate,
    virtual_physical_config,
)

__version__ = "1.8.0"

__all__ = [
    "AllocationStage",
    "BatchEngine",
    "ConventionalRenamer",
    "EarlyReleaseRenamer",
    "Gateway",
    "GatewayClient",
    "PolicyInfo",
    "RenamingPolicy",
    "RegisterFilePorts",
    "RemoteExecutor",
    "ResultStore",
    "RunSpec",
    "WorkerServer",
    "VirtualPhysicalRenamer",
    "policy_names",
    "policy_config",
    "register_policy",
    "resolve_policy",
    "OpClass",
    "RegClass",
    "TraceRecord",
    "CacheConfig",
    "FP_BENCHMARKS",
    "INT_BENCHMARKS",
    "WORKLOADS",
    "SyntheticTrace",
    "Workload",
    "load_workload",
    "Processor",
    "ProcessorConfig",
    "RenamingScheme",
    "SimResult",
    "SimStats",
    "SimulationDeadlock",
    "conventional_config",
    "simulate",
    "virtual_physical_config",
    "__version__",
]
