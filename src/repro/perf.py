"""KIPS throughput measurement for the cycle engine.

The unit is **KIPS** — thousands of *simulated* (committed) instructions
per wall-clock second.  Each measured point runs one workload under one
renamer configuration straight through :func:`repro.uarch.processor
.simulate` — in-process, serial, no result cache — ``repeats`` times and
keeps the median, so the numbers measure the engine rather than the
batch machinery in front of it.

Entry points:

* :func:`measure_kips` — run a grid, return the report dict.
* :func:`compare_to_baseline` — regression check against a previously
  written report (the CI perf-smoke job fails on >30% regression).
* ``python -m repro bench`` — the CLI wrapper; writes
  ``BENCH_engine.json`` so the throughput trajectory is tracked in-repo.
"""

from __future__ import annotations

import json
import statistics
import time

from repro.trace.workloads import WORKLOADS
from repro.uarch.config import policy_config
from repro.uarch.processor import simulate

#: The measured renamer policies by default: the paper's baseline and
#: its proposed scheme (write-back allocation, NRR=32).  Any registry
#: policy name is accepted by ``measure_kips(schemes=...)``.
DEFAULT_SCHEMES = ("conventional", "vp-writeback")


def scheme_config(label):
    """Build the config a policy-registry name selects (KeyError with
    the registered names for a typo)."""
    return policy_config(label)


def measure_kips(workloads=None, schemes=None, instructions=30_000,
                 skip=3_000, seed=1234, repeats=3, progress=None,
                 engine=None):
    """Measure KIPS for every workload × scheme point.

    ``engine`` selects the cycle-engine tier for every point
    (``"interp"`` / ``"compiled"`` / ``"native"``; default ``None``
    keeps the config's ``"auto"``, deferring to ``REPRO_ENGINE``).
    Returns a JSON-compatible report::

        {"unit": "KIPS", "instructions": ..., "repeats": ...,
         "runs": {"swim/conventional": {"kips": ..., "seconds": ...,
                                        "committed": ..., "cycles": ...}},
         "median_kips": ..., "total_seconds": ...}
    """
    workloads = list(workloads) if workloads else sorted(WORKLOADS)
    schemes = list(schemes) if schemes else list(DEFAULT_SCHEMES)
    runs = {}
    started = time.perf_counter()
    total = len(workloads) * len(schemes)
    done = 0
    for workload in workloads:
        for label in schemes:
            config = scheme_config(label)
            if engine:
                config = config.with_(engine=engine)
            times = []
            result = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                result = simulate(config, workload=workload,
                                  max_instructions=instructions,
                                  skip=skip, seed=seed)
                times.append(time.perf_counter() - t0)
            seconds = statistics.median(times)
            runs[f"{workload}/{label}"] = {
                "kips": round(result.stats.committed / seconds / 1000, 1),
                "seconds": round(seconds, 4),
                "committed": result.stats.committed,
                "cycles": result.stats.cycles,
                "ipc": round(result.ipc, 3),
                # Port-model provenance: a point measured with the
                # register-file contention model on can never be
                # confused with (or gated against) a port-free one.
                "regfile": config.port_model(),
                # Engine provenance: codegen fallbacks on a compiled-
                # tier run mean the point silently measured the
                # interpreter — surfaced, never hidden.
                "engine_fallbacks": result.stats.engine_fallbacks,
            }
            done += 1
            if progress:
                progress(done, total, f"{workload}/{label}")
    from repro.engine.version import code_version

    return {
        "unit": "KIPS (thousand simulated instructions / second)",
        "instructions": instructions,
        "skip": skip,
        "seed": seed,
        "repeats": repeats,
        "engine": engine or "auto",
        "runs": runs,
        "median_kips": round(statistics.median(
            r["kips"] for r in runs.values()), 1),
        "total_seconds": round(time.perf_counter() - started, 2),
        # Provenance: which simulator build produced these numbers (the
        # same fingerprint that qualifies result-store keys).
        "code_version": code_version(),
    }


def measure_engines(workloads=None, schemes=None, instructions=30_000,
                    skip=3_000, seed=1234, repeats=3, progress=None,
                    engines=("interp", "compiled")):
    """Engine-tier A/B: the same grid under every tier in ``engines``.

    Returns the *last* tier's report shape (so ``format_report`` and
    baseline gating keep working) extended with the per-tier
    sub-reports and per-point speedups of the last tier over the
    first — e.g. ``engines=("interp", "compiled", "native")`` reports
    native-over-interp speedups with all three tiers' runs attached::

        {..., "engines": {"interp": {...}, "compiled": {...},
                          "native": {...}},
         "speedup": {"li/conventional": 1.81, ...},
         "median_speedup": ...}

    Speedups are *measured wall-clock ratios on this machine* —
    recorded for trend tracking, not gated in CI (the differential
    suite gates correctness; machines vary too much to gate speed).
    """
    reports = {}
    for engine in engines:
        reports[engine] = measure_kips(
            workloads=workloads, schemes=schemes, instructions=instructions,
            skip=skip, seed=seed, repeats=repeats, progress=progress,
            engine=engine)
    baseline, improved = engines[0], engines[-1]
    speedup = {
        key: round(reports[improved]["runs"][key]["kips"]
                   / max(run["kips"], 1e-9), 2)
        for key, run in reports[baseline]["runs"].items()
    }
    combined = dict(reports[improved])
    combined["engine"] = "+".join(engines)
    combined["engines"] = reports
    combined["speedup"] = speedup
    combined["median_speedup"] = round(
        statistics.median(speedup.values()), 2)
    return combined


def compare_to_baseline(report, baseline, max_regression=0.30):
    """Regression check of ``report`` against a ``baseline`` report.

    Compares the overall ``median_kips`` (per-point numbers are too noisy
    across machines); returns ``(ok, message)``.  Refuses to gate when
    the two reports measured different register-file port-model
    configurations for the same point — a port-enabled baseline is a
    different machine, not a slower one.
    """
    base = baseline.get("median_kips")
    current = report.get("median_kips")
    if not base:
        return True, "baseline has no median_kips; nothing to compare"
    for key, run in report.get("runs", {}).items():
        other = baseline.get("runs", {}).get(key)
        if other is None or "regfile" not in run or "regfile" not in other:
            continue  # point not shared, or a pre-provenance report
        if run["regfile"] != other["regfile"]:
            return False, (f"port-model mismatch on {key}: report "
                           f"{run['regfile']} vs baseline "
                           f"{other['regfile']}; not comparable")
    floor = base * (1.0 - max_regression)
    ratio = current / base
    message = (f"median {current:.1f} KIPS vs baseline {base:.1f} KIPS "
               f"({ratio:.2f}x, floor {floor:.1f})")
    return current >= floor, message


def load_report(path):
    """Read a previously written report (the baseline-gate input)."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_report(path, report):
    """Write a report as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")


def format_report(report):
    """Human-readable table of a :func:`measure_kips` (or
    :func:`measure_engines` A/B) report."""
    speedup = report.get("speedup")
    lines = [f"{'point':28s} {'KIPS':>8s} {'IPC':>6s} {'seconds':>8s}"
             + ("  speedup" if speedup else "")]
    for key in sorted(report["runs"]):
        run = report["runs"][key]
        line = (f"{key:28s} {run['kips']:8.1f} {run['ipc']:6.3f} "
                f"{run['seconds']:8.3f}")
        if speedup:
            line += f"  {speedup.get(key, 0):6.2f}x"
        lines.append(line)
    lines.append(f"{'median':28s} {report['median_kips']:8.1f}")
    if speedup:
        lines.append(f"{'median speedup':28s} "
                     f"{report['median_speedup']:7.2f}x")
    return "\n".join(lines)
