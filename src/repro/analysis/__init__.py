"""Analysis utilities: register-lifetime accounting and report formatting."""

from repro.analysis.occupancy import OccupancySampler, OccupancySeries
from repro.analysis.lifetime import (
    AllocationPolicy,
    LifetimeEvent,
    RegisterPressureModel,
    section_3_1_example,
)
from repro.analysis.reports import (
    format_table,
    geometric_mean,
    harmonic_mean,
    speedup_table,
)

__all__ = [
    "OccupancySampler",
    "OccupancySeries",
    "AllocationPolicy",
    "LifetimeEvent",
    "RegisterPressureModel",
    "section_3_1_example",
    "format_table",
    "geometric_mean",
    "harmonic_mean",
    "speedup_table",
]
