"""Plain-text report formatting for the experiment harness.

The benchmark harness prints tables shaped like the paper's: one row per
benchmark plus the harmonic mean, the aggregation the paper uses for
Table 2.
"""

from __future__ import annotations

import math


def harmonic_mean(values):
    """The paper's Table 2 aggregate (appropriate for rates like IPC)."""
    vals = list(values)
    if not vals:
        raise ValueError("harmonic mean of no values")
    if any(v <= 0 for v in vals):
        raise ValueError("harmonic mean requires positive values")
    return len(vals) / sum(1.0 / v for v in vals)


def geometric_mean(values):
    """Customary aggregate for speedups."""
    vals = list(values)
    if not vals:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(headers, rows, title=None):
    """Fixed-width table; all cells are str()-ed."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def speedup_table(benchmarks, baseline_ipc, variant_ipcs, variant_names,
                  title=None):
    """Rows of per-benchmark speedups for several variants.

    ``baseline_ipc`` and each entry of ``variant_ipcs`` map benchmark
    name -> IPC; the returned string has one row per benchmark and a
    closing harmonic-mean row, matching the paper's figures.
    """
    headers = ["benchmark"] + [f"{name}" for name in variant_names]
    rows = []
    for bench in benchmarks:
        row = [bench]
        for ipcs in variant_ipcs:
            row.append(f"{ipcs[bench] / baseline_ipc[bench]:.3f}")
        rows.append(row)
    hm_base = harmonic_mean(baseline_ipc[b] for b in benchmarks)
    hm_row = ["hmean"]
    for ipcs in variant_ipcs:
        hm = harmonic_mean(ipcs[b] for b in benchmarks)
        hm_row.append(f"{hm / hm_base:.3f}")
    rows.append(hm_row)
    return format_table(headers, rows, title=title)
