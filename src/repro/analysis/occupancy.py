"""Time-series sampling of machine occupancy.

The register-pressure argument of the paper is fundamentally about
*occupancy over time*: how many physical registers are allocated at
each instant, and how deep the useful window is.  This module attaches
a sampler to a processor and produces summary statistics and a coarse
text sparkline — useful both for the examples and for diagnosing
workload calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.registers import RegClass


@dataclass
class OccupancySeries:
    """Sampled per-cycle machine occupancy."""

    interval: int
    int_regs: list = field(default_factory=list)
    fp_regs: list = field(default_factory=list)
    rob: list = field(default_factory=list)

    def _summary(self, series):
        if not series:
            return {"min": 0, "mean": 0.0, "max": 0, "p95": 0}
        ordered = sorted(series)
        p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
        return {
            "min": ordered[0],
            "mean": sum(series) / len(series),
            "max": ordered[-1],
            "p95": p95,
        }

    def summary(self):
        """Min/mean/p95/max for each sampled quantity."""
        return {
            "int_regs": self._summary(self.int_regs),
            "fp_regs": self._summary(self.fp_regs),
            "rob": self._summary(self.rob),
        }

    def sparkline(self, series_name="fp_regs", width=60, ceiling=None):
        """A coarse text plot of one series."""
        series = getattr(self, series_name)
        if not series:
            return "(empty)"
        ceiling = ceiling or max(series) or 1
        glyphs = " .:-=+*#%@"
        step = max(1, len(series) // width)
        buckets = [
            max(series[i:i + step]) for i in range(0, len(series), step)
        ]
        chars = []
        for value in buckets[:width]:
            idx = min(len(glyphs) - 1,
                      int(value / ceiling * (len(glyphs) - 1)))
            chars.append(glyphs[idx])
        return "".join(chars)


class OccupancySampler:
    """Samples a processor's occupancy every ``interval`` cycles."""

    def __init__(self, interval=16):
        if interval < 1:
            raise ValueError("sampling interval must be at least 1 cycle")
        self.interval = interval
        self.series = OccupancySeries(interval=interval)

    @classmethod
    def attach(cls, processor, interval=16):
        """Wrap the processor's cycle loop; returns the sampler."""
        sampler = cls(interval=interval)
        orig_step = processor._step

        def sampling_step():
            orig_step()
            if processor.now % sampler.interval == 0:
                renamer = processor.renamer
                sampler.series.int_regs.append(
                    renamer.allocated_physical(RegClass.INT))
                sampler.series.fp_regs.append(
                    renamer.allocated_physical(RegClass.FP))
                sampler.series.rob.append(len(processor.rob))

        processor._step = sampling_step
        return sampler
