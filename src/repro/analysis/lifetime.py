"""Register-lifetime accounting — the paper's §3.1 analytical model.

The paper motivates late allocation with a 4-instruction example::

    load f2,0(r6)     # 20-cycle cache miss
    fdiv f2,f2,f10    # 20 cycles
    fmul f2,f2,f12    # 10 cycles
    fadd f2,f2,1      #  5 cycles

Under decode-stage allocation the three dependent instructions hold
their physical registers for 42/52/57 cycles; under write-back
allocation for only 21/11/6 (a 75% reduction of register pressure,
measured as allocated register-cycles); under issue allocation 41/31/16
(a 42% reduction).  :func:`section_3_1_example` reproduces those exact
numbers, and :class:`RegisterPressureModel` generalizes the computation
to any schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class AllocationPolicy(Enum):
    """When the destination's physical register is allocated."""

    DECODE = "decode"
    ISSUE = "issue"
    WRITEBACK = "writeback"


@dataclass(frozen=True)
class LifetimeEvent:
    """The schedule of one instruction, in absolute cycles.

    ``decode``: cycle the instruction is renamed.
    ``issue``: cycle it leaves the instruction queue.
    ``complete``: cycle its execution finishes (result available).
    ``release``: cycle its physical register is freed (= the commit of
    the next instruction writing the same logical register).
    """

    name: str
    decode: int
    issue: int
    complete: int
    release: int

    def __post_init__(self):
        if not self.decode <= self.issue <= self.complete <= self.release:
            raise ValueError(
                f"{self.name}: schedule must satisfy decode <= issue <= "
                "complete <= release"
            )

    def allocation_cycle(self, policy):
        if policy is AllocationPolicy.DECODE:
            return self.decode
        if policy is AllocationPolicy.ISSUE:
            return self.issue
        return self.complete

    def held_cycles(self, policy):
        """How long the physical register stays allocated under ``policy``."""
        return self.release - self.allocation_cycle(policy)


class RegisterPressureModel:
    """Aggregate register pressure of a set of lifetimes.

    Pressure is the paper's metric: "the sum of the number of cycles
    that a register is allocated for each produced value".
    """

    def __init__(self, events):
        self.events = list(events)
        if not self.events:
            raise ValueError("need at least one lifetime event")

    def pressure(self, policy):
        return sum(e.held_cycles(policy) for e in self.events)

    def reduction_vs_decode(self, policy):
        """Fractional pressure reduction of ``policy`` vs. decode allocation."""
        base = self.pressure(AllocationPolicy.DECODE)
        return 1.0 - self.pressure(policy) / base

    def per_instruction(self, policy):
        return {e.name: e.held_cycles(policy) for e in self.events}


def section_3_1_example():
    """The paper's worked example as a :class:`RegisterPressureModel`.

    Timeline (paper §3.1): the four instructions decode at cycle 0; the
    load starts at cycle 1 and misses (20 cycles); fdiv/fmul/fadd issue
    as soon as their operand arrives and commit the cycle after
    completing, releasing the previous register:

    * p1 (load): complete 21, released by fdiv's commit at 42,
    * p2 (fdiv): issue 21, complete 41, released by fmul's commit at 52,
    * p3 (fmul): issue 41, complete 51, released by fadd's commit at 57,
    * p4 (fadd): issue 51, complete 56 — the paper leaves its release
      open (the next writer of f2 is outside the example), so only
      p1..p3 enter the pressure sums: 42+52+57 = 151 register-cycles at
      decode allocation, 21+11+6 = 38 at write-back (-75%), and
      41+31+16 = 88 at issue allocation (-42%).
    """
    events = [
        LifetimeEvent("load", decode=0, issue=1, complete=21, release=42),
        LifetimeEvent("fdiv", decode=0, issue=21, complete=41, release=52),
        LifetimeEvent("fmul", decode=0, issue=41, complete=51, release=57),
    ]
    return RegisterPressureModel(events)
