"""Miss Status Holding Registers for the lockup-free cache.

Kroft's lockup-free organization [7] lets the cache keep servicing
accesses while misses are outstanding.  Each MSHR tracks one in-flight
line; a second miss to the same line merges into the existing entry (no
new bus transaction), and misses to new lines are rejected when all
MSHRs are busy (the access retries a later cycle).

Entries expire lazily through a min-heap of fill times: a blocked load
re-probes the MSHR file every cycle of an MSHR-full stall, so expiry
must not rescan the whole file per probe.
"""

from __future__ import annotations

from heapq import heappop, heappush


class MSHRFile:
    """Fixed-size set of in-flight line fills, keyed by line address."""

    def __init__(self, entries=8):
        if entries <= 0:
            raise ValueError("MSHR file needs at least one entry")
        self.entries = entries
        self._pending = {}  # line address -> fill completion cycle
        self._expiry = []  # heap of (fill cycle, line); may hold stale pairs
        self.allocations = 0
        self.merges = 0
        self.rejections = 0

    def _expire(self, now):
        heap = self._expiry
        if not heap or heap[0][0] > now:
            return
        pending = self._pending
        while heap and heap[0][0] <= now:
            fill, line = heappop(heap)
            # A stale pair (the line expired earlier and was re-allocated
            # with a newer fill time) must not evict the live entry.
            if pending.get(line) == fill:
                del pending[line]

    def lookup(self, line, now):
        """Return the pending fill time for ``line``, or None."""
        self._expire(now)
        fill = self._pending.get(line)
        if fill is not None:
            self.merges += 1
        return fill

    def has_room(self, now):
        """Can a new miss be accepted at cycle ``now``?"""
        self._expire(now)
        if len(self._pending) >= self.entries:
            self.rejections += 1
            return False
        return True

    def allocate(self, line, now, fill_time):
        """Register a new in-flight fill; check :meth:`has_room` first."""
        self._expire(now)
        if line in self._pending:
            raise ValueError(f"line {line:#x} already has an MSHR")
        if len(self._pending) >= self.entries:
            raise RuntimeError("MSHR allocate without room; call has_room first")
        self._pending[line] = fill_time
        heappush(self._expiry, (fill_time, line))
        self.allocations += 1

    def next_fill_time(self, now):
        """Earliest cycle at which a pending fill completes, or None.

        While the file is full, this is the first cycle at which a
        rejected miss could be accepted again — the pipeline uses it to
        sleep rejected loads instead of re-probing every cycle.
        """
        self._expire(now)
        heap = self._expiry
        pending = self._pending
        while heap:
            fill, line = heap[0]
            if pending.get(line) != fill:
                heappop(heap)  # stale pair left by a lazy expiry
                continue
            return fill
        return None

    def occupancy(self, now):
        """Number of live entries at cycle ``now``."""
        self._expire(now)
        return len(self._pending)
