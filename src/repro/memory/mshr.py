"""Miss Status Holding Registers for the lockup-free cache.

Kroft's lockup-free organization [7] lets the cache keep servicing
accesses while misses are outstanding.  Each MSHR tracks one in-flight
line; a second miss to the same line merges into the existing entry (no
new bus transaction), and misses to new lines are rejected when all
MSHRs are busy (the access retries a later cycle).
"""

from __future__ import annotations


class MSHRFile:
    """Fixed-size set of in-flight line fills, keyed by line address."""

    def __init__(self, entries=8):
        if entries <= 0:
            raise ValueError("MSHR file needs at least one entry")
        self.entries = entries
        self._pending = {}  # line address -> fill completion cycle
        self.allocations = 0
        self.merges = 0
        self.rejections = 0

    def _expire(self, now):
        if not self._pending:
            return
        done = [line for line, t in self._pending.items() if t <= now]
        for line in done:
            del self._pending[line]

    def lookup(self, line, now):
        """Return the pending fill time for ``line``, or None."""
        self._expire(now)
        fill = self._pending.get(line)
        if fill is not None:
            self.merges += 1
        return fill

    def has_room(self, now):
        """Can a new miss be accepted at cycle ``now``?"""
        self._expire(now)
        if len(self._pending) >= self.entries:
            self.rejections += 1
            return False
        return True

    def allocate(self, line, now, fill_time):
        """Register a new in-flight fill; check :meth:`has_room` first."""
        self._expire(now)
        if line in self._pending:
            raise ValueError(f"line {line:#x} already has an MSHR")
        if len(self._pending) >= self.entries:
            raise RuntimeError("MSHR allocate without room; call has_room first")
        self._pending[line] = fill_time
        self.allocations += 1

    def occupancy(self, now):
        """Number of live entries at cycle ``now``."""
        self._expire(now)
        return len(self._pending)
