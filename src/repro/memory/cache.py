"""Lockup-free L1 data cache.

Direct-mapped, 16 KB, 32-byte lines, 2-cycle hit, 50-cycle miss penalty,
up to 8 outstanding misses to distinct lines, infinite L2 behind a shared
bus.  This matches the paper's §4.1 configuration, which was chosen "to
stress the penalties caused by the cache memory".

Stores are write-allocate.  A store miss consumes an MSHR and a bus slot
when one is available so that store traffic contends with loads, but the
pipeline never waits for a store fill (an idealized write buffer absorbs
it); when every MSHR is busy the store installs its line without a timed
fill.  This keeps commit non-blocking, which is the behaviour the paper's
timing discussion assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.bus import Bus
from repro.memory.mshr import MSHRFile


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of the L1 data cache."""

    size_bytes: int = 16 * 1024
    line_bytes: int = 32
    hit_latency: int = 2
    miss_penalty: int = 50
    mshr_entries: int = 8
    bus_cycles_per_line: int = 4

    def __post_init__(self):
        if self.size_bytes % self.line_bytes:
            raise ValueError("cache size must be a whole number of lines")
        n = self.size_bytes // self.line_bytes
        if n & (n - 1):
            raise ValueError("number of lines must be a power of two")
        if self.hit_latency < 1 or self.miss_penalty < 1:
            raise ValueError("latencies must be at least 1 cycle")

    @property
    def num_lines(self):
        """Direct-mapped line count (``size_bytes / line_bytes``)."""
        return self.size_bytes // self.line_bytes


class LockupFreeCache:
    """Direct-mapped cache with MSHR-based miss handling."""

    def __init__(self, config=None):
        self.config = config or CacheConfig()
        cfg = self.config
        self._num_lines = cfg.num_lines
        self._tags = [-1] * self._num_lines  # -1 = invalid
        self.mshrs = MSHRFile(cfg.mshr_entries)
        self.bus = Bus(cfg.bus_cycles_per_line)
        self.loads = 0
        self.load_misses = 0
        self.stores = 0
        self.store_misses = 0
        self.mshr_stalls = 0

    def _line_of(self, addr):
        return addr // self.config.line_bytes

    def _probe(self, line):
        index = line % self._num_lines
        return self._tags[index] == line

    def _install(self, line):
        self._tags[line % self._num_lines] = line

    def load(self, addr, now):
        """Timed load access at cycle ``now``.

        Returns the cycle at which the data is available, or ``None`` when
        the access cannot be handled this cycle (all MSHRs busy with other
        lines) and must retry.
        """
        cfg = self.config
        line = self._line_of(addr)
        self.loads += 1
        # The fill in flight is checked before the tag array: the tag is
        # installed when the MSHR is allocated, but the data only exists
        # once the fill completes.
        pending = self.mshrs.lookup(line, now)
        if pending is not None:
            # Secondary miss: merge into the in-flight fill.
            self.load_misses += 1
            return max(pending, now + cfg.hit_latency)
        if self._probe(line):
            return now + cfg.hit_latency
        self.load_misses += 1
        if not self.mshrs.has_room(now):
            # Reject before touching the bus: a rejected access must not
            # consume bandwidth, or per-cycle retries would push the bus
            # arbitrarily far into the future (a livelock).
            self.mshr_stalls += 1
            self.loads -= 1
            self.load_misses -= 1
            return None
        fill = self.bus.schedule_fill(now, cfg.miss_penalty)
        self.mshrs.allocate(line, now, fill)
        self._install(line)  # tag installed; timing gated by the MSHR
        return fill

    def store(self, addr, now):
        """Store performed at commit.  Never blocks; returns fill time or now."""
        cfg = self.config
        line = self._line_of(addr)
        self.stores += 1
        pending = self.mshrs.lookup(line, now)
        if pending is not None:
            self.store_misses += 1
            return pending
        if self._probe(line):
            return now + 1
        self.store_misses += 1
        if not self.mshrs.has_room(now):
            # Write buffer absorbs the miss without an MSHR; install the
            # line so locality is preserved, charge no further timing.
            self._install(line)
            return now + 1
        fill = self.bus.schedule_fill(now, cfg.miss_penalty)
        self.mshrs.allocate(line, now, fill)
        self._install(line)
        return fill

    def warm(self, addresses):
        """Pre-install lines (used for warm-up and deterministic tests)."""
        for addr in addresses:
            self._install(self._line_of(addr))

    def warm_address(self, addr):
        """Pre-install the line holding one address (warm-up hot path)."""
        line = addr // self.config.line_bytes
        self._tags[line % self._num_lines] = line

    def contains(self, addr):
        """True when the line holding ``addr`` is resident (for tests)."""
        return self._probe(self._line_of(addr))

    @property
    def load_miss_ratio(self):
        if self.loads == 0:
            return 0.0
        return self.load_misses / self.loads
