"""Memory hierarchy substrate.

The paper's data memory system:

* lockup-free L1 data cache (Kroft-style) with up to 8 pending misses to
  different lines,
* 16 KB, direct-mapped, 32-byte lines,
* 2-cycle hit latency, 50-cycle miss penalty,
* infinite L2 behind a 64-bit bus (a line transfer occupies the bus for
  4 cycles),
* 3 cache ports,
* PA-8000-style memory disambiguation (store queue with address-based
  conflict detection and store-to-load forwarding).
"""

from repro.memory.bus import Bus
from repro.memory.mshr import MSHRFile
from repro.memory.cache import CacheConfig, LockupFreeCache
from repro.memory.disambiguation import StoreQueue, LoadOutcome
from repro.memory.memory_system import MemorySystem

__all__ = [
    "Bus",
    "MSHRFile",
    "CacheConfig",
    "LockupFreeCache",
    "StoreQueue",
    "LoadOutcome",
    "MemorySystem",
]
