"""L1-L2 bus model.

The paper: "a 64-bit data bus between L1 and L2 is considered (i.e., a
line transaction occupies the bus during four cycles)" for 32-byte lines.

A line fill requested at cycle *t* would, on an uncontended bus, complete
at ``t + miss_penalty`` with the transfer occupying the last
``cycles_per_line`` bus cycles.  Contention pushes the transfer (and the
fill completion) later; transfers are serviced in request order.
"""

from __future__ import annotations


class Bus:
    """Serializes line transfers between the L1 and the (infinite) L2."""

    def __init__(self, cycles_per_line=4):
        if cycles_per_line <= 0:
            raise ValueError("cycles_per_line must be positive")
        self.cycles_per_line = cycles_per_line
        self._free_at = 0  # first cycle the bus is idle again
        self.transfers = 0
        self.busy_cycles = 0

    def schedule_fill(self, request_time, memory_latency):
        """Reserve the bus for one line fill; return the fill-complete cycle.

        ``memory_latency`` is the full uncontended miss penalty (50 cycles
        in the paper's configuration); the transfer occupies the bus for
        the trailing ``cycles_per_line`` cycles of that window, or later
        if the bus is still busy with earlier fills.
        """
        earliest_start = request_time + memory_latency - self.cycles_per_line
        start = max(earliest_start, self._free_at)
        finish = start + self.cycles_per_line
        self._free_at = finish
        self.transfers += 1
        self.busy_cycles += self.cycles_per_line
        return finish

    @property
    def free_at(self):
        """First cycle at which the bus has no scheduled transfer."""
        return self._free_at
