"""Facade tying cache, store queue, and cache-port arbitration together.

The paper's machine has "three cache memory ports"; loads (at access
time) and committing stores share them.  The pipeline asks the memory
system for a port each cycle; the counter resets when the cycle advances.
"""

from __future__ import annotations

from repro.memory.cache import CacheConfig, LockupFreeCache
from repro.memory.disambiguation import LoadOutcome, StoreQueue


class MemorySystem:
    """Per-cycle interface used by the out-of-order pipeline."""

    def __init__(self, cache_config=None, ports=3, store_queue_capacity=None):
        if ports <= 0:
            raise ValueError("need at least one cache port")
        self.cache = LockupFreeCache(cache_config or CacheConfig())
        self.store_queue = StoreQueue(store_queue_capacity)
        self.ports = ports
        self._port_cycle = -1
        self._ports_used = 0
        self.port_conflicts = 0
        #: why the most recent :meth:`try_load` returned None:
        #: "disambiguation", "port", or "mshr".
        self.last_refusal = None

    def _port_available(self, now):
        if now != self._port_cycle:
            self._port_cycle = now
            self._ports_used = 0
        return self._ports_used < self.ports

    def _take_port(self, now):
        self._ports_used += 1

    def try_load(self, seq, addr, now):
        """Attempt a load access at cycle ``now``.

        Returns the data-ready cycle, or ``None`` when the load must retry
        (disambiguation wait, no port, or MSHRs exhausted).
        """
        outcome, ready = self.store_queue.check_load(seq, addr, now)
        if outcome is LoadOutcome.WAIT:
            self.last_refusal = "disambiguation"
            return None
        if outcome is LoadOutcome.FORWARD:
            # Forwarding moves data inside the load/store unit; it costs
            # the hit latency but no cache port.
            return now + self.cache.config.hit_latency
        if not self._port_available(now):
            self.port_conflicts += 1
            self.last_refusal = "port"
            return None
        done = self.cache.load(addr, now)
        if done is None:
            self.last_refusal = "mshr"
            return None  # MSHRs full; port not consumed for a dead access
        self._take_port(now)
        return done

    def try_store_commit(self, addr, now):
        """Perform a committing store's cache write.

        Returns True when a port was available (the write happened);
        False asks the commit stage to retry next cycle.
        """
        if not self._port_available(now):
            self.port_conflicts += 1
            return False
        self._take_port(now)
        self.cache.store(addr, now)
        return True
