"""Memory disambiguation: the store queue.

The paper assumes "the memory disambiguation scheme implemented in the
PA-8000".  The PA-8000 keeps an address-reorder buffer: a load may access
the cache only once the addresses of all older stores are known; if an
older store to the same location exists, the load obtains the value from
the store (store-to-load forwarding) instead of the cache.

We model that policy at 8-byte word granularity:

* a load whose older stores include one with an *unknown* address waits,
* a load matching an older, address-known store forwards from it with the
  cache hit latency once the store's data is ready,
* otherwise the load proceeds to the cache.
"""

from __future__ import annotations

from collections import deque
from enum import Enum, auto

WORD_BYTES = 8


class LoadOutcome(Enum):
    """Result of a disambiguation check for a load."""

    WAIT = auto()  # an older store address is unknown (or data not ready)
    FORWARD = auto()  # value obtained from an older matching store
    ACCESS_CACHE = auto()  # safe to go to memory


class _StoreEntry:
    __slots__ = ("seq", "addr_known", "word", "data_ready_time")

    def __init__(self, seq):
        self.seq = seq
        self.addr_known = False
        self.word = -1
        self.data_ready_time = None  # None = value not yet produced


class StoreQueue:
    """Age-ordered queue of in-flight stores, keyed by global sequence."""

    def __init__(self, capacity=None):
        self.capacity = capacity
        self._entries = deque()  # kept in age order (ascending seq)
        self._by_seq = {}
        # Seqs inserted with an unknown address, oldest first; entries
        # whose address has since become known (or that were removed) are
        # discarded lazily when they reach the front.  This makes the
        # dominant disambiguation outcome — "an older store's address is
        # unknown, wait" — an O(1) check instead of a queue scan, which
        # matters because blocked loads re-check every cycle.
        self._unknown = deque()
        self.forwards = 0
        self.waits = 0

    def __len__(self):
        return len(self._entries)

    @property
    def full(self):
        return self.capacity is not None and len(self._entries) >= self.capacity

    def insert(self, seq):
        """Add a store at dispatch; address/data arrive later."""
        if self.full:
            raise RuntimeError("store queue overflow")
        if self._entries and self._entries[-1].seq >= seq:
            raise ValueError("stores must be inserted in age order")
        entry = _StoreEntry(seq)
        self._entries.append(entry)
        self._by_seq[seq] = entry
        self._unknown.append(seq)
        return entry

    def set_address(self, seq, addr):
        """Record the store's effective address (after EA computation)."""
        entry = self._by_seq[seq]
        entry.addr_known = True
        entry.word = addr // WORD_BYTES

    def set_data_ready(self, seq, when):
        """Record the cycle at which the store's data value is available."""
        self._by_seq[seq].data_ready_time = when

    def remove(self, seq):
        """Drop the store (at commit, or when squashed by recovery)."""
        entry = self._by_seq.pop(seq)
        entries = self._entries
        if entries and entries[0] is entry:
            entries.popleft()  # commits retire stores oldest-first
        else:
            entries.remove(entry)

    def remove_younger_than(self, seq):
        """Recovery: drop every store younger than ``seq``."""
        doomed = [e for e in self._entries if e.seq > seq]
        for entry in doomed:
            del self._by_seq[entry.seq]
        self._entries = deque(e for e in self._entries if e.seq <= seq)
        return len(doomed)

    def oldest_unknown_seq(self):
        """Seq of the oldest store whose address is unknown, or None.

        A load younger than this store cannot disambiguate this cycle,
        whatever its address — the pipeline uses that to cut short its
        per-cycle scan of blocked loads.
        """
        return self._oldest_unknown()

    def _oldest_unknown(self):
        """Seq of the oldest store with an unknown address, or None."""
        unknown = self._unknown
        by_seq = self._by_seq
        while unknown:
            seq = unknown[0]
            entry = by_seq.get(seq)
            if entry is None or entry.addr_known:
                unknown.popleft()  # resolved or removed; discard lazily
                continue
            return seq
        return None

    def check_load(self, load_seq, addr, now):
        """Disambiguate a load against all older stores.

        Returns ``(outcome, ready_time)``; ``ready_time`` is only
        meaningful for ``FORWARD`` (cycle at which the forwarded value can
        be consumed, excluding the forwarding latency itself).
        """
        if not self._entries:
            return LoadOutcome.ACCESS_CACHE, None
        # Fast path: the scan below would stop at the first older store
        # with an unknown address, so resolve that test in O(1).
        oldest_unknown = self._oldest_unknown()
        if oldest_unknown is not None and oldest_unknown < load_seq:
            self.waits += 1
            return LoadOutcome.WAIT, None
        word = addr // WORD_BYTES
        match = None
        for entry in self._entries:
            if entry.seq >= load_seq:
                break
            if entry.word == word:
                match = entry  # youngest older match wins
        if match is None:
            return LoadOutcome.ACCESS_CACHE, None
        if match.data_ready_time is None or match.data_ready_time > now:
            self.waits += 1
            return LoadOutcome.WAIT, None
        self.forwards += 1
        return LoadOutcome.FORWARD, match.data_ready_time
