"""Observability: metrics registry, trace spans, and profiling hooks.

The ``repro.obs`` package is the stdlib-only telemetry layer shared by
the engine, executors, and service:

* :mod:`repro.obs.metrics` — process-wide :class:`MetricsRegistry`
  (counters / gauges / histograms with labels) rendered as Prometheus
  text at ``GET /v1/metrics`` and as JSON at ``/v1/metrics.json``;
* :mod:`repro.obs.tracing` — trace ids minted at job submission and
  propagated through the queue, engine, remote chunks, and the worker
  wire protocol, with spans appended as JSONL under
  ``REPRO_CACHE_DIR/telemetry/``;
* :mod:`repro.obs.profile` — opt-in (``REPRO_PROFILE``) KIPS and
  stall-composition capture that never perturbs golden stats;
* :mod:`repro.obs.health` — the engine-tier availability probe shared
  by ``repro engines`` and ``/v1/healthz``.

See ``docs/observability.md`` for the metric catalog, span schema,
and dashboard walkthrough.
"""

from repro.obs.health import engine_tier_report
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    get_registry,
)
from repro.obs.profile import (
    attach_profile,
    build_profile,
    profiling_enabled,
)
from repro.obs.tracing import (
    SpanLog,
    current_trace,
    new_trace_id,
    read_spans,
    record_span,
    telemetry_dir,
    telemetry_enabled,
    telemetry_stats,
    trace_context,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanLog",
    "attach_profile",
    "build_profile",
    "current_trace",
    "engine_tier_report",
    "escape_label_value",
    "get_registry",
    "new_trace_id",
    "profiling_enabled",
    "read_spans",
    "record_span",
    "telemetry_dir",
    "telemetry_enabled",
    "telemetry_stats",
    "trace_context",
]
