"""Engine-tier health probing shared by the CLI and the gateway.

``repro engines`` and ``GET /v1/healthz`` answer the same question —
which cycle-engine tiers can this host run? — so both call
:func:`engine_tier_report` and render it their own way.  Load
balancers use the healthz form to route native-capable workers.
"""

from __future__ import annotations

__all__ = ["engine_tier_report"]


def engine_tier_report():
    """Probe cycle-engine tier availability on this host.

    Returns ``{"interp", "compiled", "native", "resolved_auto"}``:
    the interpreter and compiled tiers are always available (pure
    Python), the native tier depends on a C toolchain and a writable
    artifact dir, and ``resolved_auto`` is the tier ``engine="auto"``
    picks here.
    """
    from repro.uarch import compiled, native

    return {
        "interp": {"available": True},
        "compiled": {"available": True, "cache": compiled.cache_info()},
        "native": dict(native.probe(),
                       artifacts=native.artifact_stats()),
        "resolved_auto": compiled.resolve_engine("auto"),
    }
