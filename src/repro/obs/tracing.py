"""Trace spans for the distributed stack, persisted as JSONL.

A *trace id* is minted where work enters the system — ``POST
/v1/jobs`` or ``repro sweep --trace`` — and rides along through the
JobQueue, :meth:`BatchEngine.run_specs_iter`, RemoteExecutor chunk
dispatch, and the worker TCP protocol (an optional, version-tolerant
``trace`` wire field).  Each layer appends *span* records —
``queue`` / ``dispatch`` / ``chunk`` / ``run`` / ``store`` phases with
durations, outcome, and engine tier — to JSONL segments under
``REPRO_CACHE_DIR/telemetry/``.

Writes use the same torn-line-free discipline as the result store:
one ``os.write`` per record to an ``O_APPEND`` descriptor, one
segment per writer (``spans-<host>-<pid>-<token>.jsonl``), so
concurrent workers never interleave partial lines.

In-process propagation is a thread-local (:func:`trace_context` /
:func:`current_trace`); cross-process propagation is explicit via the
wire field.  ``REPRO_TELEMETRY=0`` disables span recording entirely.

Span record schema (one JSON object per line)::

    {"trace": "...", "span": "...", "parent": "..." | null,
     "phase": "queue|dispatch|chunk|run|store", "name": "...",
     "host": "...", "pid": 123, "start": <epoch s>, "dur": <s>,
     "outcome": "ok|error|...", "attrs": {...}}
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid

__all__ = [
    "SpanLog",
    "current_trace",
    "new_trace_id",
    "read_spans",
    "record_span",
    "telemetry_dir",
    "telemetry_enabled",
    "telemetry_stats",
    "trace_context",
]

SPAN_PHASES = ("queue", "dispatch", "chunk", "run", "store")

_local = threading.local()
_logs_lock = threading.Lock()
_logs = {}


def new_trace_id():
    """Mint a fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def new_span_id():
    """Mint a fresh 16-hex-char span id."""
    return uuid.uuid4().hex[:16]


def current_trace():
    """The thread's active trace id, or ``None`` outside any trace."""
    return getattr(_local, "trace", None)


class trace_context:
    """Context manager binding a trace id to the current thread.

    ``with trace_context(trace_id): ...`` makes :func:`current_trace`
    return ``trace_id`` inside the block (restoring the previous value
    on exit).  A ``None`` id is a no-op passthrough so call sites can
    wrap unconditionally.
    """

    def __init__(self, trace_id):
        self.trace_id = trace_id
        self._prev = None

    def __enter__(self):
        """Bind the trace id; returns it for convenience."""
        self._prev = getattr(_local, "trace", None)
        if self.trace_id is not None:
            _local.trace = self.trace_id
        return self.trace_id

    def __exit__(self, *exc):
        """Restore the previously bound trace id."""
        _local.trace = self._prev
        return False


def telemetry_enabled():
    """Whether span recording is on (``REPRO_TELEMETRY`` != 0/false/off)."""
    value = os.environ.get("REPRO_TELEMETRY", "1").strip().lower()
    return value not in ("0", "false", "off", "no")


def telemetry_dir(directory=None):
    """The telemetry directory: ``<cache-dir>/telemetry``.

    ``directory`` overrides the base cache dir (tests point it at a
    tmpdir).  Imported lazily from the store module to keep
    ``repro.obs`` importable from anywhere in the engine without
    cycles.
    """
    if directory is None:
        from repro.engine.store import default_cache_dir
        directory = default_cache_dir()
    return os.path.join(str(directory), "telemetry")


class SpanLog:
    """Append-only JSONL span writer with torn-line-free appends.

    One segment per writer process (``spans-<host>-<pid>-<tok>.jsonl``)
    opened ``O_APPEND``; each span is serialised to one line and
    written with a single ``os.write``, so concurrent writers sharing
    a directory never interleave partial records.  I/O failures flip a
    best-effort ``broken`` flag and spans are dropped silently —
    telemetry must never take down the run it observes.
    """

    def __init__(self, directory):
        self.directory = str(directory)
        self.broken = False
        self._fd = None
        self._lock = threading.Lock()
        self._host = socket.gethostname().split(".")[0]
        self._path = os.path.join(
            self.directory,
            "spans-%s-%d-%s.jsonl"
            % (self._host, os.getpid(), uuid.uuid4().hex[:6]))

    def _ensure_fd(self):
        if self._fd is None:
            os.makedirs(self.directory, exist_ok=True)
            self._fd = os.open(
                self._path,
                os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        return self._fd

    def append(self, record):
        """Append one span record; silently drops on I/O failure."""
        if self.broken:
            return
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        try:
            with self._lock:
                os.write(self._ensure_fd(), data)
        except OSError:
            self.broken = True

    def close(self):
        """Close the segment descriptor (reopened lazily if reused)."""
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:
                    pass
                self._fd = None


def _log_for(directory):
    with _logs_lock:
        log = _logs.get(directory)
        if log is None:
            log = _logs[directory] = SpanLog(directory)
        return log


def record_span(phase, name, start, duration, trace=None, parent=None,
                outcome="ok", attrs=None, directory=None):
    """Record one span to the telemetry directory.

    ``trace`` defaults to the thread's :func:`current_trace`; if both
    are ``None`` (or telemetry is disabled) the span is dropped — an
    untraced run writes nothing.  Returns the span id, or ``None``
    when dropped.  Span logs are cached per resolved directory so
    tests that repoint ``REPRO_CACHE_DIR`` get fresh segments.
    """
    if not telemetry_enabled():
        return None
    trace = trace if trace is not None else current_trace()
    if trace is None:
        return None
    span_id = new_span_id()
    record = {
        "trace": str(trace),
        "span": span_id,
        "parent": parent,
        "phase": str(phase),
        "name": str(name),
        "host": socket.gethostname().split(".")[0],
        "pid": os.getpid(),
        "start": round(float(start), 6),
        "dur": round(float(duration), 6),
        "outcome": str(outcome),
        "attrs": dict(attrs or {}),
    }
    _log_for(telemetry_dir(directory)).append(record)
    return span_id


def read_spans(directory=None, trace=None):
    """Read span records from every segment in the telemetry dir.

    Corrupt or torn lines are skipped (count them via
    :func:`telemetry_stats`); ``trace`` filters to one trace id.
    Records are returned sorted by start time.
    """
    directory = telemetry_dir(directory)
    spans = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return spans
    for fname in names:
        if not (fname.startswith("spans-")
                and fname.endswith(".jsonl")):
            continue
        try:
            with open(os.path.join(directory, fname), "r",
                      encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if not isinstance(record, dict):
                        continue
                    if trace is not None and record.get("trace") != trace:
                        continue
                    spans.append(record)
        except OSError:
            continue
    spans.sort(key=lambda r: (r.get("start", 0), r.get("span", "")))
    return spans


def telemetry_stats(directory=None):
    """On-disk footprint of the telemetry directory.

    Returns ``{"directory", "segments", "bytes", "spans", "corrupt"}``
    — the shape ``repro cache stats`` folds into its report.
    """
    directory = telemetry_dir(directory)
    stats = {"directory": directory, "segments": 0, "bytes": 0,
             "spans": 0, "corrupt": 0}
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return stats
    for fname in names:
        if not (fname.startswith("spans-")
                and fname.endswith(".jsonl")):
            continue
        path = os.path.join(directory, fname)
        try:
            stats["bytes"] += os.path.getsize(path)
            stats["segments"] += 1
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    if not line.strip():
                        continue
                    try:
                        json.loads(line)
                        stats["spans"] += 1
                    except ValueError:
                        stats["corrupt"] += 1
        except OSError:
            continue
    return stats
