"""Opt-in engine profiling: KIPS and per-stage stall composition.

``REPRO_PROFILE=1`` (or ``--profile`` on ``repro run``/``repro sweep``)
makes the executor attach a ``profile`` dict to each
:class:`SimResult`'s ``extra`` — wall-clock elapsed time, simulated
KIPS (thousand committed instructions per wall second), and the
rename-stall composition as absolute counts plus fractions of total
cycles, all derived from counters :class:`SimStats` already keeps.

Profiling is **off by default and bit-identical when off**: with
``REPRO_PROFILE`` unset nothing touches the result, and even when on,
only ``extra["profile"]`` changes — ``SimStats`` is never written to,
and the result store strips the ``profile`` key before persisting so
cached records are byte-identical either way.  The golden suites
enforce this across the interpreted, compiled, and native tiers.
"""

from __future__ import annotations

import os

__all__ = ["attach_profile", "build_profile", "profiling_enabled"]

#: SimStats counters folded into the stall-composition report.
STALL_FIELDS = ("stall_rob_full", "stall_iq_full", "stall_no_reg",
                "stall_sq_full", "fetch_stall_cycles",
                "rf_read_stalls", "rf_bank_conflicts")


def profiling_enabled():
    """Whether profile capture is on (``REPRO_PROFILE`` truthy)."""
    value = os.environ.get("REPRO_PROFILE", "").strip().lower()
    return value not in ("", "0", "false", "off", "no")


def build_profile(result, elapsed):
    """Build the profile dict for one run.

    ``elapsed`` is host wall-clock seconds for the simulation call.
    Reads ``result.stats`` counters only; never mutates the result.
    """
    stats = result.stats
    cycles = stats.cycles or 0
    profile = {
        "elapsed": round(float(elapsed), 6),
        "kips": round(stats.committed / elapsed / 1e3, 3)
        if elapsed > 0 else 0.0,
        "cycles": cycles,
        "committed": stats.committed,
        "squashes": stats.squashes,
        "engine_fallbacks": stats.engine_fallbacks,
        "stalls": {},
    }
    for name in STALL_FIELDS:
        count = getattr(stats, name, 0)
        profile["stalls"][name] = {
            "count": count,
            "frac": round(count / cycles, 6) if cycles else 0.0,
        }
    return profile


def attach_profile(result, elapsed):
    """Attach a profile to ``result.extra`` when profiling is enabled.

    No-op (and no allocation) when ``REPRO_PROFILE`` is off, keeping
    the default path bit-identical.  Returns the result for chaining.
    """
    if profiling_enabled():
        result.extra["profile"] = build_profile(result, elapsed)
    return result
