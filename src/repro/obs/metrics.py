"""Process-wide metrics registry with Prometheus text exposition.

Stdlib-only instrument set — :class:`Counter`, :class:`Gauge`, and
:class:`Histogram` — registered by name on a :class:`MetricsRegistry`.
Every instrument supports labels; a ``(metric, label-values)`` pair is
one *series*.  The registry renders two views of the same state:

* :meth:`MetricsRegistry.render` — Prometheus text exposition format
  0.0.4 (``# HELP`` / ``# TYPE`` headers, escaped label values,
  cumulative histogram buckets ending in ``+Inf``), served by the
  gateway at ``GET /v1/metrics``;
* :meth:`MetricsRegistry.snapshot` — a plain-dict JSON view for the
  dashboard and ``/v1/metrics.json``.

Instruments are lock-cheap: one :class:`threading.Lock` per metric,
held only for the dict update.  Names and label names are validated
against the Prometheus charset at registration time so an invalid
metric fails fast at the call site rather than corrupting a scrape.

The process-wide default registry is reachable via
:func:`get_registry`; engine and service layers share it so a single
scrape sees the whole process.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from collections import deque

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "escape_label_value",
    "get_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds), tuned for sub-second chunk
#: dispatches up to multi-minute sweeps.
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)

_RESERVOIR_SIZE = 512


def escape_label_value(value):
    """Escape a label value for Prometheus text format.

    Backslash, double-quote, and newline are escaped per the 0.0.4
    exposition spec; everything else passes through verbatim.
    """
    return (str(value)
            .replace("\\", "\\\\")
            .replace("\n", "\\n")
            .replace('"', '\\"'))


def _escape_help(text):
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value):
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value != value:
        return "NaN"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_pairs(labelnames, labelvalues):
    return ",".join(
        '%s="%s"' % (name, escape_label_value(value))
        for name, value in zip(labelnames, labelvalues)
    )


class _Metric:
    """Shared base: name/label validation and per-series storage."""

    kind = "untyped"

    def __init__(self, name, help, labelnames=()):
        if not _NAME_RE.match(name):
            raise ValueError("invalid metric name: %r" % (name,))
        for label in labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ValueError("invalid label name: %r" % (label,))
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series = {}

    def _key(self, labels):
        if set(labels) != set(self.labelnames):
            raise ValueError(
                "metric %s expects labels %r, got %r"
                % (self.name, self.labelnames, tuple(sorted(labels))))
        return tuple(str(labels[name]) for name in self.labelnames)

    def series(self):
        """Snapshot of label-values → value, sorted by label values."""
        with self._lock:
            items = list(self._series.items())
        return sorted(items)


class Counter(_Metric):
    """Monotonically increasing value, optionally labelled."""

    kind = "counter"

    def inc(self, amount=1, **labels):
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError("counters can only increase")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels):
        """Current value of the labelled series (0 if never touched)."""
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def render(self):
        """Prometheus text lines for this metric (no trailing newline)."""
        lines = ["# HELP %s %s" % (self.name, _escape_help(self.help)),
                 "# TYPE %s counter" % self.name]
        for key, value in self.series():
            pairs = _label_pairs(self.labelnames, key)
            label_part = "{%s}" % pairs if pairs else ""
            lines.append("%s%s %s" % (self.name, label_part,
                                      _format_value(value)))
        return lines


class Gauge(_Metric):
    """Value that can go up and down, optionally labelled."""

    kind = "gauge"

    def set(self, value, **labels):
        """Set the labelled series to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount=1, **labels):
        """Add ``amount`` (may be negative) to the labelled series."""
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels):
        """Current value of the labelled series (0 if never set)."""
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def render(self):
        """Prometheus text lines for this metric (no trailing newline)."""
        lines = ["# HELP %s %s" % (self.name, _escape_help(self.help)),
                 "# TYPE %s gauge" % self.name]
        for key, value in self.series():
            pairs = _label_pairs(self.labelnames, key)
            label_part = "{%s}" % pairs if pairs else ""
            lines.append("%s%s %s" % (self.name, label_part,
                                      _format_value(value)))
        return lines


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "count", "reservoir")

    def __init__(self, n_buckets):
        self.bucket_counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0
        self.reservoir = deque(maxlen=_RESERVOIR_SIZE)


class Histogram(_Metric):
    """Bucketed distribution with a bounded reservoir for percentiles.

    Prometheus buckets are cumulative on render (``le`` upper bounds
    plus ``+Inf``); internally each bucket stores its own count so
    observes stay O(log buckets).  A bounded deque of recent
    observations backs :meth:`percentile` for in-process p50/p95
    reporting — Prometheus buckets alone cannot answer that exactly.
    """

    kind = "histogram"

    def __init__(self, name, help, labelnames=(), buckets=DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")

    def observe(self, value, **labels):
        """Record one observation into the labelled series."""
        key = self._key(labels)
        value = float(value)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.buckets))
            if idx < len(series.bucket_counts):
                series.bucket_counts[idx] += 1
            series.total += value
            series.count += 1
            series.reservoir.append(value)

    def percentile(self, q, **labels):
        """Percentile ``q`` (0..100) over the bounded reservoir.

        Returns ``None`` for an untouched series.  Exact over the last
        ``512`` observations, which is what the dispatch report needs.
        """
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None or not series.reservoir:
                return None
            data = sorted(series.reservoir)
        rank = max(0, min(len(data) - 1,
                          int(round(q / 100.0 * (len(data) - 1)))))
        return data[rank]

    def count(self, **labels):
        """Observation count of the labelled series."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return series.count if series else 0

    def render(self):
        """Prometheus text lines: cumulative buckets, ``_sum``, ``_count``."""
        lines = ["# HELP %s %s" % (self.name, _escape_help(self.help)),
                 "# TYPE %s histogram" % self.name]
        for key, series in self.series():
            pairs = _label_pairs(self.labelnames, key)
            cumulative = 0
            for bound, bucket_count in zip(self.buckets,
                                           series.bucket_counts):
                cumulative += bucket_count
                le = _format_value(bound)
                label_part = ('{%s,le="%s"}' % (pairs, le) if pairs
                              else '{le="%s"}' % le)
                lines.append("%s_bucket%s %d" % (self.name, label_part,
                                                 cumulative))
            inf_part = ('{%s,le="+Inf"}' % pairs if pairs
                        else '{le="+Inf"}')
            lines.append("%s_bucket%s %d" % (self.name, inf_part,
                                             series.count))
            label_part = "{%s}" % pairs if pairs else ""
            lines.append("%s_sum%s %s" % (self.name, label_part,
                                          _format_value(series.total)))
            lines.append("%s_count%s %d" % (self.name, label_part,
                                            series.count))
        return lines

    def series(self):
        """Snapshot of label-values → series state, sorted."""
        with self._lock:
            items = list(self._series.items())
        return sorted(items, key=lambda kv: kv[0])


class MetricsRegistry:
    """Named collection of metrics with idempotent registration.

    ``counter``/``gauge``/``histogram`` are get-or-create: a second
    call with the same name returns the existing instrument (and
    raises if the kind or labelnames disagree), so call sites never
    need import-order coordination.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics = {}
        self._collectors = []

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if (type(existing) is not cls
                        or existing.labelnames != tuple(labelnames)):
                    raise ValueError(
                        "metric %r re-registered with a different "
                        "kind or labels" % (name,))
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name, help, labelnames=()):
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name, help, labelnames=()):
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name, help, labelnames=(),
                  buckets=DEFAULT_BUCKETS):
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def add_collector(self, fn):
        """Register a zero-arg callback run at the top of each render.

        Collectors refresh point-in-time gauges (queue depths, uptime)
        so scrapes see current state without per-event bookkeeping.
        """
        with self._lock:
            self._collectors.append(fn)

    def metrics(self):
        """All registered metrics, sorted by name."""
        with self._lock:
            return [self._metrics[name]
                    for name in sorted(self._metrics)]

    def render(self):
        """Prometheus text exposition for every metric (ends with \\n)."""
        for fn in list(self._collectors):
            try:
                fn()
            except Exception:
                pass  # a broken collector must not kill the scrape
        lines = []
        for metric in self.metrics():
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self):
        """JSON-friendly view: name → {kind, help, series list}."""
        for fn in list(self._collectors):
            try:
                fn()
            except Exception:
                pass
        out = {}
        for metric in self.metrics():
            series = []
            if isinstance(metric, Histogram):
                for key, state in metric.series():
                    series.append({
                        "labels": dict(zip(metric.labelnames, key)),
                        "count": state.count,
                        "sum": state.total,
                    })
            else:
                for key, value in metric.series():
                    series.append({
                        "labels": dict(zip(metric.labelnames, key)),
                        "value": value,
                    })
            out[metric.name] = {"kind": metric.kind,
                                "help": metric.help,
                                "series": series}
        return out


_REGISTRY = MetricsRegistry()


def get_registry():
    """The process-wide default registry shared by every layer."""
    return _REGISTRY
