#!/usr/bin/env python3
"""Probe the native cycle-engine tier's host requirements.

Checks everything ``engine=native`` needs before a run can use it:

* a working C compiler (``$REPRO_CC`` if set, else ``cc``/``gcc``/
  ``clang`` — *probe-compiled*, not just found on ``PATH``);
* a writable artifact cache directory (``REPRO_CACHE_DIR/native``).

Prints a human-readable report (``--json`` for machines) and exits 0.
With ``--require-native`` — the CI ``engine-matrix`` native leg — a
host where the tier is unavailable exits 1 instead of letting the run
silently measure the compiled tier.

Run with ``PYTHONPATH=src``::

    python tools/native_probe.py --require-native
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.uarch import native


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--require-native", action="store_true",
                        help="exit 1 when the native tier is unavailable "
                             "(CI mode: a missing toolchain must fail the "
                             "leg, not silently fall back)")
    parser.add_argument("--json", action="store_true",
                        help="emit the raw probe report as JSON")
    args = parser.parse_args(argv)

    report = native.probe()
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        cc = report["toolchain"]
        found = cc or "NOT FOUND (set REPRO_CC or install cc/gcc/clang)"
        writable = ("writable" if report["cache_dir_writable"]
                    else "NOT WRITABLE")
        tier = "available" if report["available"] else "UNAVAILABLE"
        print(f"toolchain:     {found}")
        print(f"probe compile: {'ok' if cc else 'failed'}")
        print(f"artifact dir:  {report['cache_dir']} ({writable})")
        print(f"template:      {report['template_fingerprint']}")
        print(f"native tier:   {tier}")
    if args.require_native and not report["available"]:
        print("native-probe: the native tier is unavailable on this host",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
