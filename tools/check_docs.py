#!/usr/bin/env python3
"""Docs checker: intra-repo links resolve, quickstart code blocks run.

Two checks over the repository's markdown (``README.md`` + ``docs/``):

* **links** — every relative markdown link ``[text](target)`` must
  point at a file that exists (anchors are stripped; ``http(s)://`` and
  ``mailto:`` targets are skipped).
* **smoke** — every fenced ``bash`` or ``python`` code block directly
  preceded by an ``<!-- smoke -->`` comment is executed from the repo
  root (``bash -euo pipefail`` / ``python``) with ``PYTHONPATH=src``, a
  throwaway ``REPRO_CACHE_DIR``, and reduced run budgets, so the
  documented quickstarts can never rot silently.

Usage::

    python tools/check_docs.py             # both checks
    python tools/check_docs.py --links     # links only
    python tools/check_docs.py --smoke     # smoke blocks only

Exit status is non-zero on any failure; findings are printed per file.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: ``[text](target)`` — good enough for our docs; images share the form.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"^```(\w*)\s*$")
_SMOKE_MARK = "<!-- smoke -->"


def doc_files():
    """README plus everything under docs/, sorted for stable output."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("**/*.md")))
    return [f for f in files if f.exists()]


def iter_links(text):
    """Yield link targets outside fenced code blocks."""
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield match.group(1)


def check_links(files):
    """Return a list of ``(file, target, reason)`` failures."""
    failures = []
    for path in files:
        for target in iter_links(path.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            bare, _, _anchor = target.partition("#")
            if not bare:
                continue  # pure in-page anchor
            resolved = (path.parent / bare).resolve()
            if not resolved.exists():
                failures.append((path, target, "missing file"))
            elif REPO_ROOT not in resolved.parents and resolved != REPO_ROOT:
                failures.append((path, target, "points outside the repo"))
    return failures


def iter_smoke_blocks(text):
    """Yield ``(language, source)`` for every marked fenced block."""
    lines = text.splitlines()
    armed = False
    language, block = None, None
    for line in lines:
        stripped = line.strip()
        fence = _FENCE.match(stripped)
        if block is not None:
            if stripped == "```":
                yield language, "\n".join(block) + "\n"
                block = None
            else:
                block.append(line)
            continue
        if fence and armed:
            language = fence.group(1) or "bash"
            block = []
            armed = False
            continue
        if stripped == _SMOKE_MARK:
            armed = True
        elif stripped:
            armed = False  # marker must directly precede the fence


def smoke_env(cache_dir):
    """A hermetic environment for the documented commands."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    env["REPRO_CACHE_DIR"] = cache_dir
    # Keep the documented commands honest but quick.
    env.setdefault("REPRO_BENCH_INSTRS", "2000")
    env.setdefault("REPRO_BENCH_SKIP", "200")
    env.setdefault("REPRO_JOBS", "2")
    return env


def run_smoke(files):
    """Execute every marked block; returns failures as ``(file, n, msg)``."""
    failures = []
    for path in files:
        blocks = list(iter_smoke_blocks(path.read_text(encoding="utf-8")))
        for n, (language, source) in enumerate(blocks, 1):
            if language == "bash":
                argv = ["bash", "-euo", "pipefail", "-c", source]
            elif language == "python":
                argv = [sys.executable, "-c", source]
            else:
                failures.append((path, n, f"unsupported language "
                                          f"{language!r}"))
                continue
            with tempfile.TemporaryDirectory() as cache_dir:
                proc = subprocess.run(
                    argv, cwd=REPO_ROOT, env=smoke_env(cache_dir),
                    capture_output=True, text=True, timeout=600)
            label = f"{path.relative_to(REPO_ROOT)} block {n} ({language})"
            if proc.returncode != 0:
                tail = (proc.stdout + proc.stderr)[-2000:]
                failures.append((path, n,
                                 f"exit {proc.returncode}\n{tail}"))
                print(f"FAIL {label}")
            else:
                print(f"ok   {label}")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--links", action="store_true",
                        help="only check markdown links")
    parser.add_argument("--smoke", action="store_true",
                        help="only run marked code blocks")
    args = parser.parse_args(argv)
    do_links = args.links or not args.smoke
    do_smoke = args.smoke or not args.links

    files = doc_files()
    status = 0
    if do_links:
        failures = check_links(files)
        for path, target, reason in failures:
            print(f"FAIL {path.relative_to(REPO_ROOT)}: "
                  f"link {target!r} — {reason}")
        print(f"links: {len(files)} file(s), {len(failures)} broken")
        status |= bool(failures)
    if do_smoke:
        failures = run_smoke(files)
        for path, n, message in failures:
            print(f"FAIL {path.relative_to(REPO_ROOT)} block {n}: "
                  f"{message}")
        print(f"smoke: {len(failures)} failing block(s)")
        status |= bool(failures)
    return status


if __name__ == "__main__":
    sys.exit(main())
