#!/usr/bin/env python3
"""Regenerate (or verify) the golden SimStats dumps under tests/.

The golden files pin *complete* ``SimStats.to_dict()`` dumps — the
repo's timing contract.  Two situations touch them:

* a deliberate timing-model change (new stall taxonomy, different
  commit latency): regenerate, and expect every persisted result and
  paper artifact to be invalidated with them;
* a purely *additive* stats-schema change (a new counter): the dumps
  gain a key with no timing drift; regeneration is routine.

``--check`` recomputes every dump and fails (exit 1) on any drift
without writing — the CI guard that the committed goldens match the
engine that ships with them.  Regeneration always runs the
*interpreted* engine, the conservative reference tier; the compiled
tier is held to these same dumps by the differential suite and the
compiled golden pins.

Usage:
    python tools/regen_goldens.py          # rewrite drifted files
    python tools/regen_goldens.py --check  # verify only (CI)
"""

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.policy import AllocationStage  # noqa: E402
from repro.trace.generator import SyntheticTrace  # noqa: E402
from repro.trace.workloads import load_workload  # noqa: E402
from repro.uarch.config import (  # noqa: E402
    ProcessorConfig,
    RenamingScheme,
    conventional_config,
    virtual_physical_config,
)
from repro.uarch.processor import Processor  # noqa: E402

GOLDEN_STATS = REPO / "tests" / "uarch" / "data" / "golden_stats.json"

# Mirrors CONFIGS in tests/uarch/test_processor_golden_optimized.py —
# the labels stored inside the golden file resolve through this table.
CONFIGS = {
    "conventional": lambda: conventional_config(),
    "early_release": lambda: ProcessorConfig(
        scheme=RenamingScheme.EARLY_RELEASE),
    "vp_issue_nrr8": lambda: virtual_physical_config(
        nrr=8, allocation=AllocationStage.ISSUE),
    "vp_wb_nrr8": lambda: virtual_physical_config(nrr=8),
    "vp_wb_nrr8_gated": lambda: virtual_physical_config(
        nrr=8, retry_gating=True),
}


def recompute_entry(entry):
    """Fresh stats dump for one golden entry (interpreted engine)."""
    processor = Processor(CONFIGS[entry["label"]](), engine="interp")
    trace = SyntheticTrace(load_workload(entry["workload"]), entry["seed"])
    result = processor.run(trace, max_instructions=entry["instructions"],
                           skip=entry["skip"])
    return result.stats.to_dict()


def regen_golden_stats(check=False):
    """Regenerate/verify golden_stats.json.  Returns drifted keys."""
    golden = json.loads(GOLDEN_STATS.read_text())
    drifted = []
    for key in sorted(golden):
        entry = golden[key]
        fresh = recompute_entry(entry)
        if fresh != entry["stats"]:
            drifted.append(key)
            changed = sorted(k for k in set(fresh) | set(entry["stats"])
                             if fresh.get(k) != entry["stats"].get(k))
            print(f"  drift {key}: {', '.join(changed)}")
            entry["stats"] = fresh
    if drifted and not check:
        GOLDEN_STATS.write_text(
            json.dumps(golden, indent=1, sort_keys=True) + "\n")
        print(f"rewrote {GOLDEN_STATS.relative_to(REPO)} "
              f"({len(drifted)} entries)")
    return drifted


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="verify only; exit 1 on drift (CI mode)")
    args = parser.parse_args(argv)
    drifted = regen_golden_stats(check=args.check)
    if args.check:
        if drifted:
            print(f"FAIL: {len(drifted)} golden entries drifted; run "
                  f"python tools/regen_goldens.py to regenerate")
            return 1
        print("golden dumps match the engine")
        return 0
    if not drifted:
        print("golden dumps already current")
    return 0


if __name__ == "__main__":
    sys.exit(main())
