#!/usr/bin/env python3
"""Validate a Prometheus text-format scrape (exposition format 0.0.4).

Stdlib-only lint for the ``GET /v1/metrics`` output: CI scrapes a live
gateway mid-sweep and pipes the body through this checker.  Verified
properties:

* every non-comment line parses as ``name{labels} value`` with a legal
  metric name, legal label names, and a float-parseable value;
* ``# TYPE``/``# HELP`` lines are well-formed, name every metric
  before its samples, and appear at most once per metric;
* histograms are internally consistent: cumulative ``_bucket`` counts
  are monotonically non-decreasing in ``le`` order, the ``+Inf``
  bucket equals ``_count``, and ``_sum``/``_count`` are present;
* (optionally) specific series exist — ``--require-series
  'repro_tenant_jobs_total{client="ci"}'`` asserts the per-tenant
  accounting made it into the exposition.

Usage::

    python tools/metrics_check.py scrape.txt
    curl -s $URL/v1/metrics | python tools/metrics_check.py -
    python tools/metrics_check.py --url http://127.0.0.1:8750/v1/metrics \\
        --require-series 'repro_gateway_requests_total'

Exit status is non-zero on the first structural violation.
"""

from __future__ import annotations

import argparse
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: ``name{labels} value`` — labels optional, value greedy to line end.
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
                       r"(?:\{(.*)\})?\s+(\S+)$")
LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


class CheckError(Exception):
    """A structural violation, annotated with the offending line."""


def parse_labels(raw):
    """Parse a ``k="v",...`` label body into a dict (validates names)."""
    labels = {}
    rest = raw
    while rest:
        match = LABEL_PAIR_RE.match(rest)
        if match is None:
            raise CheckError(f"unparseable label body {raw!r}")
        labels[match.group(1)] = match.group(2)
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise CheckError(f"junk after label pair in {raw!r}")
    for name in labels:
        if name.startswith("__"):
            raise CheckError(f"reserved label name {name!r}")
    return labels


def parse_value(raw):
    """A sample value: float, ``+Inf``/``-Inf``/``NaN`` included."""
    try:
        return float(raw)
    except ValueError:
        raise CheckError(f"unparseable sample value {raw!r}")


def validate_text(text):
    """Check one scrape body; returns ``(samples, families)``.

    ``samples`` is ``[(name, labels_dict, value), ...]`` in document
    order; ``families`` maps metric name to its declared TYPE.  Raises
    :class:`CheckError` on the first violation.
    """
    samples = []
    families = {}
    helped = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            if line.startswith("# HELP "):
                parts = line[len("# HELP "):].split(" ", 1)
                name = parts[0]
                if not NAME_RE.match(name):
                    raise CheckError(f"bad metric name in HELP: {name!r}")
                if name in helped:
                    raise CheckError(f"duplicate HELP for {name}")
                helped.add(name)
            elif line.startswith("# TYPE "):
                parts = line[len("# TYPE "):].split()
                if len(parts) != 2:
                    raise CheckError("malformed TYPE line")
                name, kind = parts
                if not NAME_RE.match(name):
                    raise CheckError(f"bad metric name in TYPE: {name!r}")
                if kind not in TYPES:
                    raise CheckError(f"unknown metric type {kind!r}")
                if name in families:
                    raise CheckError(f"duplicate TYPE for {name}")
                families[name] = kind
            elif line.startswith("#"):
                continue  # free-form comment
            else:
                match = SAMPLE_RE.match(line)
                if match is None:
                    raise CheckError(f"unparseable sample line {line!r}")
                name, raw_labels, raw_value = match.groups()
                labels = parse_labels(raw_labels) if raw_labels else {}
                value = parse_value(raw_value)
                family = base_family(name, families)
                if family is None:
                    raise CheckError(
                        f"sample {name} has no preceding TYPE line")
                samples.append((name, labels, value))
        except CheckError as exc:
            raise CheckError(f"line {lineno}: {exc}") from None
    check_histograms(samples, families)
    return samples, families


def base_family(sample_name, families):
    """The TYPE-declared family a sample belongs to, or ``None``.

    Histogram samples use suffixed names (``_bucket``/``_sum``/
    ``_count``) under the family's bare name.
    """
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if families.get(base) == "histogram":
                return base
    return None


def check_histograms(samples, families):
    """Cumulative-bucket monotonicity and ``+Inf`` == ``_count``."""
    series = {}  # (family, frozen non-le labels) -> {"buckets": [...], ...}
    for name, labels, value in samples:
        for suffix in ("_bucket", "_sum", "_count"):
            if not name.endswith(suffix):
                continue
            base = name[: -len(suffix)]
            if families.get(base) != "histogram":
                continue
            key_labels = {k: v for k, v in labels.items() if k != "le"}
            entry = series.setdefault(
                (base, tuple(sorted(key_labels.items()))),
                {"buckets": [], "sum": None, "count": None})
            if suffix == "_bucket":
                le = labels.get("le")
                if le is None:
                    raise CheckError(f"{name}: _bucket sample without le")
                bound = float("inf") if le == "+Inf" else float(le)
                entry["buckets"].append((bound, value))
            else:
                entry[suffix[1:]] = value
            break
    for (base, key_labels), entry in sorted(series.items()):
        where = base + ("{%s}" % ",".join(
            f'{k}="{v}"' for k, v in key_labels) if key_labels else "")
        if not entry["buckets"]:
            raise CheckError(f"{where}: histogram series has no buckets")
        if entry["count"] is None or entry["sum"] is None:
            raise CheckError(f"{where}: missing _count or _sum")
        ordered = sorted(entry["buckets"])
        counts = [count for _, count in ordered]
        if any(b < a for a, b in zip(counts, counts[1:])):
            raise CheckError(f"{where}: bucket counts not monotone "
                             f"({counts})")
        if ordered[-1][0] != float("inf"):
            raise CheckError(f"{where}: no +Inf bucket")
        if ordered[-1][1] != entry["count"]:
            raise CheckError(
                f"{where}: +Inf bucket {ordered[-1][1]} != _count "
                f"{entry['count']}")


def parse_series_spec(spec):
    """Parse a ``--require-series`` argument into ``(name, labels)``."""
    match = SAMPLE_RE.match(spec + " 0")  # reuse the sample grammar
    if match is None or match.group(1) is None:
        raise SystemExit(f"metrics_check: bad series spec {spec!r}")
    name, raw_labels, _ = match.groups()
    return name, (parse_labels(raw_labels) if raw_labels else {})


def require_series(samples, spec):
    """Assert a series exists (label subset match on one sample)."""
    name, want = parse_series_spec(spec)
    for sample_name, labels, _ in samples:
        if sample_name != name:
            continue
        if all(labels.get(k) == v for k, v in want.items()):
            return
    raise CheckError(f"required series not found: {spec}")


def read_source(args):
    """The scrape body: a file, stdin (``-``), or a live URL."""
    if args.url:
        import urllib.request

        request = urllib.request.Request(args.url)
        if args.token:
            request.add_header("Authorization", f"Bearer {args.token}")
        with urllib.request.urlopen(request, timeout=30) as response:
            content_type = response.headers.get("Content-Type", "")
            body = response.read().decode("utf-8")
        if "text/plain" not in content_type:
            raise CheckError(
                f"expected a text/plain exposition, got {content_type!r}")
        return body
    if args.path == "-":
        return sys.stdin.read()
    with open(args.path, "r", encoding="utf-8") as fh:
        return fh.read()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default="-",
                        help="scrape file, or '-' for stdin (default)")
    parser.add_argument("--url", default=None,
                        help="scrape a live endpoint instead of a file")
    parser.add_argument("--token", default=None,
                        help="bearer token for --url (REPRO_TOKEN)")
    parser.add_argument("--require-series", action="append", default=[],
                        metavar="SERIES",
                        help="assert a series exists, e.g. "
                             "'repro_tenant_jobs_total{client=\"ci\"}' "
                             "(repeatable; label subset match)")
    args = parser.parse_args(argv)
    try:
        text = read_source(args)
        samples, families = validate_text(text)
        for spec in args.require_series:
            require_series(samples, spec)
    except CheckError as exc:
        print(f"metrics_check: FAIL — {exc}")
        return 1
    print(f"metrics_check: OK — {len(samples)} sample(s) across "
          f"{len(families)} metric(s)"
          + (f", {len(args.require_series)} required series present"
             if args.require_series else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
