#!/usr/bin/env python3
"""Chaos smoke: seeded fault injection across the distributed stack.

Run with ``PYTHONPATH=src``; everything (workers, gateway, reference
run) is started by this script against a throwaway cache directory, so
it needs no prior setup.  Five phases, all asserted bit-identical to
a serial in-process reference run of the same grid:

1. **Reference** — serial execution of the acceptance grid, on the
   interpreted cycle-engine tier.
2. **Remote chaos** — two ``repro worker`` daemons started with a
   seeded ``REPRO_FAULTS`` plan that makes each drop one chunk reply
   and then die mid-chunk; the coordinator runs with its own seeded
   plan (refused connects + a dropped reply), retries through the
   circuit breaker, and — once both workers are gone — degrades onto
   the local fallback executor.  The merged results must equal the
   reference exactly.
3. **Compiled-engine chaos** — the same worker/coordinator fault plans
   replayed with every spec pinned to the *compiled* cycle engine
   (``engine="compiled"`` rides the spec wire format to the workers).
   Transport-level chaos on top of the codegen tier must still merge
   bit-identical to the serial *interpreted* reference — and the stats
   dumps carry ``engine_fallbacks``, so a silent fallback to the
   interpreter on a worker would itself show up as a mismatch.
4. **Native-engine chaos** — the same again with every spec pinned to
   the C-compiled *native* tier (each fresh worker process compiles or
   loads the cached shared objects before the plan kills it); skipped
   with a loud log line on hosts without a C toolchain.
5. **Gateway kill + resume** — a journaled ``repro serve`` is
   SIGKILLed mid-job after streaming at least one point, restarted on
   the same port with ``--resume``, and must deliver every remaining
   point exactly once (the client reconnects with its event cursor),
   again bit-identical.

A fault log (``--log``, default ``chaos_smoke.log``) records the
plans, per-site fire counts, and phase outcomes — CI uploads it as an
artifact.  Exit status is non-zero on any failure.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

from repro.engine import RemoteExecutor, RunSpec, SerialExecutor
from repro.engine.faults import FaultPlan, active_plan, clear, install
from repro.service import GatewayClient
from repro.uarch.config import conventional_config, virtual_physical_config

#: Coordinator-side chaos: refused connects and one dropped reply.
COORDINATOR_PLAN = ("seed=13;remote.connect:p=0.3,n=2;"
                    "remote.chunk_reply:n=1")

#: Worker-side chaos (per process): drop the first chunk's reply, then
#: die mid-chunk on the third — so both daemons are gone before the
#: grid drains and the coordinator must fall back.
WORKER_PLAN = "seed=17;worker.crash_before_reply:n=1;worker.exit:n=1,after=2"


def build_grid(instructions, skip, seeds, engine=None):
    """Conventional vs vp-issue on two workloads, ``seeds`` points each.

    ``engine`` pins every spec's cycle-engine tier (``"compiled"`` for
    the codegen-chaos phase); ``None`` keeps the config default
    (``"auto"``, which resolves to the interpreter here).
    """
    configs = [
        ("conventional", conventional_config()),
        ("vp-issue", virtual_physical_config(nrr=8)),
    ]
    if engine:
        configs = [(label, config.with_(engine=engine))
                   for label, config in configs]
    return [
        RunSpec(workload, config, label=label).resolved(
            instructions, skip, seed)
        for seed in range(seeds)
        for workload in ("go", "swim")
        for label, config in configs
    ]


class FaultLog:
    """Append-only artifact file describing what the chaos run did."""

    def __init__(self, path):
        self.path = pathlib.Path(path)
        self.path.write_text("")

    def write(self, message):
        """One timestamped line to the artifact and to stdout."""
        line = f"[{time.strftime('%H:%M:%S')}] {message}"
        print(line, flush=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")

    def report(self, title, report):
        """Record a fault plan's fire counts."""
        self.write(f"{title}: plan={report['plan']!r} "
                   f"fired={json.dumps(report['fired'], sort_keys=True)}")
        for entry in report["log"]:
            self.write(f"{title}:   {entry}")


def wait_for(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.2)
    raise AssertionError(f"timed out waiting for {what}")


def spawn(cmd, env, log, name):
    log.write(f"spawn {name}: {' '.join(cmd)}")
    return subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL,
                            stderr=subprocess.STDOUT)


def comparable(result):
    """``to_dict`` with the config's engine pin stripped — the one
    field :meth:`ProcessorConfig.key` also excludes, so an interpreted
    reference and a compiled-tier run compare on substance (timing,
    stats, workload) rather than on which tier was requested."""
    d = result.to_dict()
    if isinstance(d.get("config"), dict):
        d["config"] = {k: v for k, v in d["config"].items()
                       if k != "engine"}
    return d


def assert_identical(results, reference, what, log):
    mismatches = sum(comparable(a) != comparable(b)
                     for a, b in zip(results, reference))
    assert len(results) == len(reference) and not mismatches, (
        f"{what}: {mismatches}/{len(reference)} result(s) differ "
        "from the serial reference")
    log.write(f"{what}: {len(reference)} result(s) bit-identical "
              "to the serial reference")


def phase_remote_chaos(specs, reference, cache_dir, ports, log,
                       what="remote chaos"):
    """Workers that drop replies and die; the run must still merge."""
    env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir),
               REPRO_FAULTS=WORKER_PLAN, PYTHONPATH="src")
    env.pop("REPRO_TOKEN", None)
    workers = [spawn([sys.executable, "-m", "repro", "worker", "--serve",
                      "--port", str(port)], env, log, f"worker:{port}")
               for port in ports]
    try:
        addresses = [("127.0.0.1", port) for port in ports]
        executor = RemoteExecutor(addresses, chunk_size=1,
                                  max_task_attempts=10,
                                  connect_timeout=5.0,
                                  quarantine_cooldown=0.5)
        wait_for(lambda: len(executor.probe()[0]) == len(ports),
                 timeout=20, what="both workers to come up")
        install(FaultPlan.from_string(COORDINATOR_PLAN))
        try:
            results = executor.run(specs)
            log.report("coordinator", active_plan().report())
        finally:
            clear()
        run_report = executor.last_run_report
        log.write(f"{what}: retries={run_report.get('retries')} "
                  f"quarantined={run_report.get('quarantined')} "
                  f"degraded={bool(run_report.get('degraded'))}")
        assert_identical(results, reference, what, log)
    finally:
        for proc in workers:
            proc.kill()
        for proc in workers:
            proc.wait(timeout=10)


def assert_tier_engages(config, tier, log, what):
    """Prove ``config`` actually selects the ``tier`` engine in-process.

    Bit-identity alone cannot distinguish "the faster tier ran and
    matched" from "the engine pin never made it through the wire and
    the interpreter ran twice" — so probe one tiny run locally and
    check the engine the processor reports it used.
    """
    from repro.trace.generator import SyntheticTrace
    from repro.trace.workloads import load_workload
    from repro.uarch.processor import Processor

    processor = Processor(config)
    processor.run(SyntheticTrace(load_workload("go"), seed=0),
                  max_instructions=200)
    assert processor.engine_used == tier, (
        f"engine pin did not engage the {tier} tier: "
        f"used {processor.engine_used!r}")
    log.write(f"{what}: probe confirms the {tier} tier engages "
              "for the pinned configs")


def phase_gateway_resume(specs, reference, cache_dir, port, log):
    """SIGKILL a journaled gateway mid-job; resume must finish it."""
    env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir),
               PYTHONPATH="src")
    env.pop("REPRO_TOKEN", None)
    env.pop("REPRO_FAULTS", None)
    serve = [sys.executable, "-m", "repro", "serve", "--port", str(port),
             "--max-inflight", "1"]
    client = GatewayClient(f"http://127.0.0.1:{port}", token="")

    def healthy():
        try:
            return bool(client.healthz()["ok"])
        except (ConnectionError, OSError):
            return False

    first = spawn(serve, env, log, "gateway")
    try:
        wait_for(healthy, timeout=20, what="the gateway to come up")
        job = client.submit(specs)
        log.write(f"gateway: job {job['id']} submitted "
                  f"({job['points']} point(s))")
        consumed = []
        for event in client.stream(job["id"], reconnect=False):
            consumed.append(event)
            if len(consumed) >= 2:
                break  # at least one point streamed: kill mid-job
    finally:
        first.kill()
        first.wait(timeout=10)
    log.write(f"gateway: SIGKILLed after {len(consumed)} streamed "
              "event(s)")
    assert any(e.get("event") == "point" for e in consumed), (
        "gateway died before streaming a single point")

    second = spawn(serve + ["--resume"], env, log, "gateway --resume")
    try:
        wait_for(healthy, timeout=20, what="the resumed gateway")
        metrics = client.metrics()
        assert metrics["resumed_jobs"] >= 1, (
            f"resumed gateway reloaded no jobs: {metrics}")
        rest = list(client.stream(job["id"], after=len(consumed)))
        assert rest and rest[-1].get("event") == "end", "stream never ended"
        assert rest[-1]["state"] == "done", (
            f"resumed job ended {rest[-1]['state']!r}: "
            f"{rest[-1].get('error')}")
        indices = ([e["index"] for e in consumed
                    if e.get("event") == "point"]
                   + [e["index"] for e in rest
                      if e.get("event") == "point"])
        assert sorted(indices) == list(range(len(specs))), (
            f"points not delivered exactly once across the restart: "
            f"{sorted(indices)}")
        log.write(f"gateway: {len(indices)} point(s) delivered exactly "
                  "once across the kill/resume")
        results = client.fetch(job["id"])
        assert_identical(results, reference, "gateway resume", log)
    finally:
        second.kill()
        second.wait(timeout=10)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-n", "--instructions", type=int, default=2000)
    parser.add_argument("--skip", type=int, default=200)
    parser.add_argument("--gateway-instructions", type=int, default=20_000,
                        help="run length for the kill/resume phase (long "
                             "enough that the kill lands mid-job)")
    parser.add_argument("--base-port", type=int, default=18760)
    parser.add_argument("--log", default="chaos_smoke.log",
                        help="fault-log artifact path")
    args = parser.parse_args(argv)

    log = FaultLog(args.log)
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        tmp = pathlib.Path(tmp)

        specs = build_grid(args.instructions, args.skip, seeds=2)
        log.write(f"reference: running {len(specs)} point(s) serially")
        reference = SerialExecutor().run(specs)

        phase_remote_chaos(specs, reference, tmp / "remote-cache",
                           [args.base_port, args.base_port + 1], log)

        # Same transport chaos, compiled cycle engine underneath: the
        # seeded fault plans replay exactly (fresh worker processes,
        # fresh plan counters) and the merged results must still equal
        # the *interpreted* serial reference bit for bit.
        compiled_specs = build_grid(args.instructions, args.skip, seeds=2,
                                    engine="compiled")
        assert_tier_engages(compiled_specs[0].config, "compiled", log,
                            "compiled chaos")
        phase_remote_chaos(compiled_specs, reference,
                           tmp / "compiled-cache",
                           [args.base_port + 3, args.base_port + 4], log,
                           what="compiled-engine chaos")

        # Once more on the C-compiled native tier — each fresh worker
        # process compiles (or loads from its artifact cache) the
        # specialized shared objects before the chaos plan kills it.
        # Skipped, loudly, on hosts without a C toolchain: the tier
        # would otherwise fall back and silently re-test compiled.
        from repro.uarch import native

        if native.toolchain() is None:
            log.write("native chaos: SKIPPED — no C toolchain on this "
                      "host (set REPRO_CC or install cc/gcc/clang)")
        else:
            native_specs = build_grid(args.instructions, args.skip,
                                      seeds=2, engine="native")
            assert_tier_engages(native_specs[0].config, "native", log,
                                "native chaos")
            phase_remote_chaos(native_specs, reference,
                               tmp / "native-cache",
                               [args.base_port + 5, args.base_port + 6],
                               log, what="native-engine chaos")

        gw_specs = [RunSpec("go", conventional_config()).resolved(
            args.gateway_instructions, args.skip, seed)
            for seed in range(6)]
        gw_reference = SerialExecutor().run(gw_specs)
        phase_gateway_resume(gw_specs, gw_reference, tmp / "gateway-cache",
                             args.base_port + 2, log)

    log.write("chaos smoke: all phases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
