#!/usr/bin/env python3
"""Gateway smoke: acceptance checks against a live ``repro serve``.

Run with ``PYTHONPATH=src`` and a gateway already listening (the CI
gateway job starts one with ``REPRO_TOKEN`` set).  Asserts, end to end
over real HTTP, the service-layer acceptance criteria:

1. **Auth** — when a token is configured, a request without it is
   rejected with 401 (skipped when auth is off).
2. **Streaming** — ``POST /v1/jobs`` with a conventional-vs-vp-issue
   grid returns a job id, and the NDJSON stream delivers at least one
   grid point *before* the job completes.
3. **Determinism** — the collected results are bit-identical to a
   local serial ``BatchEngine`` run of the same grid.

Exit status is non-zero on any failure.
"""

from __future__ import annotations

import argparse
import sys

from repro.engine import BatchEngine, RunSpec, SerialExecutor
from repro.service import GatewayClient, GatewayError
from repro.service.auth import service_token
from repro.uarch.config import conventional_config, virtual_physical_config


def build_grid(instructions, skip, seed):
    """The acceptance grid: conventional vs vp-issue on two workloads."""
    return [
        RunSpec(workload, config, label=label).resolved(
            instructions, skip, seed)
        for workload in ("go", "swim")
        for label, config in (
            ("conventional", conventional_config()),
            ("vp-issue", virtual_physical_config(nrr=8)),
        )
    ]


def check_auth(url, specs):
    """An unauthenticated submit must bounce with 401."""
    if not service_token():
        print("auth: REPRO_TOKEN unset, skipping the rejection check")
        return
    intruder = GatewayClient(url, token="definitely-wrong")
    try:
        intruder.submit(specs[:1])
    except GatewayError as exc:
        assert exc.status == 401, f"expected 401, got {exc.status}"
        print("auth: unauthenticated submit rejected with 401")
        return
    raise AssertionError("gateway accepted an unauthenticated submit")


def check_streaming(client, specs):
    """Submit, stream, and verify incremental delivery; returns results."""
    job = client.submit(specs)
    print(f"job {job['id']}: {job['points']} point(s) submitted")
    streamed_early = False
    state = None
    for event in client.stream(job["id"]):
        if event["event"] == "point":
            print(f"  stream: {event['done']}/{event['points']} "
                  f"{event['workload']} {event['label']}")
            if event["done"] < event["points"]:
                streamed_early = True
        elif event["event"] == "end":
            state = event["state"]
    assert state == "done", f"job ended {state!r}"
    assert streamed_early, ("no grid point was delivered before the job "
                            "completed — streaming is not incremental")
    print("stream: incremental delivery confirmed")
    return client.fetch(job["id"])


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="gateway base URL (default: REPRO_GATEWAY)")
    parser.add_argument("-n", "--instructions", type=int, default=2000)
    parser.add_argument("--skip", type=int, default=200)
    parser.add_argument("--seed", type=int, default=1234)
    args = parser.parse_args(argv)

    specs = build_grid(args.instructions, args.skip, args.seed)
    check_auth(args.url, specs)
    client = GatewayClient(args.url)
    remote = check_streaming(client, specs)
    serial = BatchEngine(SerialExecutor()).run(specs)
    mismatches = sum(a.to_dict() != b.to_dict()
                     for a, b in zip(remote, serial))
    if mismatches:
        print(f"FAIL: {mismatches}/{len(specs)} streamed result(s) "
              "differ from the serial run")
        return 1
    print(f"determinism: {len(specs)} streamed result(s) bit-identical "
          "to the serial run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
