#!/usr/bin/env python3
"""Observability smoke: end-to-end telemetry against a live gateway.

Run with ``PYTHONPATH=src`` and a ``repro serve`` already listening
(the CI ``obs-smoke`` job starts one with ``REPRO_TOKEN`` and a
scratch ``REPRO_CACHE_DIR``).  Asserts, over real HTTP:

1. **Exposition** — mid-sweep, ``GET /v1/metrics`` returns valid
   Prometheus text (validated with :mod:`tools.metrics_check`) carrying
   the per-tenant series for this run's client id, and
   ``/v1/metrics.json`` still serves the JSON document.
2. **Health** — ``GET /v1/healthz`` reports the engine-tier
   availability map (interp/compiled/native + what ``auto`` resolves
   to).
3. **Trace round-trip** — the submit response carries a trace id, and
   after the job completes the telemetry directory holds spans for
   that one id covering the ``queue``, ``dispatch``, ``run``, and
   ``store`` phases — coordinator-side scheduling through result
   landing, one shared trace.
4. **Dashboard** — ``GET /v1/dashboard`` serves the HTML page without
   auth.

Exit status is non-zero on any failure.
"""

from __future__ import annotations

import argparse
import os
import sys
import urllib.request

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import metrics_check  # noqa: E402  (sibling tool, stdlib-only)

from repro.obs.tracing import read_spans  # noqa: E402
from repro.service import GatewayClient  # noqa: E402
from repro.service.auth import service_token  # noqa: E402

CLIENT_ID = "obs-smoke"


def build_grid(instructions, skip, seed):
    """A small conventional-vs-vp grid, fresh keys per seed."""
    from repro.engine import RunSpec
    from repro.uarch.config import (
        conventional_config,
        virtual_physical_config,
    )

    return [
        RunSpec(workload, config, label=label).resolved(
            instructions, skip, seed)
        for workload in ("go", "swim", "compress")
        for label, config in (
            ("conventional", conventional_config()),
            ("vp-writeback", virtual_physical_config(nrr=8)),
        )
    ]


def fetch_raw(url, path, token=None, accept=None):
    """GET a gateway path; returns ``(content_type, body_text)``."""
    request = urllib.request.Request(url.rstrip("/") + path)
    if token:
        request.add_header("Authorization", f"Bearer {token}")
    if accept:
        request.add_header("Accept", accept)
    with urllib.request.urlopen(request, timeout=30) as response:
        return (response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"))


def check_scrape(url, token):
    """Mid-flight Prometheus scrape: valid text + tenant series."""
    content_type, body = fetch_raw(url, "/v1/metrics", token)
    assert content_type.startswith("text/plain"), (
        f"/v1/metrics served {content_type!r}, expected Prometheus text")
    samples, families = metrics_check.validate_text(body)
    for spec in (
        "repro_gateway_requests_total",
        f'repro_tenant_jobs_total{{client="{CLIENT_ID}"}}',
        f'repro_tenant_points_total{{client="{CLIENT_ID}"}}',
    ):
        metrics_check.require_series(samples, spec)
    print(f"scrape: {len(samples)} sample(s) across {len(families)} "
          f"metric(s), tenant series for {CLIENT_ID!r} present")
    content_type, _ = fetch_raw(url, "/v1/metrics.json", token)
    assert "application/json" in content_type, (
        f"/v1/metrics.json served {content_type!r}")
    content_type, _ = fetch_raw(url, "/v1/metrics", token,
                                accept="application/json")
    assert "application/json" in content_type, (
        "Accept: application/json on /v1/metrics did not negotiate JSON")
    print("scrape: JSON document still served (metrics.json + Accept)")


def check_healthz(url):
    """The health document must carry the engine-tier report."""
    import json

    _, body = fetch_raw(url, "/v1/healthz")
    health = json.loads(body)
    engines = health.get("engines")
    assert engines, f"healthz has no engines report: {health}"
    for tier in ("interp", "compiled", "native"):
        assert "available" in engines.get(tier, {}), (
            f"healthz engines report missing {tier}: {engines}")
    assert engines.get("resolved_auto") in ("interp", "compiled",
                                            "native"), engines
    print(f"healthz: engine tiers reported, auto -> "
          f"{engines['resolved_auto']}")


def check_dashboard(url):
    """The dashboard page is served, unauthenticated, as HTML."""
    content_type, body = fetch_raw(url, "/v1/dashboard")
    assert "text/html" in content_type, content_type
    assert "repro cluster dashboard" in body
    print("dashboard: HTML page served without auth")


def check_trace(trace):
    """Spans for the submit-minted trace cover the core phases."""
    spans = read_spans(trace=trace)
    assert spans, (f"no telemetry spans recorded for trace {trace} — "
                   "does this process share REPRO_CACHE_DIR with the "
                   "gateway?")
    phases = {span["phase"] for span in spans}
    for phase in ("queue", "dispatch", "run", "store"):
        assert phase in phases, (
            f"trace {trace} has no {phase!r} span; phases seen: "
            f"{sorted(phases)}")
    assert all(span["trace"] == trace for span in spans)
    processes = {(span["host"], span["pid"]) for span in spans}
    print(f"trace: {len(spans)} span(s) for {trace[:12]}… covering "
          f"{sorted(phases)} across {len(processes)} process(es)")
    return spans


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", default=None,
                        help="gateway base URL (default: REPRO_GATEWAY "
                             "or http://127.0.0.1:8750)")
    parser.add_argument("-n", "--instructions", type=int, default=2000)
    parser.add_argument("--skip", type=int, default=200)
    parser.add_argument("--seed", type=int, default=20260808)
    args = parser.parse_args(argv)

    from repro.service.client import default_gateway_url

    url = args.url or default_gateway_url()
    token = service_token()
    client = GatewayClient(url, client_id=CLIENT_ID)
    specs = build_grid(args.instructions, args.skip, args.seed)
    job = client.submit(specs)
    trace = job.get("trace")
    assert trace, f"submit response carries no trace id: {job}"
    print(f"job {job['id']}: {job['points']} point(s) submitted, "
          f"trace {trace}")

    state = None
    scraped = False
    for event in client.stream(job["id"]):
        if event.get("event") == "point" and not scraped:
            # Mid-flight: the job is live, tenant counters are moving.
            check_scrape(url, token)
            scraped = True
        elif event.get("event") == "end":
            state = event.get("state")
    assert state == "done", f"job ended {state!r}"
    if not scraped:  # zero-point or fully-cached ultra-fast job
        check_scrape(url, token)
    check_healthz(url)
    check_dashboard(url)
    check_trace(trace)
    print("obs_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
