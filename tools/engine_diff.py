#!/usr/bin/env python3
"""Cross-engine differential sampler — the CI ``engine-matrix`` gate.

Samples the processor configuration space (policies × register files ×
window shapes × FU mixes × predictor/idle/retry toggles — see
:mod:`repro.uarch.enginediff`), runs every sampled config on every
workload under the interpreter and the candidate engine tier(s)
(``--engine compiled|native|all``), and fails if any point is not
**bit-identical** or silently fell back to a lower tier.

Failing points are shrunk to a 1-minimal reproducer (every axis reset
to its default that still fails) and written to the ``--report`` JSON —
CI uploads it as an artifact, so a red run arrives with the smallest
config that reproduces the divergence, not just a stack of stats dumps.

Run with ``PYTHONPATH=src``::

    python tools/engine_diff.py --configs 24 --seed 2026 \\
        --report engine_diff.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.uarch.enginediff import DIFF_WORKLOADS, run_sample


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--configs", type=int, default=24,
                        help="sampled configurations (first %(default)s "
                             "include one single-axis probe per axis)")
    parser.add_argument("--seed", type=int, default=2026,
                        help="sampler seed (change to explore new points)")
    parser.add_argument("--workloads", default=",".join(DIFF_WORKLOADS),
                        help="comma-separated workloads per config")
    parser.add_argument("--report", default="engine_diff.json",
                        help="JSON report path (the CI artifact)")
    parser.add_argument("--engine", default="compiled",
                        choices=("compiled", "native", "all"),
                        help="candidate tier(s) to diff against the "
                             "interpreter (default %(default)s; 'native' "
                             "requires a C toolchain, see "
                             "tools/native_probe.py)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report raw failing points without "
                             "minimizing them first")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-point progress line")
    args = parser.parse_args(argv)

    workloads = tuple(w.strip() for w in args.workloads.split(",")
                      if w.strip())
    engines = (("compiled", "native") if args.engine == "all"
               else (args.engine,))
    if "native" in engines:
        from repro.uarch.native import toolchain

        if toolchain() is None:
            print("engine-diff: no C toolchain found — the native tier "
                  "cannot be diffed on this host (set REPRO_CC or install "
                  "cc/gcc/clang)", file=sys.stderr)
            return 1
    total = args.configs * len(workloads) * len(engines)
    started = time.perf_counter()
    report = {"engines": {}, "seed": args.seed, "points": 0,
              "failures": [], "ok": True}
    done_so_far = 0
    for engine in engines:

        def progress(done, _total, base=done_so_far):
            if not args.quiet:
                print(f"\r  {base + done}/{total} points checked", end="",
                      file=sys.stderr, flush=True)

        sub = run_sample(args.configs, seed=args.seed, workloads=workloads,
                         shrink_failures=not args.no_shrink,
                         progress=progress, engine=engine)
        done_so_far += sub["points"]
        report["engines"][engine] = sub
        report["points"] += sub["points"]
        for failure in sub["failures"]:
            report["failures"].append(dict(failure, engine=engine))
        report["ok"] = report["ok"] and sub["ok"]
    if not args.quiet:
        print(file=sys.stderr)
    report["seconds"] = round(time.perf_counter() - started, 2)
    pathlib.Path(args.report).write_text(
        json.dumps(report, indent=1, sort_keys=True) + "\n",
        encoding="utf-8")

    if report["ok"]:
        print(f"engine-diff: {report['points']} point(s) "
              f"({args.configs} config(s) x {len(workloads)} "
              f"workload(s) x {'+'.join(engines)}) bit-identical "
              f"across engine tiers in {report['seconds']}s")
        return 0
    print(f"engine-diff: {len(report['failures'])} of {report['points']} "
          f"point(s) DIVERGED (shrunk reproducers in {args.report}):",
          file=sys.stderr)
    for failure in report["failures"]:
        print(f"  [{failure['engine']}] {failure['point']}: "
              f"engine_used={failure['engine_used']} "
              f"mismatched={sorted(failure['mismatches'])}",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
