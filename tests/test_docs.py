"""Documentation suite stays truthful: links resolve, smoke blocks exist."""

import importlib.util
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_suite_exists():
    for name in ("architecture.md", "engine.md", "observability.md",
                 "renaming-policies.md", "reproducing-the-paper.md",
                 "resilience.md", "service.md"):
        assert (REPO_ROOT / "docs" / name).is_file(), name


def test_intra_repo_links_resolve():
    checker = load_checker()
    files = checker.doc_files()
    assert len(files) >= 4  # README + the three docs
    failures = checker.check_links(files)
    assert not failures, [
        f"{path.name}: {target} ({reason})"
        for path, target, reason in failures
    ]


def test_quickstart_smoke_blocks_are_marked():
    """The CI docs job runs `<!-- smoke -->` blocks; the convention must
    not silently disappear from the quickstart docs."""
    checker = load_checker()
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    engine = (REPO_ROOT / "docs" / "engine.md").read_text(encoding="utf-8")
    policies = (REPO_ROOT / "docs"
                / "renaming-policies.md").read_text(encoding="utf-8")
    service = (REPO_ROOT / "docs"
               / "service.md").read_text(encoding="utf-8")
    resilience = (REPO_ROOT / "docs"
                  / "resilience.md").read_text(encoding="utf-8")
    observability = (REPO_ROOT / "docs"
                     / "observability.md").read_text(encoding="utf-8")
    readme_blocks = list(checker.iter_smoke_blocks(readme))
    engine_blocks = list(checker.iter_smoke_blocks(engine))
    policy_blocks = list(checker.iter_smoke_blocks(policies))
    service_blocks = list(checker.iter_smoke_blocks(service))
    resilience_blocks = list(checker.iter_smoke_blocks(resilience))
    observability_blocks = list(checker.iter_smoke_blocks(observability))
    assert len(readme_blocks) >= 2  # CLI quickstart + library quickstart
    assert len(engine_blocks) >= 2  # cluster walkthrough + engine-tier A/B
    assert len(policy_blocks) >= 2  # registry walk + port sweep
    assert len(service_blocks) >= 1  # the gateway curl walkthrough
    assert len(resilience_blocks) >= 1  # the corrupt-and-repair loop
    assert len(observability_blocks) >= 1  # the trace/top/profile tour
    languages = {lang for lang, _ in
                 readme_blocks + engine_blocks + policy_blocks
                 + service_blocks + resilience_blocks
                 + observability_blocks}
    assert languages <= {"bash", "python"}
    # The cluster walkthrough really exercises the remote backend.
    assert any("--workers" in source for _, source in engine_blocks)
    # The engine-tier A/B really runs both tiers and compares them.
    assert any("--engine interp" in source and "--engine compiled" in source
               and "engine_fallbacks" in source
               for _, source in engine_blocks)
    # The policy walkthrough really exercises the registry + port model.
    assert any("policy_names" in source for _, source in policy_blocks)
    assert any("port-sweep" in source for _, source in policy_blocks)
    # The gateway walkthrough really serves HTTP with auth enforced.
    assert any("repro serve" in source for _, source in service_blocks)
    assert any("REPRO_TOKEN" in source for _, source in service_blocks)
    assert any("401" in source for _, source in service_blocks)
    # The resilience walkthrough really injects a fault and repairs it.
    assert any("REPRO_FAULTS" in source for _, source in resilience_blocks)
    assert any("verify --repair" in source
               for _, source in resilience_blocks)
    # The observability tour really traces a sweep and inspects it.
    assert any("--trace" in source for _, source in observability_blocks)
    assert any("repro trace" in source
               for _, source in observability_blocks)
    assert any("--profile" in source
               for _, source in observability_blocks)


def test_readme_links_docs_suite():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for target in ("docs/architecture.md", "docs/engine.md",
                   "docs/reproducing-the-paper.md"):
        assert target in readme, f"README must link {target}"
