"""Hypothesis property tests over random micro-traces.

These encode the invariants DESIGN.md §8 promises:

* any renaming scheme commits exactly the fetched instruction stream,
  in program order — renaming never changes architectural semantics;
* no configuration deadlocks for any NRR >= 1 (the paper's §3.3 claim);
* physical registers are conserved at every moment;
* the timing contract's arrows only point forward (fetch <= rename <=
  issue <= complete < commit).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.virtual_physical import AllocationStage
from repro.isa.instruction import TraceRecord
from repro.isa.opcodes import OpClass
from repro.isa.registers import NO_REG, RegClass, make_reg
from repro.uarch.config import (
    ProcessorConfig,
    RenamingScheme,
    conventional_config,
    virtual_physical_config,
)
from repro.uarch.processor import Processor

# --------------------------------------------------------------------------
# Random micro-trace strategy
# --------------------------------------------------------------------------

_INT_REGS = [make_reg(RegClass.INT, i) for i in range(1, 9)]
_FP_REGS = [make_reg(RegClass.FP, i) for i in range(8)]


@st.composite
def micro_trace(draw, max_len=60):
    n = draw(st.integers(min_value=1, max_value=max_len))
    records = []
    pc = 0x1000
    for _ in range(n):
        kind = draw(st.sampled_from(
            ["alu", "mul", "fp", "fpmul", "load", "fload", "store", "branch"]
        ))
        if kind == "alu":
            rec = TraceRecord(pc, OpClass.INT_ALU,
                              dest=draw(st.sampled_from(_INT_REGS)),
                              src1=draw(st.sampled_from(_INT_REGS)),
                              src2=draw(st.sampled_from(_INT_REGS + [NO_REG])))
        elif kind == "mul":
            rec = TraceRecord(pc, OpClass.INT_MUL,
                              dest=draw(st.sampled_from(_INT_REGS)),
                              src1=draw(st.sampled_from(_INT_REGS)))
        elif kind == "fp":
            rec = TraceRecord(pc, OpClass.FP_ADD,
                              dest=draw(st.sampled_from(_FP_REGS)),
                              src1=draw(st.sampled_from(_FP_REGS)))
        elif kind == "fpmul":
            rec = TraceRecord(pc, OpClass.FP_MUL,
                              dest=draw(st.sampled_from(_FP_REGS)),
                              src1=draw(st.sampled_from(_FP_REGS)),
                              src2=draw(st.sampled_from(_FP_REGS)))
        elif kind == "load":
            rec = TraceRecord(pc, OpClass.LOAD_INT,
                              dest=draw(st.sampled_from(_INT_REGS)),
                              src1=draw(st.sampled_from(_INT_REGS)),
                              addr=draw(st.integers(0, 255)) * 8)
        elif kind == "fload":
            rec = TraceRecord(pc, OpClass.LOAD_FP,
                              dest=draw(st.sampled_from(_FP_REGS)),
                              src1=draw(st.sampled_from(_INT_REGS)),
                              addr=draw(st.integers(0, 255)) * 8)
        elif kind == "store":
            rec = TraceRecord(pc, OpClass.STORE_INT,
                              src1=draw(st.sampled_from(_INT_REGS)),
                              src2=draw(st.sampled_from(_INT_REGS)),
                              addr=draw(st.integers(0, 255)) * 8)
        else:
            taken = draw(st.booleans())
            rec = TraceRecord(pc, OpClass.BRANCH,
                              src1=draw(st.sampled_from(_INT_REGS)),
                              taken=taken, target=pc + 4)
        records.append(rec)
        pc += 4
    return records


@st.composite
def any_config(draw):
    scheme = draw(st.sampled_from(["conv", "early", "wb", "issue"]))
    int_phys = draw(st.sampled_from([34, 40, 64]))
    fp_phys = draw(st.sampled_from([34, 40, 64]))
    if scheme == "conv":
        return conventional_config(int_phys=int_phys, fp_phys=fp_phys)
    if scheme == "early":
        return ProcessorConfig(scheme=RenamingScheme.EARLY_RELEASE,
                               int_phys=int_phys, fp_phys=fp_phys)
    nrr = draw(st.integers(1, min(int_phys, fp_phys) - 32))
    allocation = (AllocationStage.WRITEBACK if scheme == "wb"
                  else AllocationStage.ISSUE)
    return virtual_physical_config(
        nrr=nrr, allocation=allocation, int_phys=int_phys, fp_phys=fp_phys,
        retry_gating=draw(st.booleans()),
    )


def run(records, config):
    processor = Processor(config)
    commits = []
    orig = processor.renamer.on_commit

    def spy(instr):
        commits.append(instr.rec)
        orig(instr)

    processor.renamer.on_commit = spy
    result = processor.run(records)
    return result, commits


# --------------------------------------------------------------------------
# Properties
# --------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(records=micro_trace(), config=any_config())
def test_commits_exactly_the_trace_in_order(records, config):
    result, commits = run(records, config)
    assert result.stats.committed == len(records)
    assert commits == records  # same objects, same order


@settings(max_examples=60, deadline=None)
@given(records=micro_trace(), nrr=st.integers(1, 4),
       phys=st.sampled_from([34, 36, 40]))
def test_no_deadlock_with_tiny_register_files(records, nrr, phys):
    """The paper's §3.3 guarantee, stressed with minimal pools."""
    nrr = min(nrr, phys - 32)  # stay in the legal NRR range
    config = virtual_physical_config(nrr=nrr, int_phys=phys, fp_phys=phys)
    result, commits = run(records, config)
    assert result.stats.committed == len(records)


@settings(max_examples=40, deadline=None)
@given(records=micro_trace(max_len=40), config=any_config())
def test_register_conservation_every_cycle(records, config):
    processor = Processor(config)
    renamer = processor.renamer
    totals = {RegClass.INT: config.int_phys, RegClass.FP: config.fp_phys}
    orig_step = processor._step
    bad = []

    def checked():
        orig_step()
        for cls, expect in totals.items():
            got = renamer.free_physical(cls) + renamer.allocated_physical(cls)
            if got != expect:
                bad.append((processor.now, cls))

    processor._step = checked
    processor.run(records)
    assert not bad


@settings(max_examples=40, deadline=None)
@given(records=micro_trace(max_len=40), config=any_config())
def test_timeline_arrows_point_forward(records, config):
    processor = Processor(config)
    seen = []
    orig = processor.renamer.on_commit

    def spy(instr):
        seen.append(instr)
        orig(instr)

    processor.renamer.on_commit = spy
    processor.run(records)
    for instr in seen:
        assert 0 <= instr.fetch_at <= instr.rename_at
        if instr.first_issue_at >= 0:
            assert instr.rename_at < instr.first_issue_at
            assert instr.first_issue_at <= instr.completed_at
        assert instr.completed_at < instr.commit_at


@settings(max_examples=30, deadline=None)
@given(records=micro_trace(max_len=40))
def test_vp_max_nrr_not_slower_than_tiny_windows(records):
    """Sanity: the same machine with a 4x bigger ROB is not slower.

    Not strictly monotone: under write-back allocation a larger window
    admits more speculative writers, and their squash/re-execution
    traffic can cost a cycle or two on short traces — so allow a small
    slack rather than exact dominance.
    """
    small = virtual_physical_config(nrr=8, rob_size=16, iq_size=16)
    big = virtual_physical_config(nrr=8, rob_size=64, iq_size=64)
    cycles_small = run(records, small)[0].stats.cycles
    cycles_big = run(records, big)[0].stats.cycles
    assert cycles_big <= cycles_small * 1.1 + 5


@settings(max_examples=30, deadline=None)
@given(records=micro_trace(max_len=50))
def test_every_committed_vp_writer_holds_exactly_one_register(records):
    config = virtual_physical_config(nrr=4, int_phys=40, fp_phys=40)
    processor = Processor(config)
    orig = processor.renamer.on_commit
    bad = []

    def spy(instr):
        if instr.dest_cls is not None and instr.dest_phys < 0:
            bad.append(instr)
        orig(instr)

    processor.renamer.on_commit = spy
    processor.run(records)
    assert not bad


@settings(max_examples=40, deadline=None)
@given(records=micro_trace(max_len=50), config=any_config(),
       faults=st.lists(st.integers(0, 49), max_size=3, unique=True))
def test_precise_exceptions_preserve_the_commit_contract(records, config,
                                                         faults):
    """Faults flush+replay but never change what commits, in what order."""
    from repro.uarch.config import RenamingScheme

    if config.scheme is RenamingScheme.EARLY_RELEASE:
        return  # early release documents rollback as unsupported
    processor = Processor(config)
    commits = []
    orig = processor.renamer.on_commit

    def spy(instr):
        commits.append(instr.rec)
        orig(instr)

    processor.renamer.on_commit = spy
    processor.inject_faults([k for k in faults if k < len(records)])
    result = processor.run(records)
    assert result.stats.committed == len(records)
    assert commits == records
