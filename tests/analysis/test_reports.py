"""Report-formatting tests."""

import pytest

from repro.analysis.reports import (
    format_table,
    geometric_mean,
    harmonic_mean,
    speedup_table,
)


class TestMeans:
    def test_harmonic_mean_known_value(self):
        assert harmonic_mean([1, 1]) == pytest.approx(1.0)
        assert harmonic_mean([2, 6]) == pytest.approx(3.0)

    def test_harmonic_mean_of_paper_table2(self):
        # The paper's Table 2 column harmonic means.
        from repro.experiments.paper_data import TABLE2_CONVENTIONAL_IPC

        hm = harmonic_mean(TABLE2_CONVENTIONAL_IPC.values())
        assert hm == pytest.approx(1.23, abs=0.01)

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([1, 1, 1]) == pytest.approx(1.0)

    def test_means_reject_empty_and_nonpositive(self):
        for fn in (harmonic_mean, geometric_mean):
            with pytest.raises(ValueError):
                fn([])
            with pytest.raises(ValueError):
                fn([1.0, 0.0])


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len({len(line.rstrip()) for line in lines[1:2]}) == 1
        assert "long_header" in lines[0]

    def test_format_table_title(self):
        text = format_table(["a"], [["x"]], title="T")
        assert text.splitlines()[0] == "T"

    def test_speedup_table_contents(self):
        base = {"go": 1.0, "swim": 2.0}
        variant = {"go": 1.1, "swim": 3.0}
        text = speedup_table(["go", "swim"], base, [variant], ["vp"])
        assert "1.100" in text
        assert "1.500" in text
        assert "hmean" in text
