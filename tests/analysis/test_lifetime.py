"""Register-lifetime model tests — must reproduce §3.1's exact numbers."""

import pytest

from repro.analysis.lifetime import (
    AllocationPolicy,
    LifetimeEvent,
    RegisterPressureModel,
    section_3_1_example,
)
from repro.experiments import paper_data


class TestSection31:
    """The paper's worked example: 151 -> 38 (write-back) / 88 (issue)."""

    def test_decode_pressure(self):
        model = section_3_1_example()
        assert model.pressure(AllocationPolicy.DECODE) == \
            paper_data.SECTION31_PRESSURE_DECODE == 151

    def test_writeback_pressure(self):
        model = section_3_1_example()
        assert model.pressure(AllocationPolicy.WRITEBACK) == \
            paper_data.SECTION31_PRESSURE_WRITEBACK == 38

    def test_issue_pressure(self):
        model = section_3_1_example()
        assert model.pressure(AllocationPolicy.ISSUE) == \
            paper_data.SECTION31_PRESSURE_ISSUE == 88

    def test_writeback_reduction_is_75_percent(self):
        model = section_3_1_example()
        assert model.reduction_vs_decode(AllocationPolicy.WRITEBACK) == \
            pytest.approx(0.748, abs=0.01)

    def test_issue_reduction_is_42_percent(self):
        model = section_3_1_example()
        assert model.reduction_vs_decode(AllocationPolicy.ISSUE) == \
            pytest.approx(0.417, abs=0.01)

    def test_per_instruction_held_cycles(self):
        # Paper: p1..p3 held 42/52/57 cycles at decode allocation and
        # 21/11/6 at write-back allocation.
        model = section_3_1_example()
        assert model.per_instruction(AllocationPolicy.DECODE) == {
            "load": 42, "fdiv": 52, "fmul": 57,
        }
        assert model.per_instruction(AllocationPolicy.WRITEBACK) == {
            "load": 21, "fdiv": 11, "fmul": 6,
        }
        assert model.per_instruction(AllocationPolicy.ISSUE) == {
            "load": 41, "fdiv": 31, "fmul": 16,
        }


class TestLifetimeEvent:
    def test_schedule_must_be_ordered(self):
        with pytest.raises(ValueError):
            LifetimeEvent("x", decode=5, issue=3, complete=7, release=9)
        with pytest.raises(ValueError):
            LifetimeEvent("x", decode=0, issue=3, complete=7, release=6)

    def test_allocation_cycle_per_policy(self):
        e = LifetimeEvent("x", decode=0, issue=5, complete=9, release=20)
        assert e.allocation_cycle(AllocationPolicy.DECODE) == 0
        assert e.allocation_cycle(AllocationPolicy.ISSUE) == 5
        assert e.allocation_cycle(AllocationPolicy.WRITEBACK) == 9

    def test_held_cycles_ordering(self):
        e = LifetimeEvent("x", decode=0, issue=5, complete=9, release=20)
        held = [e.held_cycles(p) for p in (
            AllocationPolicy.DECODE, AllocationPolicy.ISSUE,
            AllocationPolicy.WRITEBACK)]
        assert held == sorted(held, reverse=True)


class TestModel:
    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            RegisterPressureModel([])

    def test_writeback_never_worse_than_issue_or_decode(self):
        e = LifetimeEvent("x", decode=0, issue=2, complete=10, release=30)
        model = RegisterPressureModel([e])
        wb = model.pressure(AllocationPolicy.WRITEBACK)
        assert wb <= model.pressure(AllocationPolicy.ISSUE)
        assert wb <= model.pressure(AllocationPolicy.DECODE)
