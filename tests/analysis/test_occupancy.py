"""Occupancy sampler tests."""

import pytest

from repro.analysis.occupancy import OccupancySampler, OccupancySeries
from repro.trace.generator import SyntheticTrace
from repro.trace.workloads import load_workload
from repro.uarch.config import conventional_config, virtual_physical_config
from repro.uarch.processor import Processor


def sampled_run(config, n=1500, interval=8):
    processor = Processor(config)
    sampler = OccupancySampler.attach(processor, interval=interval)
    trace = SyntheticTrace(load_workload("swim"), 7)
    processor.run(trace, max_instructions=n, skip=200)
    return sampler.series


class TestSampling:
    def test_sample_count_matches_cycles(self):
        series = sampled_run(conventional_config(), interval=8)
        assert len(series.int_regs) == len(series.fp_regs) == len(series.rob)
        assert len(series.rob) > 10

    def test_bounds(self):
        series = sampled_run(conventional_config())
        assert all(32 <= v <= 64 for v in series.int_regs)
        assert all(32 <= v <= 64 for v in series.fp_regs)
        assert all(0 <= v <= 128 for v in series.rob)

    def test_vp_occupancy_below_conventional(self):
        conv = sampled_run(conventional_config())
        late = sampled_run(virtual_physical_config(nrr=32))
        assert (sum(late.fp_regs) / len(late.fp_regs)
                < sum(conv.fp_regs) / len(conv.fp_regs))

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            OccupancySampler(interval=0)


class TestSummary:
    def test_summary_fields(self):
        series = sampled_run(conventional_config())
        summary = series.summary()
        for key in ("int_regs", "fp_regs", "rob"):
            stats = summary[key]
            assert stats["min"] <= stats["mean"] <= stats["max"]
            assert stats["min"] <= stats["p95"] <= stats["max"]

    def test_empty_summary(self):
        series = OccupancySeries(interval=1)
        assert series.summary()["rob"]["mean"] == 0.0


class TestSparkline:
    def test_sparkline_width(self):
        series = sampled_run(conventional_config())
        line = series.sparkline("fp_regs", width=40)
        assert 0 < len(line) <= 40

    def test_sparkline_empty(self):
        assert OccupancySeries(interval=1).sparkline() == "(empty)"

    def test_sparkline_scales_with_ceiling(self):
        series = OccupancySeries(interval=1, fp_regs=[1, 2, 3, 60])
        low = series.sparkline("fp_regs", ceiling=60)
        assert low[-1] == "@"
