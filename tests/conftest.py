"""Shared fixtures and micro-trace builders for the test suite."""

from __future__ import annotations

import pytest

from repro.isa.instruction import TraceRecord
from repro.isa.opcodes import OpClass
from repro.isa.registers import NO_REG, RegClass, make_reg
from repro.uarch.config import (
    ProcessorConfig,
    RenamingScheme,
    conventional_config,
    virtual_physical_config,
)
from repro.uarch.processor import Processor

# ---------------------------------------------------------------------------
# Micro-trace builders: tiny assembler for hand-written dynamic traces.
# ---------------------------------------------------------------------------

_PC_STEP = 4


class TraceBuilder:
    """Builds a list of TraceRecords with auto-incrementing PCs."""

    def __init__(self, base_pc=0x1000):
        self.records = []
        self._pc = base_pc

    def _next_pc(self):
        pc = self._pc
        self._pc += _PC_STEP
        return pc

    def alu(self, dest, src1, src2=None, op=OpClass.INT_ALU):
        self.records.append(TraceRecord(
            self._next_pc(), op, dest=dest, src1=src1,
            src2=NO_REG if src2 is None else src2,
        ))
        return self

    def fp(self, dest, src1, src2=None, op=OpClass.FP_ADD):
        self.records.append(TraceRecord(
            self._next_pc(), op, dest=dest, src1=src1,
            src2=NO_REG if src2 is None else src2,
        ))
        return self

    def load(self, dest, base, addr, fp=False):
        op = OpClass.LOAD_FP if fp else OpClass.LOAD_INT
        self.records.append(TraceRecord(
            self._next_pc(), op, dest=dest, src1=base, addr=addr,
        ))
        return self

    def store(self, base, value, addr, fp=False):
        op = OpClass.STORE_FP if fp else OpClass.STORE_INT
        self.records.append(TraceRecord(
            self._next_pc(), op, src1=base, src2=value, addr=addr,
        ))
        return self

    def branch(self, src, taken, target=None):
        pc = self._next_pc()
        self.records.append(TraceRecord(
            pc, OpClass.BRANCH, src1=src, taken=taken,
            target=target if target is not None else pc + _PC_STEP,
        ))
        return self

    def build(self):
        return list(self.records)


def r(i):
    """Integer register shortcut."""
    return make_reg(RegClass.INT, i)


def f(i):
    """FP register shortcut."""
    return make_reg(RegClass.FP, i)


def run_trace(records, config=None, warm_addresses=()):
    """Run a micro-trace to completion; returns (processor, result)."""
    processor = Processor(config or conventional_config())
    if warm_addresses:
        processor.mem.cache.warm(warm_addresses)
    result = processor.run(records)
    return processor, result


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


@pytest.fixture(autouse=True)
def _no_ambient_service_token(monkeypatch):
    """Auth is opt-in per test: a developer's exported ``REPRO_TOKEN``
    must not silently secure every worker and gateway the suite
    starts."""
    monkeypatch.delenv("REPRO_TOKEN", raising=False)


@pytest.fixture
def tb():
    return TraceBuilder()


@pytest.fixture
def conv_config():
    return conventional_config()


@pytest.fixture
def vp_config():
    return virtual_physical_config(nrr=32)


@pytest.fixture
def small_configs():
    """A spread of schemes for cross-scheme behavioural tests."""
    from repro.core.virtual_physical import AllocationStage

    return [
        conventional_config(),
        ProcessorConfig(scheme=RenamingScheme.EARLY_RELEASE),
        virtual_physical_config(nrr=32),
        virtual_physical_config(nrr=1),
        virtual_physical_config(nrr=8, allocation=AllocationStage.ISSUE),
    ]
