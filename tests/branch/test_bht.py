"""Branch History Table tests: 2-bit saturating-counter semantics."""

import pytest

from repro.branch.bht import (
    BranchHistoryTable,
    PerfectPredictor,
    StaticTakenPredictor,
    STRONG_NOT_TAKEN,
    STRONG_TAKEN,
    WEAK_NOT_TAKEN,
    WEAK_TAKEN,
)


class TestCounterStateMachine:
    def test_initial_prediction_not_taken(self):
        bht = BranchHistoryTable(16)
        assert not bht.predict(0x100)

    def test_single_taken_flips_weak_counter(self):
        bht = BranchHistoryTable(16, initial=WEAK_NOT_TAKEN)
        bht.update(0x100, True)
        assert bht.predict(0x100)  # weak-not-taken -> weak-taken

    def test_saturation_at_strong_taken(self):
        bht = BranchHistoryTable(16)
        for _ in range(10):
            bht.update(0x100, True)
        assert bht.counter(0x100) == STRONG_TAKEN

    def test_saturation_at_strong_not_taken(self):
        bht = BranchHistoryTable(16, initial=STRONG_TAKEN)
        for _ in range(10):
            bht.update(0x100, False)
        assert bht.counter(0x100) == STRONG_NOT_TAKEN

    def test_hysteresis_survives_single_anomaly(self):
        # A strongly-taken branch stays predicted taken after one
        # not-taken outcome — the whole point of 2-bit counters.
        bht = BranchHistoryTable(16)
        for _ in range(4):
            bht.update(0x100, True)
        bht.update(0x100, False)
        assert bht.predict(0x100)

    def test_weak_states_flip_on_single_outcome(self):
        bht = BranchHistoryTable(16, initial=WEAK_TAKEN)
        bht.update(0x40, False)
        assert not bht.predict(0x40)


class TestIndexing:
    def test_paper_table_size(self):
        bht = BranchHistoryTable()
        assert bht.entries == 2048

    def test_word_granular_indexing(self):
        # Adjacent 4-byte instructions map to different entries.
        bht = BranchHistoryTable(16)
        bht.update(0x100, True)
        bht.update(0x100, True)
        assert bht.predict(0x100)
        assert not bht.predict(0x104)

    def test_aliasing_wraps_modulo_entries(self):
        bht = BranchHistoryTable(16)
        # Entries wrap every entries*4 bytes of PC space.
        bht.update(0x0, True)
        bht.update(0x0, True)
        assert bht.predict(16 * 4)  # aliases with PC 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            BranchHistoryTable(100)

    def test_bad_initial_rejected(self):
        with pytest.raises(ValueError):
            BranchHistoryTable(16, initial=7)


class TestAccuracyTracking:
    def test_loop_branch_accuracy_high(self):
        # A branch taken 63 of every 64 times predicts well.
        bht = BranchHistoryTable(64)
        correct = 0
        total = 0
        for _ in range(20):
            for i in range(64):
                taken = i != 63
                correct += bht.predict_and_train(0x200, taken)
                total += 1
        assert correct / total > 0.9

    def test_random_branch_accuracy_low(self):
        import random

        rng = random.Random(7)
        bht = BranchHistoryTable(64)
        for _ in range(2000):
            bht.predict_and_train(0x300, rng.random() < 0.5)
        assert 0.3 < bht.accuracy < 0.7

    def test_accuracy_zero_before_lookups(self):
        assert BranchHistoryTable(16).accuracy == 0.0


class TestOtherPredictors:
    def test_static_taken(self):
        pred = StaticTakenPredictor()
        assert pred.predict(0x0) is True
        pred.update(0x0, False)
        assert pred.predict(0x0) is True

    def test_perfect_returns_outcome(self):
        pred = PerfectPredictor()
        assert pred.predict_with_outcome(0x0, True) is True
        assert pred.predict_with_outcome(0x0, False) is False
