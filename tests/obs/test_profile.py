"""Opt-in engine profiling: off by default, bit-identical when off."""

import pytest

from repro.engine import ResultStore, RunSpec, execute_spec
from repro.obs.profile import (
    STALL_FIELDS,
    attach_profile,
    build_profile,
    profiling_enabled,
)
from repro.uarch.config import conventional_config


def small_spec(seed=3):
    return RunSpec("go", conventional_config()).resolved(400, 100, seed)


class TestSwitch:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert not profiling_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", ""])
    def test_falsey_values_disable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_PROFILE", value)
        assert not profiling_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_PROFILE", value)
        assert profiling_enabled()


class TestAttach:
    def test_off_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        result = execute_spec(small_spec())
        assert "profile" not in result.extra

    def test_on_attaches_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        result = execute_spec(small_spec())
        profile = result.extra["profile"]
        assert profile["kips"] > 0
        assert profile["elapsed"] > 0
        assert profile["committed"] == result.stats.committed
        assert set(profile["stalls"]) == set(STALL_FIELDS)
        for entry in profile["stalls"].values():
            assert 0.0 <= entry["frac"] <= 1.0
            assert entry["count"] >= 0

    def test_profile_never_mutates_stats(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        plain = execute_spec(small_spec()).to_dict()
        monkeypatch.setenv("REPRO_PROFILE", "1")
        profiled = execute_spec(small_spec())
        stripped = profiled.to_dict()
        stripped["extra"] = {k: v for k, v in stripped["extra"].items()
                             if k != "profile"}
        assert stripped == plain

    def test_build_profile_handles_zero_elapsed(self):
        result = execute_spec(small_spec())
        profile = build_profile(result, 0.0)
        assert profile["kips"] == 0.0

    def test_attach_returns_result_for_chaining(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        result = execute_spec(small_spec())
        assert attach_profile(result, 0.1) is result


class TestStoreStripping:
    def test_persisted_records_are_bit_identical(self, tmp_path,
                                                 monkeypatch):
        """The store must strip extra['profile'] so on-disk records are
        byte-identical with profiling on or off."""
        spec = small_spec(seed=5)

        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        store_off = ResultStore(tmp_path / "off")
        store_off.put(spec.key(), execute_spec(spec))

        monkeypatch.setenv("REPRO_PROFILE", "1")
        result = execute_spec(spec)
        assert "profile" in result.extra
        store_on = ResultStore(tmp_path / "on")
        store_on.put(spec.key(), result)

        # The live result keeps its profile — only persistence strips.
        assert "profile" in result.extra

        def payload(directory):
            (segment,) = ResultStore(directory).segment_paths()
            return segment.read_bytes()

        assert payload(tmp_path / "on") == payload(tmp_path / "off")

    def test_round_tripped_record_has_no_profile(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "1")
        spec = small_spec(seed=9)
        store = ResultStore(tmp_path)
        store.put(spec.key(), execute_spec(spec))
        recalled = ResultStore(tmp_path).get(spec.key())
        assert "profile" not in (recalled.extra or {})
