"""Metrics registry and Prometheus text exposition (format 0.0.4)."""

import importlib.util
import math
import pathlib
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    get_registry,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_scrape.prom"


def load_checker():
    """The CI scrape validator, imported straight from tools/."""
    spec = importlib.util.spec_from_file_location(
        "metrics_check", REPO_ROOT / "tools" / "metrics_check.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def golden_registry():
    """A deterministic registry whose render is pinned byte-for-byte."""
    registry = MetricsRegistry()
    jobs = registry.counter("repro_test_jobs_total", "Jobs per tenant.",
                            labelnames=("client",))
    jobs.inc(client="alice")
    jobs.inc(3, client='evil"tenant\\with\nnewline')
    uptime = registry.gauge("repro_test_uptime_seconds",
                            "Seconds since start.")
    uptime.set(12.5)
    latency = registry.histogram(
        "repro_test_latency_seconds", "Chunk latency.",
        labelnames=("worker",), buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.05, 0.5, 2.0, 99.0):
        latency.observe(value, worker="w1")
    return registry


class TestValidation:
    def test_metric_name_charset_enforced(self):
        for bad in ("2leading", "has-dash", "has space", ""):
            with pytest.raises(ValueError):
                Counter(bad, "x")
        Counter("legal:name_0", "x")  # colons/underscores/digits are fine

    def test_label_name_charset_enforced(self):
        for bad in ("2x", "has-dash", "", "__reserved"):
            with pytest.raises(ValueError):
                Counter("ok", "x", labelnames=(bad,))

    def test_exact_label_set_required(self):
        counter = Counter("ok", "x", labelnames=("client",))
        with pytest.raises(ValueError):
            counter.inc()  # missing
        with pytest.raises(ValueError):
            counter.inc(client="a", extra="b")  # surplus

    def test_counters_only_increase(self):
        counter = Counter("ok", "x")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_label_value_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"


class TestInstruments:
    def test_counter_accumulates_per_series(self):
        counter = Counter("c", "x", labelnames=("k",))
        counter.inc(k="a")
        counter.inc(2, k="a")
        counter.inc(k="b")
        assert counter.value(k="a") == 3
        assert counter.value(k="b") == 1
        assert counter.value(k="never") == 0

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g", "x")
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value() == 3

    def test_histogram_buckets_are_cumulative_and_capped_by_count(self):
        hist = Histogram("h", "x", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        lines = hist.render()
        buckets = [line for line in lines if "_bucket" in line]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        # Cumulative: monotone non-decreasing, +Inf equals _count.
        assert counts == sorted(counts)
        assert buckets[-1].startswith('h_bucket{le="+Inf"}')
        assert counts[-1] == 5
        (count_line,) = [line for line in lines
                         if line.startswith("h_count")]
        assert count_line == "h_count 5"

    def test_histogram_percentiles_from_reservoir(self):
        hist = Histogram("h", "x", labelnames=("w",))
        assert hist.percentile(50, w="a") is None
        for value in range(1, 101):
            hist.observe(value / 100.0, w="a")
        assert hist.percentile(50, w="a") == pytest.approx(0.5, abs=0.02)
        assert hist.percentile(95, w="a") == pytest.approx(0.95, abs=0.02)
        p50, p95 = hist.percentile(50, w="a"), hist.percentile(95, w="a")
        assert p50 <= p95

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", "x", buckets=())

    def test_default_buckets_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("c", "x", labelnames=("k",))
        b = registry.counter("c", "x", labelnames=("k",))
        assert a is b

    def test_kind_or_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("c", "x", labelnames=("k",))
        with pytest.raises(ValueError):
            registry.gauge("c", "x", labelnames=("k",))
        with pytest.raises(ValueError):
            registry.counter("c", "x", labelnames=("other",))

    def test_broken_collector_does_not_kill_the_scrape(self):
        registry = MetricsRegistry()
        registry.counter("c", "x").inc()

        def explode():
            raise RuntimeError("collector bug")

        registry.add_collector(explode)
        assert "c 1" in registry.render()

    def test_process_default_registry_is_shared(self):
        assert get_registry() is get_registry()

    def test_snapshot_shape(self):
        registry = golden_registry()
        snap = registry.snapshot()
        assert snap["repro_test_jobs_total"]["kind"] == "counter"
        series = snap["repro_test_jobs_total"]["series"]
        assert {"labels": {"client": "alice"}, "value": 1.0} in series
        hist = snap["repro_test_latency_seconds"]["series"]
        assert hist == [{"labels": {"worker": "w1"}, "count": 5,
                         "sum": pytest.approx(101.6)}]

    def test_concurrent_increments_are_not_lost(self):
        counter = MetricsRegistry().counter("c", "x")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 8000


class TestExposition:
    def test_render_passes_the_ci_scrape_validator(self):
        checker = load_checker()
        samples, families = checker.validate_text(
            golden_registry().render())
        assert families == {
            "repro_test_jobs_total": "counter",
            "repro_test_uptime_seconds": "gauge",
            "repro_test_latency_seconds": "histogram",
        }
        checker.require_series(
            samples, 'repro_test_jobs_total{client="alice"}')

    def test_escaped_label_values_round_trip(self):
        checker = load_checker()
        samples, _ = checker.validate_text(golden_registry().render())
        values = {labels["client"]
                  for name, labels, _ in samples
                  if name == "repro_test_jobs_total"}
        # The checker unescapes nothing: the escaped form is on the wire.
        assert 'evil\\"tenant\\\\with\\nnewline' in values

    def test_inf_and_integral_value_formatting(self):
        from repro.obs.metrics import _format_value

        assert _format_value(math.inf) == "+Inf"
        assert _format_value(-math.inf) == "-Inf"
        assert _format_value(float("nan")) == "NaN"
        assert _format_value(3.0) == "3"
        assert _format_value(0.25) == "0.25"

    def test_golden_scrape_is_byte_identical(self):
        """The full exposition is pinned: any formatting drift — header
        order, label escaping, float rendering, cumulative buckets —
        must be a conscious fixture update."""
        rendered = golden_registry().render()
        assert rendered == GOLDEN.read_text(encoding="utf-8")
