"""Telemetry across the remote backend: wire trace, spans, latency."""

import os

import pytest

from repro.engine import RemoteExecutor, RunSpec, WorkerServer
from repro.obs.metrics import get_registry
from repro.obs.tracing import new_trace_id, read_spans, trace_context
from repro.uarch.config import conventional_config, virtual_physical_config


def small_grid(seed=13):
    return [RunSpec(w, c).resolved(400, 100, seed)
            for w in ("go", "swim")
            for c in (conventional_config(),
                      virtual_physical_config(nrr=8))]


@pytest.fixture
def worker(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    server = WorkerServer(port=0)
    server.serve_in_thread()
    yield server
    server.shutdown()
    server.server_close()


class TestWireTrace:
    def test_trace_crosses_the_executor_and_lands_in_worker_spans(
            self, worker, tmp_path):
        executor = RemoteExecutor(workers=[worker.address], max_task_attempts=2)
        trace = new_trace_id()
        specs = small_grid()
        with trace_context(trace):
            results = executor.run(specs)
        assert len(results) == len(specs)

        spans = read_spans(directory=tmp_path, trace=trace)
        phases = {span["phase"] for span in spans}
        # Coordinator side records chunk dispatches; the worker (same
        # process, in-thread server) records run + store phases.
        assert "chunk" in phases
        assert "run" in phases
        names = {span["name"] for span in spans}
        assert "remote.chunk" in names
        assert "worker.run-batch" in names
        assert {span["trace"] for span in spans} == {trace}

    def test_untraced_remote_run_writes_no_spans(self, worker, tmp_path):
        executor = RemoteExecutor(workers=[worker.address], max_task_attempts=2)
        executor.run(small_grid(seed=17))
        assert read_spans(directory=tmp_path) == []

    def test_worker_tolerates_missing_trace_field(self, worker):
        """Version tolerance: the wire field is optional both ways."""
        payload = {
            "op": "run_batch",
            "specs": [spec.to_dict() for spec in small_grid(seed=19)[:1]],
        }
        from repro.engine.remote import _request

        reply = _request(worker.address, payload, timeout=30)
        assert reply["ok"]
        assert len(reply["results"]) == 1


class TestLatencyReport:
    def test_worker_latency_in_last_run_report(self, worker):
        executor = RemoteExecutor(workers=[worker.address], max_task_attempts=2)
        executor.run(small_grid(seed=23))
        report = executor.last_run_report
        key = "%s:%d" % worker.address
        latency = report["worker_latency"][key]
        assert set(latency) == {"p50", "p95", "chunks", "retries",
                                "breaker_opens"}
        assert latency["chunks"] >= 1
        assert latency["p50"] is not None
        assert latency["p50"] <= latency["p95"]
        assert latency["breaker_opens"] == 0

    def test_chunk_metrics_accumulate_in_the_registry(self, worker):
        executor = RemoteExecutor(workers=[worker.address], max_task_attempts=2)
        key = "%s:%d" % worker.address
        chunks = get_registry().counter(
            "repro_remote_chunks_total",
            "Chunks dispatched to remote workers.",
            labelnames=("worker", "outcome"))
        before = chunks.value(worker=key, outcome="ok")
        executor.run(small_grid(seed=29))
        assert chunks.value(worker=key, outcome="ok") > before

    def test_worker_spec_counters_move(self, worker):
        sources = get_registry().counter(
            "repro_worker_specs_total",
            "Specs served by this worker process.",
            labelnames=("source",))
        before = sources.value(source="executed")
        worker_pid_specs = small_grid(seed=31)
        RemoteExecutor(workers=[worker.address],
                       max_task_attempts=2).run(worker_pid_specs)
        assert (sources.value(source="executed")
                >= before + len(worker_pid_specs))


class TestBreakerCallback:
    def test_on_open_fires_outside_the_lock(self):
        from repro.engine.resilience import CircuitBreaker

        opened = []
        breaker = CircuitBreaker(threshold=2, cooldown=60,
                                 on_open=opened.append)
        breaker.record_failure("w1")
        assert opened == []
        breaker.record_failure("w1")
        assert opened == ["w1"]
        # Already open: further failures do not re-fire.
        breaker.record_failure("w1")
        assert opened == ["w1"]

    def test_half_open_probe_failure_refires(self):
        from repro.engine.resilience import CircuitBreaker

        clock = [0.0]
        opened = []
        breaker = CircuitBreaker(threshold=1, cooldown=10,
                                 clock=lambda: clock[0],
                                 on_open=opened.append)
        breaker.record_failure("w1")
        assert opened == ["w1"]
        clock[0] = 11.0  # cooldown elapsed: half-open probe allowed
        assert breaker.allows("w1")
        breaker.record_failure("w1")  # probe failed: open again
        assert opened == ["w1", "w1"]
