"""Trace spans: propagation, JSONL durability, and engine coverage."""

import json
import os
import threading

from repro.engine import BatchEngine, ResultStore, RunSpec, SerialExecutor
from repro.obs.tracing import (
    SPAN_PHASES,
    SpanLog,
    current_trace,
    new_trace_id,
    read_spans,
    record_span,
    telemetry_dir,
    telemetry_enabled,
    telemetry_stats,
    trace_context,
)
from repro.uarch.config import conventional_config


def small_spec(workload="go", seed=7):
    return RunSpec(workload, conventional_config()).resolved(400, 100, seed)


class TestContext:
    def test_thread_local_binding_restores(self):
        assert current_trace() is None
        with trace_context("t1"):
            assert current_trace() == "t1"
            with trace_context("t2"):
                assert current_trace() == "t2"
            assert current_trace() == "t1"
        assert current_trace() is None

    def test_none_is_a_passthrough(self):
        with trace_context("outer"):
            with trace_context(None):
                assert current_trace() == "outer"

    def test_context_does_not_leak_across_threads(self):
        seen = {}

        def probe():
            seen["trace"] = current_trace()

        with trace_context("t1"):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["trace"] is None

    def test_trace_ids_are_unique_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(t) == 32 and int(t, 16) >= 0 for t in ids)


class TestSpanLog:
    def test_records_are_whole_lines(self, tmp_path):
        log = SpanLog(tmp_path)
        for i in range(10):
            log.append({"i": i})
        log.close()
        (segment,) = list(tmp_path.iterdir())
        lines = segment.read_text().splitlines()
        assert [json.loads(line)["i"] for line in lines] == list(range(10))

    def test_io_failure_flips_broken_and_drops(self, tmp_path):
        log = SpanLog(tmp_path / "nope")
        log._ensure_fd()
        os.close(log._fd)  # sabotage: writes now fail EBADF
        log.append({"x": 1})
        assert log.broken
        log.append({"x": 2})  # silently dropped, no raise
        log._fd = None  # avoid double-close in any cleanup

    def test_corrupt_lines_are_skipped_and_counted(self, tmp_path):
        trace = new_trace_id()
        record_span("run", "n", 1.0, 0.5, trace=trace,
                    directory=tmp_path)
        (segment,) = [p for p in (tmp_path / "telemetry").iterdir()]
        with open(segment, "a", encoding="utf-8") as fh:
            fh.write('{"torn": \n')
        assert len(read_spans(directory=tmp_path, trace=trace)) == 1
        stats = telemetry_stats(directory=tmp_path)
        assert stats["spans"] == 1
        assert stats["corrupt"] == 1
        assert stats["segments"] == 1


class TestRecordSpan:
    def test_untraced_spans_are_dropped(self, tmp_path):
        assert record_span("run", "n", 1.0, 0.1,
                           directory=tmp_path) is None
        assert read_spans(directory=tmp_path) == []

    def test_ambient_trace_is_picked_up(self, tmp_path):
        trace = new_trace_id()
        with trace_context(trace):
            span = record_span("run", "n", 1.0, 0.1, directory=tmp_path)
        assert span is not None
        (record,) = read_spans(directory=tmp_path)
        assert record["trace"] == trace
        assert record["span"] == span
        assert record["phase"] == "run"
        assert record["pid"] == os.getpid()

    def test_telemetry_kill_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert not telemetry_enabled()
        assert record_span("run", "n", 1.0, 0.1, trace="t",
                           directory=tmp_path) is None
        assert read_spans(directory=tmp_path) == []

    def test_schema_fields(self, tmp_path):
        record_span("store", "engine.store-put", 5.0, 0.25,
                    trace="t", parent="p", outcome="error",
                    attrs={"key": "k"}, directory=tmp_path)
        (record,) = read_spans(directory=tmp_path)
        assert set(record) == {"trace", "span", "parent", "phase",
                               "name", "host", "pid", "start", "dur",
                               "outcome", "attrs"}
        assert record["parent"] == "p"
        assert record["outcome"] == "error"
        assert record["attrs"] == {"key": "k"}

    def test_read_spans_sorted_and_filtered(self, tmp_path):
        record_span("run", "b", 2.0, 0.1, trace="t1", directory=tmp_path)
        record_span("run", "a", 1.0, 0.1, trace="t2", directory=tmp_path)
        spans = read_spans(directory=tmp_path)
        assert [s["name"] for s in spans] == ["a", "b"]
        assert [s["trace"] for s in read_spans(directory=tmp_path,
                                               trace="t1")] == ["t1"]


class TestEngineCoverage:
    """A traced BatchEngine run must leave the acceptance span trail."""

    def test_traced_run_covers_queue_dispatch_run_store(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        engine = BatchEngine(SerialExecutor(), store=ResultStore(tmp_path))
        trace = new_trace_id()
        specs = [small_spec("go"), small_spec("swim")]
        engine.run(specs, trace=trace)

        spans = read_spans(directory=tmp_path, trace=trace)
        phases = {span["phase"] for span in spans}
        assert {"queue", "dispatch", "run", "store"} <= phases
        assert phases <= set(SPAN_PHASES)
        assert {span["trace"] for span in spans} == {trace}
        runs = [span for span in spans if span["phase"] == "run"]
        assert {span["attrs"]["workload"] for span in runs} == {"go",
                                                                "swim"}
        assert all(span["outcome"] == "ok" for span in spans)

    def test_cache_served_rerun_skips_execution_phases(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = ResultStore(tmp_path)
        spec = small_spec("compress")
        BatchEngine(SerialExecutor(), store=store).run([spec])

        trace = new_trace_id()
        BatchEngine(SerialExecutor(),
                    store=ResultStore(tmp_path)).run([spec], trace=trace)
        spans = read_spans(directory=tmp_path, trace=trace)
        phases = {span["phase"] for span in spans}
        assert "queue" in phases  # the cache scan is still visible
        assert "run" not in phases  # nothing executed
        (scan,) = [s for s in spans if s["name"] == "engine.cache-scan"]
        assert scan["attrs"]["store_hits"] == 1
        assert scan["attrs"]["pending"] == 0

    def test_untraced_run_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        BatchEngine(SerialExecutor()).run([small_spec()])
        assert read_spans(directory=tmp_path) == []

    def test_ambient_context_traces_a_plain_run(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        trace = new_trace_id()
        with trace_context(trace):
            BatchEngine(SerialExecutor()).run([small_spec(seed=11)])
        spans = read_spans(directory=tmp_path, trace=trace)
        assert {span["phase"] for span in spans} >= {"dispatch", "run"}
