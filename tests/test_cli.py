"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "gcc"])

    def test_scheme_choices(self):
        args = build_parser().parse_args(
            ["run", "swim", "--scheme", "vp-issue"])
        assert args.scheme == "vp-issue"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "swim", "--scheme", "magic"])


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("go", "swim", "hydro2d"):
            assert name in out

    def test_run_conventional(self, capsys):
        rc = main(["run", "go", "-n", "400", "--skip", "50"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "go" in out

    def test_run_vp_with_nrr(self, capsys):
        rc = main(["run", "swim", "-n", "400", "--skip", "50",
                   "--scheme", "vp-writeback", "--nrr", "8"])
        assert rc == 0
        assert "IPC" in capsys.readouterr().out

    def test_run_early_release(self, capsys):
        rc = main(["run", "li", "-n", "300", "--skip", "50",
                   "--scheme", "early-release"])
        assert rc == 0

    def test_run_with_phys_override(self, capsys):
        rc = main(["run", "swim", "-n", "300", "--skip", "50",
                   "--scheme", "vp-writeback", "--phys", "48"])
        assert rc == 0

    def test_compare(self, capsys):
        rc = main(["compare", "go", "-n", "400", "--skip", "50"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "conventional" in out and "vp-writeback" in out

    def test_port_sweep_monotone(self, capsys):
        rc = main(["port-sweep", "--read-ports", "16,2",
                   "--policies", "conventional", "--workloads", "go",
                   "-n", "600", "--skip", "50", "--check-monotone",
                   "--no-cache"])
        out = capsys.readouterr().out
        assert "Port sensitivity" in out and "16 ports" in out
        assert rc == 0
        assert "monotonicity: OK" in out

    def test_port_sweep_monotone_gate_skips_writeback(self, capsys):
        """vp-writeback is documented as legitimately non-monotone, so
        --check-monotone must not gate it."""
        rc = main(["port-sweep", "--read-ports", "16,2",
                   "--policies", "vp-writeback", "--workloads", "go",
                   "-n", "400", "--skip", "40", "--check-monotone",
                   "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "not gated for vp-writeback" in out
        assert "nothing gated" in out  # no malformed empty OK line
        assert "monotonicity: OK" not in out

    def test_port_sweep_rejects_unknown_policy(self):
        with pytest.raises(SystemExit, match="unknown renaming policy"):
            main(["port-sweep", "--policies", "magic"])

    def test_port_sweep_rejects_bad_ports(self):
        with pytest.raises(SystemExit, match="read-ports"):
            main(["port-sweep", "--read-ports", "sixteen"])
        # Below the structural floor: a clean message, not a traceback.
        with pytest.raises(SystemExit, match=">= 2"):
            main(["port-sweep", "--read-ports", "16,1"])

    def test_run_scheme_choices_come_from_registry(self):
        from repro.core.policy import policy_names

        parser = build_parser()
        args = parser.parse_args(["run", "swim"])
        assert args.scheme == "conventional"
        for name in policy_names():
            parser.parse_args(["run", "swim", "--scheme", name])

    def test_dump_trace(self, tmp_path, capsys):
        out_file = tmp_path / "t.trace"
        rc = main(["dump-trace", "li", str(out_file), "-n", "100"])
        assert rc == 0
        from repro.trace.io import load_trace

        assert len(load_trace(out_file)) == 100

    def test_worker_requires_serve_flag(self):
        with pytest.raises(SystemExit):
            main(["worker"])

    def test_cluster_requires_workers(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        # A clean cache dir: no worker descriptors to fall back on.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        with pytest.raises(SystemExit):
            main(["cluster", "status"])

    def test_cluster_status_reports_unreachable(self, capsys):
        rc = main(["cluster", "status", "--workers", "127.0.0.1:1",
                   "--timeout", "0.2"])
        assert rc == 1
        assert "UNREACHABLE" in capsys.readouterr().out

    def test_run_through_remote_worker(self, capsys):
        """End to end: `repro run --workers` round-trips a daemon."""
        from repro.engine import WorkerServer

        server = WorkerServer(port=0)
        server.serve_in_thread()
        try:
            host, port = server.address
            rc = main(["run", "go", "-n", "400", "--skip", "50",
                       "--no-cache", "--workers", f"{host}:{port}"])
            assert rc == 0
            assert "IPC" in capsys.readouterr().out
            assert server.served == 1
        finally:
            server.shutdown()
            server.server_close()

    def test_cluster_status_and_stop_live_worker(self, capsys):
        from repro.engine import WorkerServer

        server = WorkerServer(port=0)
        thread = server.serve_in_thread()
        host, port = server.address
        address = f"{host}:{port}"
        try:
            assert main(["cluster", "status", "--workers", address]) == 0
            assert "[ok]" in capsys.readouterr().out
            assert main(["cluster", "stop", "--workers", address]) == 0
            assert "stopped" in capsys.readouterr().out
            thread.join(timeout=5)
            assert not thread.is_alive()
        finally:
            server.server_close()

    def test_cache_stats(self, capsys, monkeypatch, tmp_path):
        import json

        from repro.engine import ResultStore, RunSpec, execute_spec
        from repro.uarch.config import conventional_config

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        spec = RunSpec("go", conventional_config()).resolved(400, 100, 1)
        ResultStore().put(spec.key(), execute_spec(spec))
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "1 record(s)" in out and "1 segment(s)" in out
        assert "go" in out
        assert main(["cache", "stats", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["records"] == 1
        assert stats["workloads"] == {"go": 1}
        assert stats["bytes"] > 0

    def test_cache_stats_empty_store(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "stats"]) == 0
        assert "0 record(s)" in capsys.readouterr().out

    def test_submit_status_fetch_against_gateway(self, capsys,
                                                 monkeypatch):
        """End to end: the client commands speak the gateway's API."""
        import json

        from repro.service import Gateway

        monkeypatch.delenv("REPRO_TOKEN", raising=False)
        gateway = Gateway()
        handle = gateway.serve_in_thread()
        url = "http://%s:%s" % handle.address
        try:
            rc = main(["submit", "--url", url, "--nrr", "8",
                       "--workloads", "go", "-n", "600", "--skip", "100"])
            out = capsys.readouterr().out
            assert rc == 0
            assert "submitted" in out and "IPC=" in out
            assert "done" in out
            job_id = out.split("job ", 1)[1].split(":", 1)[0]
            assert main(["status", job_id, "--url", url]) == 0
            assert "done (2/2" in capsys.readouterr().out
            assert main(["fetch", job_id, "--url", url]) == 0
            assert "IPC=" in capsys.readouterr().out
            assert main(["fetch", job_id, "--url", url, "--json"]) == 0
            results = json.loads(capsys.readouterr().out)
            assert len(results) == 2
            assert all(r["stats"]["committed"] for r in results)
        finally:
            handle.stop()

    def test_submit_detach_prints_job_id(self, capsys, monkeypatch):
        from repro.service import Gateway

        monkeypatch.delenv("REPRO_TOKEN", raising=False)
        gateway = Gateway()
        handle = gateway.serve_in_thread()
        url = "http://%s:%s" % handle.address
        try:
            rc = main(["submit", "--url", url, "--nrr", "8",
                       "--workloads", "go", "-n", "600", "--skip", "100",
                       "--detach"])
            out = capsys.readouterr().out
            assert rc == 0
            assert "repro status" in out and "repro fetch" in out
        finally:
            handle.stop()

    def test_submit_unreachable_gateway_is_clean_error(self):
        with pytest.raises(SystemExit, match="unreachable"):
            main(["submit", "--url", "http://127.0.0.1:1",
                  "--workloads", "go"])

    def test_worker_descriptor_lifecycle(self, capsys, monkeypatch,
                                         tmp_path):
        """`repro worker --serve` records its address; `repro cluster
        status` with no --workers discovers it; the descriptor is
        removed on shutdown."""
        import threading
        import time

        from repro.engine import read_worker_descriptors

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_TOKEN", raising=False)
        rc = {}
        thread = threading.Thread(
            target=lambda: rc.update(
                code=main(["worker", "--serve", "--port", "0",
                           "--no-cache"])),
            daemon=True)
        thread.start()
        deadline = time.monotonic() + 10
        while (not read_worker_descriptors(tmp_path)
               and time.monotonic() < deadline):
            time.sleep(0.05)
        ((path, record),) = read_worker_descriptors(tmp_path)
        assert record["auth"] is False
        assert main(["cluster", "status"]) == 0
        out = capsys.readouterr().out
        assert "discovered 1 worker(s)" in out and "[ok]" in out
        address = f"{record['host']}:{record['port']}"
        assert main(["cluster", "stop", "--workers", address]) == 0
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert rc["code"] == 0
        assert read_worker_descriptors(tmp_path) == []

    def test_experiment_command(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_INSTRS", "300")
        monkeypatch.setenv("REPRO_BENCH_SKIP", "50")
        # Fresh cache so the tiny budget doesn't pollute other tests.
        import repro.experiments.runner as runner_mod

        monkeypatch.setattr(runner_mod, "SHARED_CACHE",
                            runner_mod.ResultCache())
        rc = main(["table2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "hmean" in out
