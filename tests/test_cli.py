"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "gcc"])

    def test_scheme_choices(self):
        args = build_parser().parse_args(
            ["run", "swim", "--scheme", "vp-issue"])
        assert args.scheme == "vp-issue"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "swim", "--scheme", "magic"])


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("go", "swim", "hydro2d"):
            assert name in out

    def test_run_conventional(self, capsys):
        rc = main(["run", "go", "-n", "400", "--skip", "50"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "go" in out

    def test_run_vp_with_nrr(self, capsys):
        rc = main(["run", "swim", "-n", "400", "--skip", "50",
                   "--scheme", "vp-writeback", "--nrr", "8"])
        assert rc == 0
        assert "IPC" in capsys.readouterr().out

    def test_run_early_release(self, capsys):
        rc = main(["run", "li", "-n", "300", "--skip", "50",
                   "--scheme", "early-release"])
        assert rc == 0

    def test_run_with_phys_override(self, capsys):
        rc = main(["run", "swim", "-n", "300", "--skip", "50",
                   "--scheme", "vp-writeback", "--phys", "48"])
        assert rc == 0

    def test_compare(self, capsys):
        rc = main(["compare", "go", "-n", "400", "--skip", "50"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "conventional" in out and "vp-writeback" in out

    def test_port_sweep_monotone(self, capsys):
        rc = main(["port-sweep", "--read-ports", "16,2",
                   "--policies", "conventional", "--workloads", "go",
                   "-n", "600", "--skip", "50", "--check-monotone",
                   "--no-cache"])
        out = capsys.readouterr().out
        assert "Port sensitivity" in out and "16 ports" in out
        assert rc == 0
        assert "monotonicity: OK" in out

    def test_port_sweep_monotone_gate_skips_writeback(self, capsys):
        """vp-writeback is documented as legitimately non-monotone, so
        --check-monotone must not gate it."""
        rc = main(["port-sweep", "--read-ports", "16,2",
                   "--policies", "vp-writeback", "--workloads", "go",
                   "-n", "400", "--skip", "40", "--check-monotone",
                   "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "not gated for vp-writeback" in out
        assert "nothing gated" in out  # no malformed empty OK line
        assert "monotonicity: OK" not in out

    def test_port_sweep_rejects_unknown_policy(self):
        with pytest.raises(SystemExit, match="unknown renaming policy"):
            main(["port-sweep", "--policies", "magic"])

    def test_port_sweep_rejects_bad_ports(self):
        with pytest.raises(SystemExit, match="read-ports"):
            main(["port-sweep", "--read-ports", "sixteen"])
        # Below the structural floor: a clean message, not a traceback.
        with pytest.raises(SystemExit, match=">= 2"):
            main(["port-sweep", "--read-ports", "16,1"])

    def test_run_scheme_choices_come_from_registry(self):
        from repro.core.policy import policy_names

        parser = build_parser()
        args = parser.parse_args(["run", "swim"])
        assert args.scheme == "conventional"
        for name in policy_names():
            parser.parse_args(["run", "swim", "--scheme", name])

    def test_dump_trace(self, tmp_path, capsys):
        out_file = tmp_path / "t.trace"
        rc = main(["dump-trace", "li", str(out_file), "-n", "100"])
        assert rc == 0
        from repro.trace.io import load_trace

        assert len(load_trace(out_file)) == 100

    def test_worker_requires_serve_flag(self):
        with pytest.raises(SystemExit):
            main(["worker"])

    def test_cluster_requires_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        with pytest.raises(SystemExit):
            main(["cluster", "status"])

    def test_cluster_status_reports_unreachable(self, capsys):
        rc = main(["cluster", "status", "--workers", "127.0.0.1:1",
                   "--timeout", "0.2"])
        assert rc == 1
        assert "UNREACHABLE" in capsys.readouterr().out

    def test_run_through_remote_worker(self, capsys):
        """End to end: `repro run --workers` round-trips a daemon."""
        from repro.engine import WorkerServer

        server = WorkerServer(port=0)
        server.serve_in_thread()
        try:
            host, port = server.address
            rc = main(["run", "go", "-n", "400", "--skip", "50",
                       "--no-cache", "--workers", f"{host}:{port}"])
            assert rc == 0
            assert "IPC" in capsys.readouterr().out
            assert server.served == 1
        finally:
            server.shutdown()
            server.server_close()

    def test_cluster_status_and_stop_live_worker(self, capsys):
        from repro.engine import WorkerServer

        server = WorkerServer(port=0)
        thread = server.serve_in_thread()
        host, port = server.address
        address = f"{host}:{port}"
        try:
            assert main(["cluster", "status", "--workers", address]) == 0
            assert "[ok]" in capsys.readouterr().out
            assert main(["cluster", "stop", "--workers", address]) == 0
            assert "stopped" in capsys.readouterr().out
            thread.join(timeout=5)
            assert not thread.is_alive()
        finally:
            server.server_close()

    def test_experiment_command(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_INSTRS", "300")
        monkeypatch.setenv("REPRO_BENCH_SKIP", "50")
        # Fresh cache so the tiny budget doesn't pollute other tests.
        import repro.experiments.runner as runner_mod

        monkeypatch.setattr(runner_mod, "SHARED_CACHE",
                            runner_mod.ResultCache())
        rc = main(["table2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "hmean" in out
