"""MemorySystem facade tests: port arbitration + wiring."""

import pytest

from repro.memory.cache import CacheConfig
from repro.memory.memory_system import MemorySystem


def system(ports=3):
    return MemorySystem(CacheConfig(size_bytes=1024), ports=ports)


class TestPorts:
    def test_ports_limit_loads_per_cycle(self):
        ms = system(ports=2)
        ms.cache.warm([0x0, 0x40, 0x80])
        assert ms.try_load(1, 0x0, now=0) is not None
        assert ms.try_load(2, 0x40, now=0) is not None
        assert ms.try_load(3, 0x80, now=0) is None  # out of ports
        assert ms.port_conflicts == 1

    def test_ports_reset_next_cycle(self):
        ms = system(ports=1)
        ms.cache.warm([0x0, 0x40])
        assert ms.try_load(1, 0x0, now=0) is not None
        assert ms.try_load(2, 0x40, now=0) is None
        assert ms.try_load(2, 0x40, now=1) is not None

    def test_stores_share_ports_with_loads(self):
        ms = system(ports=1)
        ms.cache.warm([0x0, 0x40])
        assert ms.try_load(1, 0x0, now=0) is not None
        assert ms.try_store_commit(0x40, now=0) is False

    def test_store_commit_takes_port(self):
        ms = system(ports=1)
        ms.cache.warm([0x0, 0x40])
        assert ms.try_store_commit(0x40, now=0) is True
        assert ms.try_load(1, 0x0, now=0) is None

    def test_zero_ports_rejected(self):
        with pytest.raises(ValueError):
            MemorySystem(ports=0)


class TestDisambiguationIntegration:
    def test_load_blocked_by_unknown_store_address(self):
        ms = system()
        ms.cache.warm([0x100])
        ms.store_queue.insert(1)
        assert ms.try_load(5, 0x100, now=0) is None

    def test_blocked_load_consumes_no_port(self):
        ms = system(ports=1)
        ms.cache.warm([0x100, 0x200])
        ms.store_queue.insert(1)
        assert ms.try_load(5, 0x100, now=0) is None
        # The port is still available for a disambiguated access.
        assert ms.try_load(0, 0x200, now=0) is not None

    def test_forwarding_bypasses_cache_ports(self):
        ms = system(ports=0 + 1)
        ms.store_queue.insert(1)
        ms.store_queue.set_address(1, 0x100)
        ms.store_queue.set_data_ready(1, 0)
        ms.cache.warm([0x200])
        assert ms.try_load(5, 0x100, now=0) is not None  # forwarded
        assert ms.try_load(6, 0x200, now=0) is not None  # port still free

    def test_forward_latency_is_hit_latency(self):
        ms = system()
        ms.store_queue.insert(1)
        ms.store_queue.set_address(1, 0x100)
        ms.store_queue.set_data_ready(1, 0)
        assert ms.try_load(5, 0x100, now=10) == 12

    def test_mshr_full_load_returns_none_and_keeps_port(self):
        ms = MemorySystem(CacheConfig(size_bytes=1024, mshr_entries=1), ports=2)
        assert ms.try_load(1, 0x0, now=0) is not None  # miss, takes MSHR
        assert ms.try_load(2, 0x40, now=0) is None  # MSHR full
        ms.cache.warm([0x80])
        assert ms.try_load(3, 0x80, now=0) is not None  # port not wasted
