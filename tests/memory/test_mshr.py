"""MSHR file tests: merge, capacity, expiry."""

import pytest

from repro.memory.mshr import MSHRFile


class TestAllocation:
    def test_allocate_then_lookup_merges(self):
        m = MSHRFile(4)
        m.allocate(0x10, now=0, fill_time=50)
        assert m.lookup(0x10, now=10) == 50
        assert m.merges == 1

    def test_lookup_unknown_line_returns_none(self):
        m = MSHRFile(4)
        assert m.lookup(0x99, now=0) is None

    def test_capacity_enforced(self):
        m = MSHRFile(2)
        m.allocate(1, 0, 50)
        m.allocate(2, 0, 50)
        assert not m.has_room(0)
        assert m.rejections == 1

    def test_allocate_without_room_raises(self):
        m = MSHRFile(1)
        m.allocate(1, 0, 50)
        with pytest.raises(RuntimeError):
            m.allocate(2, 0, 50)

    def test_duplicate_line_raises(self):
        m = MSHRFile(4)
        m.allocate(1, 0, 50)
        with pytest.raises(ValueError):
            m.allocate(1, 0, 60)


class TestExpiry:
    def test_entry_expires_at_fill_time(self):
        m = MSHRFile(1)
        m.allocate(1, 0, 50)
        assert not m.has_room(49)
        assert m.has_room(50)  # fill completed; entry free again

    def test_expired_entry_not_merged(self):
        m = MSHRFile(2)
        m.allocate(1, 0, 50)
        assert m.lookup(1, now=51) is None

    def test_occupancy(self):
        m = MSHRFile(8)
        m.allocate(1, 0, 50)
        m.allocate(2, 0, 60)
        assert m.occupancy(0) == 2
        assert m.occupancy(55) == 1
        assert m.occupancy(60) == 0

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            MSHRFile(0)
