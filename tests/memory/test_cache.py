"""Lockup-free cache tests: geometry, hits/misses, MSHR and bus timing."""

import pytest

from repro.memory.cache import CacheConfig, LockupFreeCache


def small_cache(**kw):
    defaults = dict(size_bytes=1024, line_bytes=32, hit_latency=2,
                    miss_penalty=50, mshr_entries=2, bus_cycles_per_line=4)
    defaults.update(kw)
    return LockupFreeCache(CacheConfig(**defaults))


class TestConfig:
    def test_paper_defaults(self):
        cfg = CacheConfig()
        assert cfg.size_bytes == 16 * 1024
        assert cfg.line_bytes == 32
        assert cfg.hit_latency == 2
        assert cfg.miss_penalty == 50
        assert cfg.mshr_entries == 8
        assert cfg.num_lines == 512

    def test_non_power_of_two_lines_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_bytes=32)

    def test_fractional_lines_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, line_bytes=48)

    def test_zero_latency_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(hit_latency=0)


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        first = c.load(0x40, now=0)
        assert first == 50  # cold miss: full penalty
        second = c.load(0x40, now=60)
        assert second == 62  # hit after the fill

    def test_warm_makes_hit(self):
        c = small_cache()
        c.warm([0x40])
        assert c.load(0x40, now=0) == 2

    def test_same_line_different_word_hits(self):
        c = small_cache()
        c.warm([0x40])
        assert c.load(0x5F, now=0) == 2  # same 32-byte line

    def test_direct_mapped_conflict_evicts(self):
        c = small_cache()  # 1KB: addresses 1KB apart collide
        c.warm([0x0])
        assert c.load(0x400, now=0) == 50  # conflict miss, evicts line 0
        assert c.load(0x0, now=60) == 110  # original line was evicted

    def test_miss_to_pending_line_merges(self):
        c = small_cache()
        first = c.load(0x40, now=0)
        merged = c.load(0x48, now=10)  # same line, while in flight
        assert merged == first
        assert c.mshrs.merges == 1


class TestMSHRLimits:
    def test_rejected_when_mshrs_full(self):
        c = small_cache(mshr_entries=2)
        assert c.load(0x0, 0) is not None
        assert c.load(0x40, 0) is not None
        assert c.load(0x80, 0) is None  # both MSHRs busy
        assert c.mshr_stalls == 1

    def test_rejection_does_not_consume_bus(self):
        c = small_cache(mshr_entries=1)
        c.load(0x0, 0)
        before = c.bus.free_at
        for _ in range(10):
            assert c.load(0x40, 1) is None
        assert c.bus.free_at == before  # retries are bandwidth-free

    def test_rejection_does_not_count_as_access(self):
        c = small_cache(mshr_entries=1)
        c.load(0x0, 0)
        c.load(0x40, 0)
        assert c.loads == 1
        assert c.load_misses == 1

    def test_room_frees_after_fill(self):
        c = small_cache(mshr_entries=1)
        done = c.load(0x0, 0)
        assert c.load(0x40, done) is not None


class TestBusContention:
    def test_parallel_misses_serialize_on_bus(self):
        c = small_cache(mshr_entries=8)
        fills = [c.load(0x40 * i, now=0) for i in range(4)]
        assert fills == [50, 54, 58, 62]


class TestStores:
    def test_store_hit(self):
        c = small_cache()
        c.warm([0x40])
        assert c.store(0x40, now=0) == 1
        assert c.stores == 1
        assert c.store_misses == 0

    def test_store_miss_allocates(self):
        c = small_cache()
        fill = c.store(0x40, now=0)
        assert fill == 50
        assert c.store_misses == 1
        # Write-allocate: the line is now present.
        assert c.load(0x40, now=fill) == fill + 2

    def test_store_miss_with_full_mshrs_bypasses(self):
        c = small_cache(mshr_entries=1)
        c.load(0x0, 0)
        done = c.store(0x40, now=0)
        assert done == 1  # absorbed by the write buffer, no stall
        assert c.contains(0x40)

    def test_store_merges_with_pending_load(self):
        c = small_cache()
        fill = c.load(0x40, now=0)
        assert c.store(0x48, now=5) == fill


class TestStats:
    def test_load_miss_ratio(self):
        c = small_cache()
        c.warm([0x0])
        c.load(0x0, 0)
        c.load(0x400, 0)
        assert c.load_miss_ratio == 0.5

    def test_ratio_zero_when_no_loads(self):
        assert small_cache().load_miss_ratio == 0.0
