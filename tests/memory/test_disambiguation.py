"""Store-queue / disambiguation tests (PA-8000-style policy)."""

import pytest

from repro.memory.disambiguation import LoadOutcome, StoreQueue


class TestOrdering:
    def test_inserts_must_be_in_age_order(self):
        sq = StoreQueue()
        sq.insert(5)
        with pytest.raises(ValueError):
            sq.insert(3)

    def test_capacity(self):
        sq = StoreQueue(capacity=1)
        sq.insert(1)
        assert sq.full
        with pytest.raises(RuntimeError):
            sq.insert(2)

    def test_unbounded_by_default(self):
        sq = StoreQueue()
        for i in range(100):
            sq.insert(i)
        assert not sq.full


class TestLoadChecks:
    def test_no_older_stores_accesses_cache(self):
        sq = StoreQueue()
        outcome, _ = sq.check_load(10, 0x100, now=0)
        assert outcome is LoadOutcome.ACCESS_CACHE

    def test_younger_stores_ignored(self):
        sq = StoreQueue()
        sq.insert(20)  # younger than the load
        outcome, _ = sq.check_load(10, 0x100, now=0)
        assert outcome is LoadOutcome.ACCESS_CACHE

    def test_unknown_older_address_waits(self):
        sq = StoreQueue()
        sq.insert(5)
        outcome, _ = sq.check_load(10, 0x100, now=0)
        assert outcome is LoadOutcome.WAIT
        assert sq.waits == 1

    def test_known_nonmatching_address_accesses_cache(self):
        sq = StoreQueue()
        sq.insert(5)
        sq.set_address(5, 0x200)
        outcome, _ = sq.check_load(10, 0x100, now=0)
        assert outcome is LoadOutcome.ACCESS_CACHE

    def test_matching_store_with_ready_data_forwards(self):
        sq = StoreQueue()
        sq.insert(5)
        sq.set_address(5, 0x100)
        sq.set_data_ready(5, 3)
        outcome, ready = sq.check_load(10, 0x100, now=5)
        assert outcome is LoadOutcome.FORWARD
        assert ready == 3
        assert sq.forwards == 1

    def test_matching_store_without_data_waits(self):
        sq = StoreQueue()
        sq.insert(5)
        sq.set_address(5, 0x100)
        outcome, _ = sq.check_load(10, 0x100, now=5)
        assert outcome is LoadOutcome.WAIT

    def test_word_granular_matching(self):
        sq = StoreQueue()
        sq.insert(5)
        sq.set_address(5, 0x100)
        sq.set_data_ready(5, 0)
        # Same 8-byte word forwards; the next word does not.
        assert sq.check_load(10, 0x104, now=5)[0] is LoadOutcome.FORWARD
        assert sq.check_load(10, 0x108, now=5)[0] is LoadOutcome.ACCESS_CACHE

    def test_youngest_older_match_wins(self):
        sq = StoreQueue()
        sq.insert(3)
        sq.set_address(3, 0x100)
        sq.set_data_ready(3, 1)
        sq.insert(7)
        sq.set_address(7, 0x100)
        sq.set_data_ready(7, 9)
        outcome, ready = sq.check_load(10, 0x100, now=20)
        assert outcome is LoadOutcome.FORWARD
        assert ready == 9  # store 7 is the youngest older writer


class TestRemoval:
    def test_remove_at_commit(self):
        sq = StoreQueue()
        sq.insert(5)
        sq.set_address(5, 0x100)
        sq.remove(5)
        assert len(sq) == 0
        outcome, _ = sq.check_load(10, 0x100, now=0)
        assert outcome is LoadOutcome.ACCESS_CACHE

    def test_remove_younger_than_for_recovery(self):
        sq = StoreQueue()
        for seq in (1, 5, 9):
            sq.insert(seq)
        dropped = sq.remove_younger_than(5)
        assert dropped == 1
        assert len(sq) == 2
