"""L1-L2 bus model tests."""

import pytest

from repro.memory.bus import Bus


class TestUncontended:
    def test_isolated_fill_completes_at_full_penalty(self):
        bus = Bus(cycles_per_line=4)
        assert bus.schedule_fill(10, 50) == 60

    def test_fill_at_cycle_zero(self):
        bus = Bus(cycles_per_line=4)
        assert bus.schedule_fill(0, 50) == 50


class TestContention:
    def test_back_to_back_fills_serialize_by_line_time(self):
        bus = Bus(cycles_per_line=4)
        first = bus.schedule_fill(0, 50)
        second = bus.schedule_fill(0, 50)
        assert first == 50
        assert second == 54  # pushed by one 4-cycle line transfer

    def test_many_fills_drift_linearly(self):
        bus = Bus(cycles_per_line=4)
        fills = [bus.schedule_fill(0, 50) for _ in range(10)]
        assert fills == [50 + 4 * i for i in range(10)]

    def test_spaced_requests_do_not_contend(self):
        bus = Bus(cycles_per_line=4)
        a = bus.schedule_fill(0, 50)
        b = bus.schedule_fill(10, 50)
        assert a == 50
        assert b == 60

    def test_free_at_tracks_last_transfer(self):
        bus = Bus(cycles_per_line=4)
        bus.schedule_fill(0, 50)
        assert bus.free_at == 50


class TestStats:
    def test_transfer_and_busy_accounting(self):
        bus = Bus(cycles_per_line=4)
        for _ in range(3):
            bus.schedule_fill(0, 50)
        assert bus.transfers == 3
        assert bus.busy_cycles == 12

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            Bus(cycles_per_line=0)
