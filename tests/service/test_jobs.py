"""The fair-share job queue: scheduling, cancellation, bookkeeping."""

import asyncio

import pytest

from repro.engine import RunSpec
from repro.service.jobs import Job, JobQueue, new_job_id
from repro.uarch.config import conventional_config


def specs(count, workload="go"):
    return [RunSpec(workload, conventional_config(),
                    label=f"p{n}").resolved(600, 100, n)
            for n in range(count)]


def drain(queue, limit):
    """Collect (client, point) claims until the queue runs dry."""
    order = []
    while True:
        round_ = queue.next_round(limit)
        if not round_:
            return order
        order.extend((job.client, index) for job, index in round_)


class TestFairShare:
    def test_round_robin_interleaves_clients(self):
        queue = JobQueue()
        queue.submit("big", specs(4))
        queue.submit("small", specs(2))
        round_ = queue.next_round(4)
        clients = [job.client for job, _ in round_]
        # One point per client per turn: big cannot monopolize a round.
        assert clients == ["big", "small", "big", "small"]

    def test_small_client_finishes_inside_big_grid(self):
        queue = JobQueue()
        queue.submit("big", specs(6))
        queue.submit("small", specs(1))
        first = queue.next_round(3)
        assert ("small", 0) in [(j.client, i) for j, i in first]

    def test_single_client_jobs_run_fifo(self):
        queue = JobQueue()
        first = queue.submit("c", specs(2))
        second = queue.submit("c", specs(2))
        claims = drain(queue, 2)
        assert claims == [("c", 0), ("c", 1), ("c", 0), ("c", 1)]
        # FIFO: the first job's points were claimed first.
        assert first.next_point == 2
        assert second.next_point == 2

    def test_limit_bounds_inflight_points(self):
        queue = JobQueue()
        queue.submit("c", specs(10))
        assert len(queue.next_round(3)) == 3
        assert queue.pending_points == 7

    def test_every_point_scheduled_exactly_once(self):
        queue = JobQueue()
        queue.submit("a", specs(5))
        queue.submit("b", specs(3))
        claims = drain(queue, 4)
        assert sorted(c for c in claims if c[0] == "a") == [
            ("a", n) for n in range(5)]
        assert sorted(c for c in claims if c[0] == "b") == [
            ("b", n) for n in range(3)]

    def test_empty_grid_is_born_done(self):
        queue = JobQueue()
        job = queue.submit("c", [])
        assert job.state == "done"
        assert queue.next_round(4) == []


class TestCancellation:
    def test_cancel_stops_scheduling(self):
        queue = JobQueue()
        job = queue.submit("c", specs(4))
        queue.next_round(1)
        queue.cancel(job.job_id)
        assert job.state == "cancelled"
        assert queue.next_round(8) == []

    def test_cancel_unknown_job_returns_none(self):
        assert JobQueue().cancel("nope") is None

    def test_cancel_finished_job_is_noop(self):
        queue = JobQueue()
        job = queue.submit("c", [])
        assert job.state == "done"
        queue.cancel(job.job_id)
        assert job.state == "done"

    def test_delivery_after_cancel_records_without_event(self):
        job = Job(new_job_id(), "c", specs(2))
        job.take_point()
        job.cancel()
        events_before = len(job.events)

        class FakeResult:
            def to_dict(self):
                return {}

        job.deliver(0, FakeResult())
        assert job.results[0] is not None
        assert len(job.events) == events_before  # stream already ended


class TestJobEvents:
    def test_events_replay_then_terminate(self):
        async def scenario():
            job = Job(new_job_id(), "c", specs(1))
            job.take_point()

            class FakeResult:
                def to_dict(self):
                    return {"marker": 1}

            job.deliver(0, FakeResult())
            events = [event async for event in job.events_from(0)]
            return job, events

        job, events = asyncio.run(scenario())
        assert [e["event"] for e in events] == ["point", "end"]
        assert events[0]["index"] == 0
        assert events[0]["result"] == {"marker": 1}
        assert events[1]["state"] == "done"
        assert job.is_finished

    def test_live_subscriber_wakes_on_publish(self):
        async def scenario():
            job = Job(new_job_id(), "c", specs(1))
            job.take_point()
            received = []

            async def subscribe():
                async for event in job.events_from(0):
                    received.append(event["event"])

            task = asyncio.create_task(subscribe())
            await asyncio.sleep(0.01)  # subscriber parks on the wakeup
            assert received == []

            class FakeResult:
                def to_dict(self):
                    return {}

            job.deliver(0, FakeResult())
            await asyncio.wait_for(task, timeout=5)
            return received

        assert asyncio.run(scenario()) == ["point", "end"]

    def test_failure_publishes_terminal_event(self):
        job = Job(new_job_id(), "c", specs(2))
        job.fail("executor exploded")
        assert job.state == "failed"
        assert job.events[-1]["event"] == "end"
        assert "exploded" in job.events[-1]["error"]

    def test_snapshot_shape(self):
        job = Job(new_job_id(), "alice", specs(3))
        snap = job.snapshot()
        assert snap["points"] == 3
        assert snap["done"] == 0
        assert snap["state"] == "queued"
        assert snap["client"] == "alice"


class TestCounters:
    def test_counters_track_states_and_points(self):
        queue = JobQueue()
        queue.submit("a", specs(2))
        done = queue.submit("b", [])
        assert done.state == "done"
        counters = queue.counters()
        assert counters["jobs"]["queued"] == 1
        assert counters["jobs"]["done"] == 1
        assert counters["points_total"] == 2
        assert counters["points_pending"] == 2


def test_finished_jobs_evicted_beyond_retention_cap():
    queue = JobQueue(max_finished=2)
    finished = [queue.submit("c", []) for _ in range(6)]  # born done
    live = queue.submit("c", specs(1))  # queued: never evictable
    assert live.job_id in queue.jobs
    terminal_kept = [j for j in queue.jobs.values() if j.is_finished]
    assert len(terminal_kept) <= 3  # cap + the one added post-eviction
    assert queue.get(finished[0].job_id) is None  # oldest gone
    assert queue.get(finished[-1].job_id) is not None  # newest kept


@pytest.mark.parametrize("limit", [1, 2, 7, 100])
def test_drain_is_complete_for_any_limit(limit):
    queue = JobQueue()
    queue.submit("x", specs(5))
    queue.submit("y", specs(4))
    claims = drain(queue, limit)
    assert len(claims) == 9
