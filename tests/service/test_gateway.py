"""End-to-end gateway tests over real HTTP connections.

Covers the PR's acceptance criteria: POST a grid and get a job id,
stream at least one point before the job completes, collected stats
bit-identical to a local serial run, and 401s without the shared
token.
"""

import http.client
import json
import socket

import pytest

from repro.engine import BatchEngine, ResultStore, RunSpec, SerialExecutor
from repro.engine.faults import FaultPlan, clear, install
from repro.service import Gateway, GatewayClient, GatewayError, JobJournal
from repro.uarch.config import conventional_config, virtual_physical_config


def grid():
    """The acceptance grid: conventional vs vp-issue, two workloads."""
    return [RunSpec(w, c, label=label).resolved(600, 100, 1)
            for w in ("go", "swim")
            for label, c in (("conventional", conventional_config()),
                             ("vp-issue",
                              virtual_physical_config(nrr=8)))]


@pytest.fixture
def gateway():
    gw = Gateway(max_inflight=2)
    handle = gw.serve_in_thread()
    yield gw, handle
    handle.stop()


@pytest.fixture
def client(gateway):
    _, handle = gateway
    return GatewayClient("http://%s:%s" % handle.address)


class TestEndToEnd:
    def test_submit_stream_fetch_bit_identical(self, client):
        specs = grid()
        job = client.submit(specs)
        assert job["points"] == len(specs)
        assert job["state"] in ("queued", "running")

        events = list(client.stream(job["id"]))
        points = [e for e in events if e["event"] == "point"]
        assert len(points) == len(specs)
        # Streaming is incremental: the first point event arrived
        # while the job was still short of complete.
        assert points[0]["done"] < points[0]["points"]
        assert events[-1] == {
            "event": "end", "job": job["id"], "state": "done",
            "done": len(specs), "points": len(specs), "error": None,
        }

        fetched = client.fetch(job["id"])
        serial = SerialExecutor().run(specs)
        assert ([r.to_dict() for r in fetched]
                == [r.to_dict() for r in serial])

    def test_status_snapshot_progresses_to_done(self, client):
        job = client.submit(grid()[:1])
        list(client.stream(job["id"]))  # wait for completion
        snapshot = client.status(job["id"])
        assert snapshot["state"] == "done"
        assert snapshot["done"] == snapshot["points"] == 1

    def test_store_backed_gateway_streams_cache_hits(self, tmp_path):
        specs = grid()[:2]
        seeded = BatchEngine(SerialExecutor(), store=ResultStore(tmp_path))
        expected = seeded.run(specs)
        gw = Gateway(engine=BatchEngine(SerialExecutor(),
                                        store=ResultStore(tmp_path)))
        handle = gw.serve_in_thread()
        try:
            client = GatewayClient("http://%s:%s" % handle.address)
            results = client.run(specs)
            assert ([r.to_dict() for r in results]
                    == [r.to_dict() for r in expected])
            assert gw.points_cached == len(specs)
            assert gw.points_executed == 0
        finally:
            handle.stop()

    def test_run_convenience_raises_on_bad_workload(self, client):
        spec_dict = grid()[0].to_dict()
        spec_dict["workload"] = "not-a-workload"
        with pytest.raises(GatewayError) as err:
            client.submit([spec_dict])
        assert err.value.status == 400

    def test_cancel_stops_remaining_points(self):
        # A dedicated slow gateway (one point per round, longer runs)
        # so the cancel reliably lands before the grid drains.
        gw = Gateway(max_inflight=1)
        handle = gw.serve_in_thread()
        try:
            client = GatewayClient("http://%s:%s" % handle.address)
            specs = [RunSpec("go", conventional_config()).resolved(
                20_000, 1_000, seed) for seed in range(6)]
            job = client.submit(specs)
            cancelled = client.cancel(job["id"])
            assert cancelled["state"] == "cancelled"
            events = list(client.stream(job["id"]))
            assert events[-1]["state"] == "cancelled"
            snapshot = client.status(job["id"])
            assert snapshot["done"] < snapshot["points"]
        finally:
            handle.stop()


class TestValidation:
    def test_empty_specs_rejected(self, client):
        with pytest.raises(GatewayError) as err:
            client.submit([])
        assert err.value.status == 400

    def test_malformed_spec_rejected(self, client):
        with pytest.raises(GatewayError) as err:
            client.submit([{"bogus": True}])
        assert err.value.status == 400

    def test_unknown_job_404(self, client):
        with pytest.raises(GatewayError) as err:
            client.status("does-not-exist")
        assert err.value.status == 404

    def test_unknown_route_404(self, client):
        with pytest.raises(GatewayError) as err:
            client._request("GET", "/v2/nope")
        assert err.value.status == 404

    def test_garbage_body_400(self, gateway):
        _, handle = gateway
        host, port = handle.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        connection.request("POST", "/v1/jobs", body=b"{not json",
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        assert response.status == 400
        connection.close()


class TestAuth:
    @pytest.fixture
    def secured(self):
        gw = Gateway(token="hunter2")
        handle = gw.serve_in_thread()
        yield gw, handle
        handle.stop()

    def test_request_without_token_is_401(self, secured):
        gw, handle = secured
        client = GatewayClient("http://%s:%s" % handle.address, token="")
        with pytest.raises(GatewayError) as err:
            client.submit(grid()[:1])
        assert err.value.status == 401
        assert gw.unauthorized == 1

    def test_wrong_token_is_401(self, secured):
        _, handle = secured
        client = GatewayClient("http://%s:%s" % handle.address,
                               token="wrong")
        with pytest.raises(GatewayError) as err:
            client.metrics()
        assert err.value.status == 401

    def test_healthz_is_exempt(self, secured):
        _, handle = secured
        client = GatewayClient("http://%s:%s" % handle.address, token="")
        health = client.healthz()
        assert health["ok"] and health["auth"]

    def test_bearer_token_accepted_end_to_end(self, secured):
        _, handle = secured
        client = GatewayClient("http://%s:%s" % handle.address,
                               token="hunter2")
        results = client.run(grid()[:1])
        assert results[0].ipc > 0

    def test_401_sent_before_the_body_is_read(self, secured):
        """An unauthenticated client must not be able to make the
        gateway buffer a large body: the 401 arrives while the declared
        body remains unsent."""
        _, handle = secured
        with socket.create_connection(handle.address, timeout=10) as sock:
            sock.sendall(b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
                         b"Content-Length: 67108864\r\n\r\n")
            response = sock.recv(65536)  # no body ever sent
        assert b" 401 " in response.split(b"\r\n", 1)[0]

    def test_x_repro_token_header_accepted(self, secured):
        _, handle = secured
        host, port = handle.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        connection.request("GET", "/v1/metrics",
                           headers={"X-Repro-Token": "hunter2",
                                    "Accept": "application/json"})
        response = connection.getresponse()
        assert response.status == 200
        body = json.loads(response.read())
        assert body["requests"] >= 1
        connection.close()


class TestMetrics:
    def test_metrics_counts_work(self, client, gateway):
        gw, _ = gateway
        client.run(grid()[:2])
        metrics = client.metrics()
        assert metrics["points_executed"] + metrics["points_cached"] == 2
        assert metrics["rounds"] >= 1
        assert metrics["queue"]["jobs"]["done"] == 1
        assert metrics["executor"] == "SerialExecutor"

    def test_metrics_report_resilience_fields(self, client):
        metrics = client.metrics()
        assert metrics["round_failures"] == 0
        assert metrics["last_round_error"] is None
        assert metrics["degraded"] is None
        assert metrics["journal"] is False
        assert metrics["resumed_jobs"] == 0

    def test_fair_share_interleaves_two_clients(self, gateway):
        gw, handle = gateway
        url = "http://%s:%s" % handle.address
        alice = GatewayClient(url, client_id="alice")
        bob = GatewayClient(url, client_id="bob")
        specs = grid()
        job_a = alice.submit(specs)
        job_b = bob.submit(specs[:2])
        done_a = [e for e in alice.stream(job_a["id"])
                  if e["event"] == "end"]
        done_b = [e for e in bob.stream(job_b["id"])
                  if e["event"] == "end"]
        assert done_a[0]["state"] == done_b[0]["state"] == "done"
        # Both clients' jobs completed even though alice queued first
        # and submitted more points.
        assert gw.queue.counters()["jobs"]["done"] == 2


class TestStreamCursor:
    def test_after_skips_consumed_events(self, client):
        job = client.submit(grid()[:2])
        full = list(client.stream(job["id"]))
        again = list(client.stream(job["id"], after=1, reconnect=False))
        assert again == full[1:]

    def test_after_past_the_end_is_an_empty_stream(self, client):
        job = client.submit(grid()[:1])
        full = list(client.stream(job["id"]))
        late = list(client.stream(job["id"], after=len(full) + 5,
                                  reconnect=False))
        assert late == []

    def test_negative_after_is_400(self, client):
        job = client.submit(grid()[:1])
        list(client.stream(job["id"]))
        with pytest.raises(GatewayError) as err:
            list(client._stream_once(job["id"], -1, None))
        assert err.value.status == 400


class TestRoundFailureRecovery:
    @pytest.fixture(autouse=True)
    def _fresh_faults(self):
        clear()
        yield
        clear()

    def test_round_death_requeues_and_the_job_completes(self):
        install(FaultPlan.from_string("gateway.round:n=1"))
        gw = Gateway(max_inflight=2)
        handle = gw.serve_in_thread()
        try:
            client = GatewayClient("http://%s:%s" % handle.address)
            specs = grid()[:2]
            results = client.run(specs)
            serial = SerialExecutor().run(specs)
            assert ([r.to_dict() for r in results]
                    == [r.to_dict() for r in serial])
            metrics = client.metrics()
            assert metrics["round_failures"] == 1
            assert "injected fault" in metrics["last_round_error"]
        finally:
            handle.stop()

    def test_repeatedly_dying_rounds_fail_the_job(self):
        install(FaultPlan.from_string("gateway.round"))  # every round
        gw = Gateway(max_inflight=2, max_round_failures=1)
        handle = gw.serve_in_thread()
        try:
            client = GatewayClient("http://%s:%s" % handle.address)
            job = client.submit(grid()[:2])
            events = list(client.stream(job["id"]))
            assert events[-1]["event"] == "end"
            assert events[-1]["state"] == "failed"
            assert "injected fault" in events[-1]["error"]
        finally:
            handle.stop()


class TestDurableResume:
    """Gateway crash-and-resume: the ISSUE's kill-and-resume e2e."""

    @staticmethod
    def slow_grid(points):
        return [RunSpec("go", conventional_config()).resolved(
            20_000, 1_000, seed) for seed in range(points)]

    @staticmethod
    def make_gateway(tmp_path, resume, port=0):
        engine = BatchEngine(SerialExecutor(),
                             store=ResultStore(tmp_path / "store"))
        return Gateway(port=port, engine=engine, max_inflight=1,
                       journal=JobJournal(tmp_path / "wal"), resume=resume)

    def test_kill_and_resume_delivers_each_point_exactly_once(
            self, tmp_path):
        specs = self.slow_grid(6)
        gw1 = self.make_gateway(tmp_path, resume=False)
        handle1 = gw1.serve_in_thread()
        client1 = GatewayClient("http://%s:%s" % handle1.address)
        job = client1.submit(specs)
        first = []
        for event in client1.stream(job["id"], reconnect=False):
            first.append(event)
            if len(first) >= 2:
                break  # at least one point streamed; now "crash"
        handle1.stop()
        assert gw1.journal.path_for(job["id"]).exists()

        gw2 = self.make_gateway(tmp_path, resume=True)
        handle2 = gw2.serve_in_thread()
        try:
            assert gw2.resumed_jobs == 1
            client2 = GatewayClient("http://%s:%s" % handle2.address)
            rest = list(client2.stream(job["id"], after=len(first)))
            assert rest[-1]["event"] == "end"
            assert rest[-1]["state"] == "done"
            indices = ([e["index"] for e in first if e["event"] == "point"]
                       + [e["index"] for e in rest
                          if e["event"] == "point"])
            # No duplicate and no missing points across the restart.
            assert sorted(indices) == list(range(len(specs)))
            fetched = client2.fetch(job["id"])
            serial = SerialExecutor().run(specs)
            assert ([r.to_dict() for r in fetched]
                    == [r.to_dict() for r in serial])
            metrics = client2.metrics()
            assert metrics["journal"] is True
            assert metrics["resumed_jobs"] == 1
            # The journal retired the finished job's WAL.
            assert not gw2.journal.path_for(job["id"]).exists()
        finally:
            handle2.stop()

    def test_client_stream_reconnects_across_gateway_restart(
            self, tmp_path):
        specs = self.slow_grid(6)
        gw1 = self.make_gateway(tmp_path, resume=False)
        handle1 = gw1.serve_in_thread()
        port = handle1.address[1]
        client = GatewayClient("http://%s:%s" % handle1.address)
        job = client.submit(specs)
        events = []
        handle2 = None
        try:
            # One stream generator survives the gateway being replaced:
            # it reconnects with ?after=<delivered> to the new process.
            for event in client.stream(job["id"], timeout=5):
                events.append(event)
                if len(events) == 1:
                    handle1.stop()
                    gw2 = self.make_gateway(tmp_path, resume=True,
                                            port=port)
                    handle2 = gw2.serve_in_thread()
        finally:
            if handle2 is not None:
                handle2.stop()
        assert events[-1]["event"] == "end"
        assert events[-1]["state"] == "done"
        indices = [e["index"] for e in events if e["event"] == "point"]
        assert sorted(indices) == list(range(len(specs)))
        assert len(indices) == len(set(indices))
