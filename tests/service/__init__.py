"""Tests for the simulation-as-a-service gateway (repro.service)."""
