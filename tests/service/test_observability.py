"""Gateway observability: exposition, tenants, healthz, dashboard."""

import http.client
import json

import pytest

from repro.engine import RunSpec
from repro.service import Gateway, GatewayClient
from repro.service.gateway import PROMETHEUS_CONTENT_TYPE
from repro.uarch.config import conventional_config, virtual_physical_config


def grid():
    return [RunSpec(w, c, label=label).resolved(600, 100, 1)
            for w in ("go",)
            for label, c in (("conventional", conventional_config()),
                             ("vp-issue",
                              virtual_physical_config(nrr=8)))]


@pytest.fixture
def gateway():
    gw = Gateway(max_inflight=2)
    handle = gw.serve_in_thread()
    yield gw, handle
    handle.stop()


@pytest.fixture
def client(gateway):
    _, handle = gateway
    return GatewayClient("http://%s:%s" % handle.address,
                         client_id="tenant-a")


def raw_get(handle, path, headers=None):
    conn = http.client.HTTPConnection(*handle.address, timeout=30)
    try:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        return (response.status, response.getheader("Content-Type"),
                response.read().decode("utf-8"))
    finally:
        conn.close()


class TestPrometheusExposition:
    def test_metrics_serves_prometheus_text_by_default(self, gateway,
                                                       client):
        _, handle = gateway
        client.run(grid())
        status, content_type, body = raw_get(handle, "/v1/metrics")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        assert "# TYPE repro_gateway_requests_total counter" in body
        assert "# TYPE repro_gateway_uptime_seconds gauge" in body
        assert "repro_build_info{" in body

    def test_scrape_is_structurally_valid(self, gateway, client):
        import importlib.util
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[2]
        spec = importlib.util.spec_from_file_location(
            "metrics_check", repo / "tools" / "metrics_check.py")
        checker = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(checker)

        _, handle = gateway
        client.run(grid())
        _, _, body = raw_get(handle, "/v1/metrics")
        samples, families = checker.validate_text(body)
        assert samples
        checker.require_series(samples, "repro_gateway_requests_total")
        checker.require_series(
            samples, 'repro_tenant_jobs_total{client="tenant-a"}')

    def test_accept_json_negotiates_the_json_document(self, gateway):
        _, handle = gateway
        status, content_type, body = raw_get(
            handle, "/v1/metrics",
            headers={"Accept": "application/json"})
        assert status == 200
        assert "application/json" in content_type
        assert "version" in json.loads(body)

    def test_metrics_json_always_serves_json(self, gateway):
        _, handle = gateway
        status, content_type, body = raw_get(handle, "/v1/metrics.json")
        assert status == 200
        assert "application/json" in content_type
        document = json.loads(body)
        assert "tenants" in document
        assert "jobs_recent" in document

    def test_gateway_client_metrics_still_parses_json(self, client):
        document = client.metrics()
        assert "queue" in document  # the pre-exposition JSON shape


class TestTenantAccounting:
    # The registry is process-wide, so per-tenant assertions use client
    # ids unique to each test rather than absolute counts for the
    # shared fixture identity.

    def test_per_tenant_series_accumulate(self, gateway):
        _, handle = gateway
        specs = grid()
        url = "http://%s:%s" % handle.address
        GatewayClient(url, client_id="acct-exec").run(specs)
        # The engine memo serves the identical grid: cached for this
        # second tenant, and attributed to it, not the first.
        GatewayClient(url, client_id="acct-cache").run(specs)

        document = json.loads(raw_get(handle, "/v1/metrics.json")[2])
        tenants = document["tenants"]
        assert set(tenants) >= {"acct-exec", "acct-cache"}
        a, b = tenants["acct-exec"], tenants["acct-cache"]
        assert a["jobs"] == 1 and b["jobs"] == 1
        assert a["points_executed"] == len(specs)
        assert b["points_cached"] == len(specs)
        assert b["points_executed"] == 0

    def test_queue_wait_histogram_observes(self, gateway):
        _, handle = gateway
        GatewayClient("http://%s:%s" % handle.address,
                      client_id="acct-wait").run(grid())
        _, _, body = raw_get(handle, "/v1/metrics")
        assert ('repro_tenant_queue_wait_seconds_count'
                '{client="acct-wait"} 1') in body

    def test_jobs_recent_carries_trace_and_progress(self, gateway,
                                                    client):
        _, handle = gateway
        job = client.submit(grid())
        list(client.stream(job["id"]))
        document = json.loads(raw_get(handle, "/v1/metrics.json")[2])
        (recent,) = [j for j in document["jobs_recent"]
                     if j["id"] == job["id"]]
        assert recent["trace"] == job["trace"]
        assert recent["done"] == recent["points"]


class TestHealthz:
    def test_healthz_reports_engine_tiers(self, gateway):
        _, handle = gateway
        status, _, body = raw_get(handle, "/v1/healthz")
        assert status == 200
        engines = json.loads(body)["engines"]
        assert engines["interp"]["available"] is True
        assert engines["compiled"]["available"] is True
        assert "available" in engines["native"]
        assert engines["resolved_auto"] in ("interp", "compiled",
                                            "native")

    def test_engine_probe_is_cached(self, gateway):
        gw, handle = gateway
        raw_get(handle, "/v1/healthz")
        first = gw._engines_probed_at
        raw_get(handle, "/v1/healthz")
        assert gw._engines_probed_at == first  # 60s cache, not re-probed


class TestDashboard:
    def test_dashboard_serves_html_without_auth(self, gateway,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_TOKEN", "secret")
        _, handle = gateway
        status, content_type, body = raw_get(handle, "/v1/dashboard")
        assert status == 200
        assert "text/html" in content_type
        assert "repro cluster dashboard" in body
        assert "/v1/metrics.json" in body  # polls the JSON document

    def test_dashboard_page_escapes_injected_state(self, gateway):
        _, handle = gateway
        _, _, body = raw_get(handle, "/v1/dashboard")
        assert "function esc(" in body  # client-side escaping helper


class TestSubmitTrace:
    def test_submit_mints_a_trace_id(self, client):
        job = client.submit(grid()[:1])
        assert job["trace"]
        assert len(job["trace"]) == 32
        list(client.stream(job["id"]))
        assert client.status(job["id"])["trace"] == job["trace"]

    def test_x_repro_trace_header_is_honoured(self, gateway):
        _, handle = gateway
        conn = http.client.HTTPConnection(*handle.address, timeout=30)
        try:
            payload = json.dumps(
                {"specs": [s.to_dict() for s in grid()[:1]]})
            conn.request("POST", "/v1/jobs", body=payload,
                         headers={"Content-Type": "application/json",
                                  "X-Repro-Trace": "cafe" * 8})
            response = conn.getresponse()
            assert response.status == 201
            body = json.loads(response.read())
            assert body["trace"] == "cafe" * 8
        finally:
            conn.close()
