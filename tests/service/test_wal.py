"""Tests for the gateway's per-job write-ahead log."""

import json

from repro.engine import RunSpec
from repro.service.jobs import Job
from repro.service.wal import JobJournal
from repro.uarch.config import conventional_config


def one_spec():
    return RunSpec("go", conventional_config()).resolved(600, 100, 1)


def make_job(job_id="j1", client="alice", points=2):
    return Job(job_id, client, [one_spec() for _ in range(points)])


class TestJournalRoundtrip:
    def test_submit_points_roundtrip(self, tmp_path):
        journal = JobJournal(tmp_path)
        job = make_job()
        journal.record_submit(job)
        journal.record_point(job.job_id, 1)
        journal.record_point(job.job_id, 0)

        records = journal.unfinished()
        assert len(records) == 1
        record = records[0]
        assert record["id"] == "j1"
        assert record["client"] == "alice"
        assert record["done"] == {0, 1}
        assert len(record["specs"]) == 2
        # Specs survive the WAL in wire form, bit-identical.
        assert ([RunSpec.from_dict(d).resolved().key()
                 for d in record["specs"]]
                == [s.key() for s in job.specs])

    def test_end_record_unlinks_the_wal(self, tmp_path):
        journal = JobJournal(tmp_path)
        job = make_job()
        journal.record_submit(job)
        assert journal.path_for(job.job_id).exists()
        journal.record_end(job.job_id, "done")
        assert not journal.path_for(job.job_id).exists()
        assert journal.unfinished() == []

    def test_surviving_end_record_still_marks_finished(self, tmp_path):
        # Even if the unlink is lost, the end record excludes the job.
        journal = JobJournal(tmp_path)
        job = make_job()
        journal.record_submit(job)
        with journal.path_for(job.job_id).open("a") as handle:
            handle.write(json.dumps({"event": "end", "state": "done"})
                         + "\n")
        assert journal.unfinished() == []

    def test_discard_drops_without_end(self, tmp_path):
        journal = JobJournal(tmp_path)
        job = make_job()
        journal.record_submit(job)
        journal.discard(job.job_id)
        assert journal.unfinished() == []

    def test_multiple_jobs_sorted_by_name(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record_submit(make_job("b"))
        journal.record_submit(make_job("a"))
        assert [r["id"] for r in journal.unfinished()] == ["a", "b"]


class TestJournalRobustness:
    def test_corrupt_line_is_skipped(self, tmp_path):
        journal = JobJournal(tmp_path)
        job = make_job()
        journal.record_submit(job)
        journal.record_point(job.job_id, 0)
        # A torn append in the middle must not hide later records.
        path = journal.path_for(job.job_id)
        lines = path.read_text().splitlines()
        lines.insert(1, '{"event": "point", "ind')
        path.write_text("\n".join(lines) + "\n")
        journal.record_point(job.job_id, 1)

        records = journal.unfinished()
        assert len(records) == 1
        assert records[0]["done"] == {0, 1}

    def test_wal_without_submit_is_skipped(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.record_point("orphan", 0)
        assert journal.unfinished() == []

    def test_empty_directory_is_fine(self, tmp_path):
        assert JobJournal(tmp_path / "missing").unfinished() == []

    def test_unwritable_directory_degrades_silently(self, tmp_path):
        victim = tmp_path / "blocked"
        victim.write_text("a file where the directory should be")
        journal = JobJournal(victim)
        journal.record_submit(make_job())  # must not raise
        assert journal._broken
        journal.record_point("j1", 0)  # still silent once broken
