"""NRR deadlock-avoidance bookkeeping (paper §3.3)."""

import pytest

from repro.core.reserve import ReservePolicy
from repro.isa.instruction import TraceRecord
from repro.isa.opcodes import OpClass
from repro.isa.registers import RegClass, make_reg
from repro.uarch.dynamic import DynInstr

R1 = make_reg(RegClass.INT, 1)
F1 = make_reg(RegClass.FP, 1)


def writer(seq, cls=RegClass.INT):
    if cls is RegClass.INT:
        rec = TraceRecord(4 * seq, OpClass.INT_ALU, dest=R1, src1=R1)
    else:
        rec = TraceRecord(4 * seq, OpClass.FP_ADD, dest=F1, src1=F1)
    return DynInstr(rec, seq)


def store(seq):
    rec = TraceRecord(4 * seq, OpClass.STORE_INT, src1=R1, src2=R1, addr=0x8)
    return DynInstr(rec, seq)


class TestReservation:
    def test_first_nrr_writers_reserved(self):
        policy = ReservePolicy(nrr_int=2, nrr_fp=2)
        ws = [writer(i) for i in range(4)]
        for w in ws:
            policy.on_dispatch(w)
        assert [w.reserved for w in ws] == [True, True, False, False]
        assert policy.counters(RegClass.INT) == (2, 0)

    def test_destless_instructions_not_reserved(self):
        policy = ReservePolicy(nrr_int=2, nrr_fp=2)
        s = store(0)
        policy.on_dispatch(s)
        assert not s.reserved
        assert policy.counters(RegClass.INT) == (0, 0)

    def test_classes_tracked_separately(self):
        policy = ReservePolicy(nrr_int=1, nrr_fp=1)
        wi, wf = writer(0, RegClass.INT), writer(1, RegClass.FP)
        policy.on_dispatch(wi)
        policy.on_dispatch(wf)
        assert wi.reserved and wf.reserved
        assert policy.counters(RegClass.INT) == (1, 0)
        assert policy.counters(RegClass.FP) == (1, 0)

    def test_nrr_below_one_rejected(self):
        with pytest.raises(ValueError):
            ReservePolicy(nrr_int=0, nrr_fp=1)


class TestCommitAdvance:
    def test_pointer_advances_on_commit(self):
        policy = ReservePolicy(nrr_int=1, nrr_fp=1)
        a, b, c = (writer(i) for i in range(3))
        for w in (a, b, c):
            policy.on_dispatch(w)
        assert a.reserved and not b.reserved
        a.dest_phys = 40
        policy.on_allocate(a)
        policy.on_commit(a)
        assert b.reserved
        assert policy.counters(RegClass.INT) == (1, 0)

    def test_used_tracks_allocated_reserved(self):
        policy = ReservePolicy(nrr_int=2, nrr_fp=2)
        a, b = writer(0), writer(1)
        policy.on_dispatch(a)
        policy.on_dispatch(b)
        a.dest_phys = 40
        policy.on_allocate(a)
        assert policy.counters(RegClass.INT) == (2, 1)

    def test_newly_reserved_already_allocated_counts_as_used(self):
        # Paper: "If such instruction has not yet allocated its physical
        # register, Used is decreased; otherwise it is left unchanged."
        policy = ReservePolicy(nrr_int=1, nrr_fp=1)
        a, b = writer(0), writer(1)
        policy.on_dispatch(a)
        policy.on_dispatch(b)
        a.dest_phys = 40
        policy.on_allocate(a)
        b.dest_phys = 41  # b allocated while unreserved (young completion)
        assert policy.counters(RegClass.INT) == (1, 1)
        policy.on_commit(a)
        # b becomes reserved and is already allocated -> Used unchanged.
        assert policy.counters(RegClass.INT) == (1, 1)

    def test_reg_shrinks_when_no_writer_remains(self):
        policy = ReservePolicy(nrr_int=2, nrr_fp=2)
        a = writer(0)
        policy.on_dispatch(a)
        a.dest_phys = 40
        policy.on_allocate(a)
        policy.on_commit(a)
        assert policy.counters(RegClass.INT) == (0, 0)

    def test_unreserved_commit_is_an_error(self):
        policy = ReservePolicy(nrr_int=1, nrr_fp=1)
        a, b = writer(0), writer(1)
        policy.on_dispatch(a)
        policy.on_dispatch(b)
        b.dest_phys = 40
        with pytest.raises(RuntimeError):
            policy.on_commit(b)

    def test_squashed_pending_writers_skipped(self):
        policy = ReservePolicy(nrr_int=1, nrr_fp=1)
        a, b, c = (writer(i) for i in range(3))
        for w in (a, b, c):
            policy.on_dispatch(w)
        b.squashed = True  # rolled back by recovery
        a.dest_phys = 40
        policy.on_allocate(a)
        policy.on_commit(a)
        assert not b.reserved
        assert c.reserved


class TestAllocationRule:
    def test_reserved_always_allowed(self):
        policy = ReservePolicy(nrr_int=2, nrr_fp=2)
        a = writer(0)
        policy.on_dispatch(a)
        assert policy.may_allocate(a, free_count=1)

    def test_unreserved_needs_spare_registers(self):
        # Paper: allocate iff free > NRR - Used.
        policy = ReservePolicy(nrr_int=2, nrr_fp=2)
        a, b, y = writer(0), writer(1), writer(2)
        for w in (a, b, y):
            policy.on_dispatch(w)
        assert not policy.may_allocate(y, free_count=2)  # 2 > 2-0 is false
        assert policy.may_allocate(y, free_count=3)

    def test_used_loosens_the_rule(self):
        policy = ReservePolicy(nrr_int=2, nrr_fp=2)
        a, b, y = writer(0), writer(1), writer(2)
        for w in (a, b, y):
            policy.on_dispatch(w)
        a.dest_phys = 40
        policy.on_allocate(a)
        assert policy.may_allocate(y, free_count=2)  # 2 > 2-1

    def test_drop_younger_than(self):
        policy = ReservePolicy(nrr_int=1, nrr_fp=1)
        ws = [writer(i) for i in range(4)]
        for w in ws:
            policy.on_dispatch(w)
        policy.drop_younger_than(1)
        ws[0].dest_phys = 40
        policy.on_allocate(ws[0])
        policy.on_commit(ws[0])
        assert ws[1].reserved  # seq 1 survived the drop
        assert policy.counters(RegClass.INT) == (1, 0)


class TestPaperFigure3Scenario:
    """The paper's Figure 3: a ROB holding the sequence

        add r1,r2,r3 / sub r2,r3,r5 / load f2,0(r1) / store 0(r2),r3 /
        bne r1,L / fadd f4,f4,f6 / add r1,r2,r7 / fdiv f4,f2,f8

    with NRR = 2: PRRint points at the second integer writer (sub) and
    PRRfp at the second FP writer (fdiv)."""

    def test_prr_pointers_land_as_in_figure3(self):
        from repro.isa.opcodes import OpClass
        from repro.isa.registers import make_reg
        from repro.isa.instruction import TraceRecord
        from repro.uarch.dynamic import DynInstr

        ri = lambda n: make_reg(RegClass.INT, n)
        fi = lambda n: make_reg(RegClass.FP, n)
        rows = [
            TraceRecord(0x00, OpClass.INT_ALU, dest=ri(1), src1=ri(2), src2=ri(3)),
            TraceRecord(0x04, OpClass.INT_ALU, dest=ri(2), src1=ri(3), src2=ri(5)),
            TraceRecord(0x08, OpClass.LOAD_FP, dest=fi(2), src1=ri(1), addr=0x0),
            TraceRecord(0x0c, OpClass.STORE_INT, src1=ri(2), src2=ri(3), addr=0x0),
            TraceRecord(0x10, OpClass.BRANCH, src1=ri(1), taken=False),
            TraceRecord(0x14, OpClass.FP_ADD, dest=fi(4), src1=fi(4), src2=fi(6)),
            TraceRecord(0x18, OpClass.INT_ALU, dest=ri(1), src1=ri(2), src2=ri(7)),
            TraceRecord(0x1c, OpClass.FP_DIV, dest=fi(4), src1=fi(2), src2=fi(8)),
        ]
        instrs = [DynInstr(rec, seq) for seq, rec in enumerate(rows)]
        policy = ReservePolicy(nrr_int=2, nrr_fp=2)
        for instr in instrs:
            policy.on_dispatch(instr)
        # Reserved integer writers: add (0) and sub (1); the third int
        # writer, add r1 (6), is beyond PRRint.
        assert instrs[0].reserved and instrs[1].reserved
        assert not instrs[6].reserved
        # Reserved FP writers: load f2 (2), fadd (5); fdiv (7) is the
        # youngest FP writer... with NRR=2, only two are reserved and
        # PRRfp points at fadd -- fdiv is NOT reserved yet.
        assert instrs[2].reserved and instrs[5].reserved
        assert not instrs[7].reserved
        # Stores and branches never enter the reserved sets.
        assert not instrs[3].reserved and not instrs[4].reserved
        assert policy.counters(RegClass.INT) == (2, 0)
        assert policy.counters(RegClass.FP) == (2, 0)
