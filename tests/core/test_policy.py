"""Policy registry tests: resolution, capability flags, config identity."""

import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro.core.policy import (
    AllocationStage,
    PolicyInfo,
    RenamingPolicy,
    policy_name_for,
    policy_names,
    register_policy,
    resolve_policy,
    _REGISTRY,
)
from repro.uarch.config import (
    ProcessorConfig,
    RenamingScheme,
    policy_config,
    virtual_physical_config,
)


class TestRegistry:
    def test_builtin_policies_registered(self):
        assert policy_names() == (
            "conventional", "early-release", "vp-issue", "vp-writeback",
        )

    def test_unknown_policy_error_lists_known_names(self):
        with pytest.raises(KeyError) as excinfo:
            resolve_policy("r10000")
        message = str(excinfo.value)
        assert "unknown renaming policy 'r10000'" in message
        for name in policy_names():
            assert name in message

    def test_policy_name_for_scheme_allocation(self):
        assert policy_name_for("conventional") == "conventional"
        assert policy_name_for("early-release") == "early-release"
        assert policy_name_for(
            "virtual-physical", AllocationStage.ISSUE) == "vp-issue"
        assert policy_name_for(
            "virtual-physical", AllocationStage.WRITEBACK) == "vp-writeback"
        with pytest.raises(KeyError):
            policy_name_for("no-such-scheme")

    def test_register_custom_policy(self):
        info = PolicyInfo(name="test-custom", scheme="conventional",
                          allocation=None, uses_nrr=False,
                          description="registry round-trip test",
                          build=lambda config: None)
        register_policy(info)
        try:
            assert resolve_policy("test-custom") is info
            assert "test-custom" in policy_names()
        finally:
            _REGISTRY.pop("test-custom")

    def test_descriptions_nonempty(self):
        for name in policy_names():
            assert resolve_policy(name).description


class TestCapabilityFlags:
    def build(self, name, **kwargs):
        return policy_config(name, **kwargs).build_renamer()

    def test_conventional_needs_no_hooks(self):
        renamer = self.build("conventional")
        assert not renamer.has_dispatch_hook
        assert not renamer.has_issue_hook
        assert not renamer.has_complete_hook
        assert not renamer.holds_writers_in_iq
        assert not renamer.supports_retry_gating
        assert renamer.commit_extra_latency == 0

    def test_early_release_needs_no_hooks(self):
        renamer = self.build("early-release")
        assert not renamer.has_issue_hook
        assert not renamer.has_complete_hook

    def test_vp_writeback_capabilities(self):
        renamer = self.build("vp-writeback", nrr=8)
        assert renamer.has_dispatch_hook
        assert not renamer.has_issue_hook
        assert renamer.has_complete_hook
        assert renamer.holds_writers_in_iq
        assert renamer.supports_retry_gating
        assert renamer.commit_extra_latency == 1

    def test_vp_issue_capabilities(self):
        renamer = self.build("vp-issue", nrr=8)
        assert renamer.has_dispatch_hook
        assert renamer.has_issue_hook
        assert not renamer.has_complete_hook
        assert not renamer.holds_writers_in_iq
        assert not renamer.supports_retry_gating

    def test_pool_introspection(self):
        from repro.isa.registers import RegClass

        conventional = self.build("conventional")
        assert conventional.phys_pools() is conventional.free
        assert conventional.rename_gate_pools() is conventional.free
        vp = self.build("vp-writeback", nrr=8)
        assert vp.phys_pools() is vp.free_phys
        assert vp.rename_gate_pools() is vp.free_vp
        assert RenamingPolicy.phys_pools(vp) is None  # base default
        assert conventional.npr[RegClass.INT] == 64


class TestPolicyConfig:
    def test_each_name_builds_its_policy(self):
        from repro.core.conventional import ConventionalRenamer
        from repro.core.early_release import EarlyReleaseRenamer
        from repro.core.virtual_physical import VirtualPhysicalRenamer

        assert type(policy_config("conventional")
                    .build_renamer()) is ConventionalRenamer
        assert type(policy_config("early-release")
                    .build_renamer()) is EarlyReleaseRenamer
        wb = policy_config("vp-writeback", nrr=8).build_renamer()
        assert (type(wb) is VirtualPhysicalRenamer
                and wb.allocation is AllocationStage.WRITEBACK)
        issue = policy_config("vp-issue", nrr=8).build_renamer()
        assert issue.allocation is AllocationStage.ISSUE

    def test_policy_property_round_trips(self):
        for name in policy_names():
            assert policy_config(name).policy == name

    def test_nrr_rejected_for_non_nrr_policies(self):
        with pytest.raises(ValueError, match="does not take an NRR"):
            policy_config("conventional", nrr=8)

    def test_changes_applied_in_same_construction(self):
        cfg = policy_config("vp-writeback", nrr=48, int_phys=96, fp_phys=96)
        assert cfg.nrr_int == 48 and cfg.int_phys == 96

    def test_unknown_policy_raises_registry_error(self):
        with pytest.raises(KeyError, match="unknown renaming policy"):
            policy_config("magic")

    def test_top_level_exports(self):
        assert repro.policy_config is policy_config
        assert repro.policy_names is policy_names


class TestConfigSerialization:
    def test_to_dict_carries_policy_name(self):
        assert policy_config("vp-issue", nrr=8).to_dict()["policy"] == "vp-issue"
        assert ProcessorConfig().to_dict()["policy"] == "conventional"

    def test_round_trip_with_policy_and_port_fields(self):
        cfg = policy_config("vp-writeback", nrr=16, rf_model=True,
                            rf_read_ports=4, rf_banks=4,
                            rf_bank_read_ports=2, rf_bank_write_ports=2)
        clone = ProcessorConfig.from_dict(cfg.to_dict())
        assert clone == cfg
        assert clone.key() == cfg.key()
        assert clone.policy == "vp-writeback"
        assert clone.rf_model and clone.rf_read_ports == 4
        assert clone.rf_banks == 4

    def test_from_dict_accepts_bare_policy_name(self):
        cfg = ProcessorConfig.from_dict({"policy": "vp-issue", "nrr_int": 8,
                                         "nrr_fp": 8})
        assert cfg.scheme is RenamingScheme.VIRTUAL_PHYSICAL
        assert cfg.allocation is AllocationStage.ISSUE
        assert cfg.nrr_int == 8

    def test_explicit_scheme_wins_over_policy(self):
        cfg = ProcessorConfig.from_dict({"policy": "vp-issue",
                                         "scheme": "conventional"})
        assert cfg.scheme is RenamingScheme.CONVENTIONAL

    def test_key_differs_on_port_fields(self):
        base = ProcessorConfig()
        assert base.key() != ProcessorConfig(rf_model=True).key()
        assert (ProcessorConfig(rf_model=True, rf_read_ports=4).key()
                != ProcessorConfig(rf_model=True, rf_read_ports=8).key())
        assert (ProcessorConfig(rf_model=True, rf_banks=4,
                                rf_bank_read_ports=2).key()
                != ProcessorConfig(rf_model=True).key())

    def test_key_stable_across_processes_with_new_fields(self):
        """The policy + port fields must hash identically in a fresh
        interpreter — they key the persistent result store."""
        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        code = (
            "from repro.uarch.config import policy_config;"
            "print(policy_config('vp-issue', nrr=8, rf_model=True,"
            " rf_read_ports=4, rf_banks=2, rf_bank_read_ports=2).key())"
        )
        runs = [
            subprocess.run([sys.executable, "-c", code],
                           capture_output=True, text=True, check=True,
                           env=env)
            for _ in range(2)
        ]
        keys = {proc.stdout.strip() for proc in runs}
        here = policy_config("vp-issue", nrr=8, rf_model=True,
                             rf_read_ports=4, rf_banks=2,
                             rf_bank_read_ports=2).key()
        assert keys == {here}


class TestSharedBaseHelpers:
    def test_src_tags_construction_shared_by_policies(self):
        """Both renamer families build src_tags through the base-class
        _rename_sources fast path (the dedup the refactor enabled)."""
        from repro.isa.instruction import TraceRecord
        from repro.isa.opcodes import OpClass
        from repro.isa.registers import RegClass, make_reg
        from repro.uarch.dynamic import DynInstr

        rec = TraceRecord(0x0, OpClass.INT_ALU,
                          dest=make_reg(RegClass.INT, 3),
                          src1=make_reg(RegClass.INT, 1),
                          src2=make_reg(RegClass.INT, 1))
        for name in policy_names():
            renamer = policy_config(name).build_renamer()
            assert renamer._tag_tables is not None
            instr = DynInstr(rec, 0)
            renamer.rename(instr)
            assert len(instr.src_tags) == 2
            # Both sources name the same register -> identical tags.
            assert instr.src_tags[0] == instr.src_tags[1]

    def test_reserve_dispatch_lives_in_base_class(self):
        """The NRR reserve dispatch is the base-class on_dispatch; the
        VP variants inherit it rather than redefining it."""
        from repro.core.virtual_physical import VirtualPhysicalRenamer

        assert "on_dispatch" not in vars(VirtualPhysicalRenamer)
        assert VirtualPhysicalRenamer.on_dispatch is RenamingPolicy.on_dispatch


class TestCapabilityDeclarations:
    """The static registry capability declarations are the truth the
    engine (and the compiled tier's specialization key) builds on —
    they must match the flags of an actually-built renamer, and resolve
    through a cache rather than per processor construction."""

    def test_declared_capabilities_match_built_instances(self):
        from repro.core.policy import PolicyCapabilities, policy_capabilities

        for name in policy_names():
            declared = policy_capabilities(name)
            assert declared is not None, (
                f"built-in policy {name!r} registered without a "
                f"capability declaration")
            built = PolicyCapabilities.of(
                policy_config(name).build_renamer())
            assert declared == built, (
                f"{name}: registry declares {declared}, instance has "
                f"{built}")

    def test_capability_lookup_cached_across_constructions(self):
        """A sweep constructing many processors (and deriving their
        compiled-engine keys) resolves each policy's flags and name
        once — not once per construction (the hoisted per-config
        lookup regression pin)."""
        from repro.core.policy import _policy_name_cache, policy_capabilities
        from repro.uarch import compiled
        from repro.uarch.processor import Processor

        policy_capabilities.cache_clear()
        _policy_name_cache.cache_clear()
        configs = (ProcessorConfig(), virtual_physical_config(nrr=8))
        for config in configs:  # warm both cached lookups
            compiled.engine_features(Processor(config))
        caps_misses = policy_capabilities.cache_info().misses
        name_misses = _policy_name_cache.cache_info().misses
        for _ in range(25):
            for config in configs:
                assert compiled.engine_features(
                    Processor(config)) is not None
        caps_info = policy_capabilities.cache_info()
        assert caps_info.misses == caps_misses
        assert caps_info.hits >= 50
        assert _policy_name_cache.cache_info().misses == name_misses

    def test_reregistration_invalidates_capability_cache(self):
        from repro.core.policy import PolicyCapabilities, policy_capabilities

        name = "conventional"
        original = resolve_policy(name)
        assert policy_capabilities(name) == original.capabilities
        try:
            changed = PolicyCapabilities(has_dispatch_hook=True)
            register_policy(PolicyInfo(
                name=original.name, scheme=original.scheme,
                allocation=original.allocation, uses_nrr=original.uses_nrr,
                description=original.description, build=original.build,
                capabilities=changed))
            assert policy_capabilities(name) == changed
        finally:
            register_policy(original)
        assert policy_capabilities(name) == original.capabilities
