"""Early-release (counter-based) renaming tests — paper refs [8][10]."""

import pytest

from repro.core.early_release import EarlyReleaseRenamer
from repro.isa.instruction import TraceRecord
from repro.isa.opcodes import OpClass
from repro.isa.registers import RegClass, make_reg
from repro.uarch.dynamic import DynInstr

R1 = make_reg(RegClass.INT, 1)
R2 = make_reg(RegClass.INT, 2)
R3 = make_reg(RegClass.INT, 3)

_seq = 0


def instr(op=OpClass.INT_ALU, dest=R1, src1=R2, **kw):
    global _seq
    rec = TraceRecord(0x1000 + 4 * _seq, op, dest=dest, src1=src1, **kw)
    di = DynInstr(rec, _seq)
    _seq += 1
    return di


def renamer():
    return EarlyReleaseRenamer(40, 40)


class TestEarlyFree:
    def test_superseded_unread_register_freed_at_producer_commit(self):
        r = renamer()
        a = instr(dest=R1)
        r.rename(a)
        b = instr(dest=R1)  # supersedes a; nobody read a
        r.rename(b)
        free_before = r.free_physical(RegClass.INT)
        r.on_commit(a)
        # a's register freed at its own commit: superseded + no readers.
        assert r.free_physical(RegClass.INT) == free_before + 1
        assert r.early_frees >= 1

    def test_register_waits_for_pending_reader(self):
        r = renamer()
        a = instr(dest=R1, src1=R3)  # R3 is never superseded below
        r.rename(a)
        reader = instr(dest=R2, src1=R1)
        r.rename(reader)
        b = instr(dest=R1)
        r.rename(b)
        free_before = r.free_physical(RegClass.INT)
        r.on_commit(a)
        assert r.free_physical(RegClass.INT) == free_before  # reader pending
        r.on_commit(reader)
        # a's register finally freed: superseded + committed + reads done.
        assert r.free_physical(RegClass.INT) == free_before + 1

    def test_unsuperseded_register_never_freed(self):
        r = renamer()
        a = instr(dest=R1)
        r.rename(a)
        free_before = r.free_physical(RegClass.INT)
        r.on_commit(a)
        # Still the live mapping of r1 -> must stay allocated.
        assert r.free_physical(RegClass.INT) == free_before

    def test_frees_earlier_than_conventional(self):
        """The conventional scheme frees a's register only at b's commit;
        early release frees it at a's commit once readers retire."""
        r = renamer()
        a = instr(dest=R1)
        r.rename(a)
        b = instr(dest=R1)
        r.rename(b)
        free_before = r.free_physical(RegClass.INT)
        r.on_commit(a)  # b has NOT committed yet
        assert r.free_physical(RegClass.INT) == free_before + 1

    def test_no_double_free_when_b_commits(self):
        r = renamer()
        a = instr(dest=R1)
        r.rename(a)
        b = instr(dest=R1)
        r.rename(b)
        r.on_commit(a)
        free_after_a = r.free_physical(RegClass.INT)
        r.on_commit(b)  # must NOT free a's register again
        assert r.free_physical(RegClass.INT) == free_after_a

    def test_architectural_registers_freed_once_superseded_and_read(self):
        r = renamer()
        a = instr(dest=R1, src1=R1)  # reads the reset mapping of r1
        r.rename(a)
        free_before = r.free_physical(RegClass.INT)
        r.on_commit(a)
        # The reset register of r1 (physical 1): superseded by a,
        # producer "committed" at reset, read retired -> freed.
        assert r.free_physical(RegClass.INT) == free_before + 1


class TestCounterSafety:
    def test_counter_underflow_detected(self):
        r = renamer()
        a = instr(dest=R2, src1=R1)
        r.rename(a)
        r.on_commit(a)
        with pytest.raises(RuntimeError):
            r.on_commit(a)  # double commit decrements below zero

    def test_rollback_unsupported(self):
        r = renamer()
        a = instr(dest=R1)
        r.rename(a)
        with pytest.raises(NotImplementedError):
            r.rollback([a])

    def test_duplicate_source_counts_twice(self):
        r = renamer()
        a = instr(dest=R2, src1=R1, src2=R1)
        r.rename(a)
        b = instr(dest=R1)
        r.rename(b)
        free_before = r.free_physical(RegClass.INT)
        r.on_commit(a)
        # Both reads retired by a's single commit; superseded -> freed.
        assert r.free_physical(RegClass.INT) == free_before + 1


class TestEquivalentRenaming:
    def test_mapping_behaviour_matches_conventional(self):
        """Early release changes freeing, never the mapping semantics."""
        from repro.core.conventional import ConventionalRenamer
        from repro.core.tags import tag_ident

        er, conv = renamer(), ConventionalRenamer(40, 40)
        for _ in range(5):
            i1, i2 = instr(dest=R1, src1=R1), None
            i2 = DynInstr(i1.rec, i1.seq)
            er.rename(i1)
            conv.rename(i2)
            assert [tag_ident(t) for t in i1.src_tags] == \
                   [tag_ident(t) for t in i2.src_tags]
            assert i1.dest_phys == i2.dest_phys
