"""Conventional (R10000-style) renaming semantics."""

import pytest

from repro.core.conventional import ConventionalRenamer
from repro.core.tags import make_tag, tag_ident
from repro.isa.instruction import TraceRecord
from repro.isa.opcodes import OpClass
from repro.isa.registers import RegClass, make_reg
from repro.uarch.dynamic import DynInstr

R1 = make_reg(RegClass.INT, 1)
R2 = make_reg(RegClass.INT, 2)
R3 = make_reg(RegClass.INT, 3)
F1 = make_reg(RegClass.FP, 1)

_seq = 0


def instr(op=OpClass.INT_ALU, dest=R1, src1=R2, **kw):
    global _seq
    rec = TraceRecord(0x1000 + 4 * _seq, op, dest=dest, src1=src1, **kw)
    di = DynInstr(rec, _seq)
    _seq += 1
    return di


def renamer(int_phys=40, fp_phys=40):
    return ConventionalRenamer(int_phys, fp_phys)


class TestRename:
    def test_initial_identity_mapping(self):
        r = renamer()
        i = instr(src1=R2)
        r.rename(i)
        # Logical r2 starts mapped to physical 2.
        assert i.src_tags == (make_tag(RegClass.INT, 2),)

    def test_dest_gets_fresh_physical(self):
        r = renamer()
        i = instr(dest=R1)
        r.rename(i)
        assert i.dest_phys >= 32  # from the non-architectural pool
        assert i.prev_phys == 1  # the reset mapping of r1

    def test_output_dependence_eliminated(self):
        """Two writes to r1 get distinct physical registers (WAW removed)."""
        r = renamer()
        a, b = instr(dest=R1), instr(dest=R1)
        r.rename(a)
        r.rename(b)
        assert a.dest_phys != b.dest_phys
        assert b.prev_phys == a.dest_phys

    def test_true_dependence_preserved(self):
        """A reader of r1 sees the latest writer's physical register."""
        r = renamer()
        w = instr(dest=R1)
        r.rename(w)
        reader = instr(dest=R2, src1=R1)
        r.rename(reader)
        assert tag_ident(reader.src_tags[0]) == w.dest_phys

    def test_anti_dependence_eliminated(self):
        """A writer after a reader does not disturb the reader's source."""
        r = renamer()
        reader = instr(dest=R2, src1=R1)
        r.rename(reader)
        old_tag = reader.src_tags[0]
        w = instr(dest=R1)
        r.rename(w)
        assert reader.src_tags[0] == old_tag
        assert tag_ident(old_tag) != w.dest_phys

    def test_classes_rename_independently(self):
        r = renamer()
        i = instr(op=OpClass.FP_ADD, dest=F1, src1=F1)
        r.rename(i)
        assert i.dest_phys >= 32
        assert r.free_physical(RegClass.INT) == 8  # untouched

    def test_store_has_no_dest_tag(self):
        r = renamer()
        s = instr(op=OpClass.STORE_INT, dest=-1, src1=R1, src2=R2, addr=0x40)
        r.rename(s)
        assert s.dest_tag == -1
        assert len(s.src_tags) == 2


class TestAllocationLimits:
    def test_can_rename_false_when_pool_empty(self):
        r = renamer(int_phys=34)  # two rename registers
        a, b = instr(dest=R1), instr(dest=R2)
        r.rename(a)
        r.rename(b)
        c = instr(dest=R3)
        assert not r.can_rename(c.rec)
        assert r.decode_stalls == 1

    def test_can_rename_ignores_destless_ops(self):
        r = renamer(int_phys=34)
        r.rename(instr(dest=R1))
        r.rename(instr(dest=R2))
        s = TraceRecord(0x0, OpClass.STORE_INT, src1=R1, src2=R2, addr=0x8)
        assert r.can_rename(s)

    def test_minimum_pool_size_enforced(self):
        with pytest.raises(ValueError):
            ConventionalRenamer(32, 64)  # no rename registers at all


class TestCommit:
    def test_commit_frees_previous_mapping(self):
        r = renamer(int_phys=34)
        a = instr(dest=R1)
        r.rename(a)
        assert r.free_physical(RegClass.INT) == 1
        r.on_commit(a)
        # a's prev mapping (physical 1) is back in the pool.
        assert r.free_physical(RegClass.INT) == 2

    def test_freed_register_is_reusable(self):
        r = renamer(int_phys=34)
        a = instr(dest=R1)
        r.rename(a)
        r.on_commit(a)
        b = instr(dest=R1)
        r.rename(b)
        c = instr(dest=R2)
        r.rename(c)
        # Both succeed because a's commit recycled one register.
        assert b.dest_phys != c.dest_phys

    def test_commit_of_destless_op_frees_nothing(self):
        r = renamer()
        s = instr(op=OpClass.STORE_INT, dest=-1, src1=R1, src2=R2, addr=0x40)
        r.rename(s)
        before = r.free_physical(RegClass.INT)
        r.on_commit(s)
        assert r.free_physical(RegClass.INT) == before


class TestRollback:
    def test_rollback_restores_map_and_pool(self):
        r = renamer()
        free_before = r.free_physical(RegClass.INT)
        a, b = instr(dest=R1), instr(dest=R1)
        r.rename(a)
        r.rename(b)
        r.rollback([b, a])  # youngest first
        assert r.free_physical(RegClass.INT) == free_before
        probe = instr(dest=R2, src1=R1)
        r.rename(probe)
        assert tag_ident(probe.src_tags[0]) == 1  # reset mapping of r1

    def test_partial_rollback(self):
        r = renamer()
        a, b = instr(dest=R1), instr(dest=R1)
        r.rename(a)
        r.rename(b)
        r.rollback([b])
        probe = instr(dest=R2, src1=R1)
        r.rename(probe)
        assert tag_ident(probe.src_tags[0]) == a.dest_phys

    def test_out_of_order_rollback_detected(self):
        r = renamer()
        a, b = instr(dest=R1), instr(dest=R1)
        r.rename(a)
        r.rename(b)
        with pytest.raises(RuntimeError):
            r.rollback([a, b])  # oldest first: wrong


class TestInitialState:
    def test_initial_ready_tags_cover_architectural_state(self):
        tags = renamer().initial_ready_tags()
        assert len(tags) == 64
        assert make_tag(RegClass.INT, 0) in tags
        assert make_tag(RegClass.FP, 31) in tags

    def test_commit_extra_latency_zero(self):
        assert renamer().commit_extra_latency == 0

    def test_occupancy_accounting(self):
        r = renamer()
        assert r.allocated_physical(RegClass.INT) == 32
        r.rename(instr(dest=R1))
        assert r.allocated_physical(RegClass.INT) == 33
