"""Dependence-tag encoding tests."""

from repro.core.tags import make_tag, tag_class, tag_ident
from repro.isa.registers import RegClass


class TestTags:
    def test_roundtrip_int(self):
        tag = make_tag(RegClass.INT, 37)
        assert tag_class(tag) is RegClass.INT
        assert tag_ident(tag) == 37

    def test_roundtrip_fp(self):
        tag = make_tag(RegClass.FP, 150)
        assert tag_class(tag) is RegClass.FP
        assert tag_ident(tag) == 150

    def test_classes_disjoint(self):
        ints = {make_tag(RegClass.INT, i) for i in range(200)}
        fps = {make_tag(RegClass.FP, i) for i in range(200)}
        assert not ints & fps

    def test_identifiers_unique_within_class(self):
        tags = [make_tag(RegClass.INT, i) for i in range(500)]
        assert len(set(tags)) == 500
