"""Free-list tests."""

import pytest

from repro.core.freelist import FreeList


class TestBasics:
    def test_fifo_order(self):
        fl = FreeList([3, 1, 2])
        assert [fl.allocate() for _ in range(3)] == [3, 1, 2]

    def test_counts(self):
        fl = FreeList(range(4))
        fl.allocate()
        assert fl.free_count == 3
        assert fl.allocated_count == 1
        assert fl.capacity == 4

    def test_exhaustion_raises(self):
        fl = FreeList([1])
        fl.allocate()
        with pytest.raises(RuntimeError):
            fl.allocate()

    def test_release_recycles(self):
        fl = FreeList([1, 2])
        a = fl.allocate()
        fl.release(a)
        assert fl.free_count == 2

    def test_membership(self):
        fl = FreeList([1, 2])
        a = fl.allocate()
        assert a not in fl
        fl.release(a)
        assert a in fl


class TestSafety:
    def test_double_free_rejected(self):
        fl = FreeList([1, 2])
        a = fl.allocate()
        fl.release(a)
        with pytest.raises(ValueError):
            fl.release(a)

    def test_free_of_never_allocated_member_rejected(self):
        fl = FreeList([1, 2])
        with pytest.raises(ValueError):
            fl.release(1)  # still in the pool

    def test_duplicate_initialization_rejected(self):
        with pytest.raises(ValueError):
            FreeList([1, 1, 2])

    def test_overflow_rejected(self):
        fl = FreeList([1])
        fl.allocate()
        fl.release(1)
        with pytest.raises(ValueError):
            fl.release(1)


class TestStats:
    def test_min_free_watermark(self):
        fl = FreeList(range(4))
        a = fl.allocate()
        b = fl.allocate()
        fl.release(a)
        fl.release(b)
        assert fl.min_free == 2
        assert fl.allocations == 2
